//! Property-based integration tests over randomly generated designs.

use local_watermarks::cdfg::generators::{layered, random_dag, LayeredConfig};
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};
use local_watermarks::sched::{force_directed_schedule, list_schedule, ResourceSet, Windows};
use local_watermarks::timing::{bounded_critical_path, KindBounds, UnitTiming};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Embedding then detecting with the same signature always matches on
    /// any layered design big enough to host the default mark.
    #[test]
    fn embed_detect_round_trip(seed in 0u64..500, ops in 120usize..400) {
        let g = layered(&LayeredConfig {
            ops,
            layers: ((ops as f64).sqrt() * 1.2) as usize,
            seed,
            ..Default::default()
        });
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author(&format!("prop-{seed}"));
        if let Ok(emb) = wm.embed(&g, &sig) {
            prop_assert!(emb.schedule.validate(&emb.marked).is_ok());
            let ev = wm.detect(&emb.schedule, &g, &sig).expect("detects");
            prop_assert!(ev.is_match());
            prop_assert!(ev.log10_pc <= 0.0);
        }
    }

    /// Watermark edges never stretch the schedule past the step budget.
    #[test]
    fn embedding_respects_the_deadline(seed in 0u64..300) {
        let g = layered(&LayeredConfig { ops: 250, layers: 18, seed, ..Default::default() });
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author("deadline-prop");
        if let Ok(emb) = wm.embed(&g, &sig) {
            prop_assert!(emb.schedule.length() <= emb.available_steps);
        }
    }

    /// ASAP never exceeds ALAP, and laxity never exceeds the critical path.
    #[test]
    fn window_invariants(n in 5usize..60, p in 0.05f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let t = UnitTiming::new(&g);
        let steps = t.critical_path().max(1) + 3;
        let w = Windows::new(&g, steps).expect("feasible");
        for node in g.node_ids() {
            prop_assert!(w.asap(node) <= w.alap(node));
            prop_assert!(t.laxity(node) <= t.critical_path());
        }
    }

    /// Any valid list schedule is at least as long as the critical path
    /// and exactly the critical path without resource limits.
    #[test]
    fn list_schedule_matches_critical_path(n in 5usize..60, p in 0.05f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).expect("schedules");
        prop_assert!(s.validate(&g).is_ok());
        prop_assert_eq!(s.length(), UnitTiming::new(&g).critical_path());
    }

    /// Force-directed schedules are valid and meet their deadline.
    #[test]
    fn fds_is_valid(n in 5usize..40, p in 0.05f64..0.3, seed in 0u64..500, slack in 0u32..6) {
        let g = random_dag(n, p, seed);
        let cp = UnitTiming::new(&g).critical_path().max(1);
        let s = force_directed_schedule(&g, cp + slack).expect("schedules");
        prop_assert!(s.validate(&g).is_ok());
        prop_assert!(s.length() <= cp + slack);
    }

    /// The bounded-delay interval brackets the unit-delay critical path
    /// whenever the model brackets the unit delay.
    #[test]
    fn bounded_interval_brackets_unit(n in 5usize..60, p in 0.05f64..0.4, seed in 0u64..1000) {
        let g = random_dag(n, p, seed);
        let unit = u64::from(UnitTiming::new(&g).critical_path());
        let cp = bounded_critical_path(&g, &KindBounds::uniform(1, 3));
        prop_assert!(cp.lo <= unit);
        prop_assert!(cp.hi >= unit);
        prop_assert_eq!(cp.lo, unit); // lower bound is the all-1 assignment
    }

    /// Embedding either succeeds (and the round trip matches) or fails
    /// with the *typed* `NoIncomparablePairs` diagnostic — never an
    /// untyped error, never a panic. This is the service contract the
    /// `no_incomparable_pairs` wire code is built on.
    #[test]
    fn embed_round_trips_or_fails_typed(seed in 0u64..400, ops in 40usize..300) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 8).max(2),
            seed,
            ..Default::default()
        });
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author(&format!("typed-{seed}"));
        match wm.embed(&g, &sig) {
            Ok(emb) => {
                let ev = wm.detect(&emb.schedule, &g, &sig).expect("detects own mark");
                prop_assert!(ev.is_match(), "embedded mark must verify");
            }
            Err(WatermarkError::NoIncomparablePairs { domain_size, .. }) => {
                // The typed diagnostic must describe the domain it searched.
                prop_assert!(domain_size <= ops);
            }
            Err(other) => prop_assert!(false, "untyped embed error: {other}"),
        }
    }

    /// Detection never claims a high-confidence match on a fresh,
    /// unwatermarked schedule of the same design shape: the chance
    /// probability of an accidental match stays far above the detection
    /// tolerance.
    #[test]
    fn detect_never_false_positives_on_unwatermarked(seed in 0u64..300) {
        let g = layered(&LayeredConfig { ops: 160, layers: 14, seed, ..Default::default() });
        let unmarked = list_schedule(&g, &ResourceSet::unlimited(), None).expect("schedules");
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let claimant = Signature::from_author(&format!("claimant-{seed}"));
        if let Ok(ev) = wm.detect(&unmarked, &g, &claimant) {
            prop_assert!(
                !ev.is_match_with_tolerance(1e-6),
                "false positive: unwatermarked schedule matched with pc = 1e{}",
                ev.log10_pc
            );
        }
    }

    /// Adding a feasible temporal edge never shortens the critical path.
    #[test]
    fn temporal_edges_are_monotone(seed in 0u64..500) {
        let g = layered(&LayeredConfig { ops: 100, layers: 10, seed, ..Default::default() });
        let before = UnitTiming::new(&g).critical_path();
        let nodes: Vec<_> = g.node_ids().filter(|&n| g.kind(n).is_schedulable()).collect();
        let mut gm = g.clone();
        let (a, b) = (nodes[nodes.len() / 4], nodes[3 * nodes.len() / 4]);
        if !gm.reaches(a, b) && !gm.reaches(b, a) {
            gm.add_temporal_edge(a, b).expect("incomparable");
            let after = UnitTiming::new(&gm).critical_path();
            prop_assert!(after >= before);
        }
    }
}
