//! Semantic-preservation integration tests: the watermark changes
//! scheduling decisions, never computed values.

use local_watermarks::cdfg::generators::{mediabench, mediabench_apps};
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature};
use local_watermarks::sim::{execute_scheduled, interpret, outputs_match, Inputs};

#[test]
fn watermark_realization_preserves_every_output() {
    let g = mediabench(&mediabench_apps()[0], 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
    let sig = Signature::from_author("semantics");
    let emb = wm.embed(&g, &sig).expect("embeds");
    let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);

    for seed in 0..8 {
        let inputs = Inputs::seeded(seed);
        let base = interpret(&g, &inputs).expect("interprets");
        let marked = interpret(&realized, &inputs).expect("interprets");
        assert!(
            outputs_match(&g, &base, &marked),
            "seed {seed}: realization changed an output"
        );
    }
}

#[test]
fn watermarked_schedule_computes_the_same_results() {
    let g = mediabench(&mediabench_apps()[1], 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::default());
    let sig = Signature::from_author("sched-semantics");
    let emb = wm.embed(&g, &sig).expect("embeds");

    let inputs = Inputs::seeded(123);
    let reference = interpret(&g, &inputs).expect("interprets");
    // Execute the constrained schedule on the *marked* graph: temporal
    // edges carry no data, so outputs must be identical to the reference.
    let executed = execute_scheduled(&emb.marked, &emb.schedule, &inputs).expect("executes");
    assert!(outputs_match(&g, &reference, &executed));
}

#[test]
fn attack_perturbations_preserve_semantics_too() {
    // A valid perturbed schedule still computes the right values — the
    // attacker's dilemma: only order changes, so the mark's evidence is
    // all that moves.
    use local_watermarks::core::attack::perturb_schedule_with;
    use local_watermarks::prng::SplitMix64;
    let g = mediabench(&mediabench_apps()[2], 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::default());
    let sig = Signature::from_author("attack-semantics");
    let emb = wm.embed(&g, &sig).expect("embeds");
    let mut rng = SplitMix64::new(3);
    let (tampered, _) =
        perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 500, &mut rng);

    let inputs = Inputs::seeded(7);
    let reference = interpret(&g, &inputs).expect("interprets");
    let executed = execute_scheduled(&g, &tampered, &inputs).expect("executes");
    assert!(outputs_match(&g, &reference, &executed));
}
