//! Golden values: the paper facts this reproduction pins down exactly.

use local_watermarks::cdfg::designs::{iir4_parallel, table2_design, table2_designs};
use local_watermarks::cdfg::generators::mediabench_apps;
use local_watermarks::core::attack::alterations_to_defeat;
use local_watermarks::core::pc::pair_order_probability;
use local_watermarks::sched::Windows;
use local_watermarks::timing::UnitTiming;

/// The paper's pairwise example: 77 placements, 10 ordered (§IV-A).
#[test]
fn golden_77_over_10_pair_counts() {
    use local_watermarks::cdfg::{Cdfg, OpKind};
    let mut g = Cdfg::new();
    let x = g.add_node(OpKind::Input);
    let mut prev = x;
    for _ in 0..6 {
        let n = g.add_node(OpKind::Not);
        g.add_data_edge(prev, n).unwrap();
        prev = n;
    }
    let oi = g.add_node(OpKind::Neg);
    g.add_data_edge(prev, oi).unwrap();
    let oj = g.add_node(OpKind::Neg);
    g.add_data_edge(x, oj).unwrap();
    let mut prev = oj;
    for _ in 0..2 {
        let n = g.add_node(OpKind::Not);
        g.add_data_edge(prev, n).unwrap();
        prev = n;
    }
    let w = Windows::new(&g, 13).unwrap();
    assert_eq!((w.asap(oi), w.alap(oi)), (7, 13), "O[i] window");
    assert_eq!((w.asap(oj), w.alap(oj)), (1, 11), "O[j] window");
    let total = 7 * 11;
    assert_eq!(total, 77);
    let p = pair_order_probability(&w, oi, oj);
    assert_eq!((p * f64::from(total)).round() as u32, 10);
}

/// Table I's published operation counts are generated exactly.
#[test]
fn golden_table1_op_counts() {
    let expected = [528, 758, 872, 658, 1755, 802, 1422, 1372];
    for (app, want) in mediabench_apps().iter().zip(expected) {
        assert_eq!(app.ops, want, "{}", app.name);
    }
}

/// Table II's published critical paths are generated exactly.
#[test]
fn golden_table2_critical_paths() {
    let expected = [18u32, 12, 16, 10, 12, 20, 132, 2566];
    for (desc, want) in table2_designs().iter().zip(expected) {
        assert_eq!(desc.critical_path, want, "{}", desc.name);
        if want <= 150 {
            let g = table2_design(desc);
            assert_eq!(UnitTiming::new(&g).critical_path(), want, "{}", desc.name);
        }
    }
}

/// Table II's published variable counts are hit exactly for the six small
/// designs (the metric substitution only affects D/A and the echo
/// canceler; see EXPERIMENTS.md).
#[test]
fn golden_table2_variable_counts() {
    for desc in table2_designs().iter().take(6) {
        let g = table2_design(desc);
        assert_eq!(
            g.variable_count(),
            desc.paper_variables as usize,
            "{}",
            desc.name
        );
    }
}

/// The IIR filter of Figs. 3–4: 21 operations, 6-step critical path, the
/// paper's node names all present.
#[test]
fn golden_iir4_shape() {
    let g = iir4_parallel();
    assert_eq!(g.op_count(), 21);
    assert_eq!(UnitTiming::new(&g).critical_path(), 6);
    for name in ["A1", "A5", "A9", "C1", "C7", "C8"] {
        assert!(g.node_by_name(name).is_some(), "missing {name}");
    }
}

/// The paper's §IV-B count: the pair (A5, A6) "can be covered in the
/// following six ways" — reproduced exactly by `Solutions(m)` on our IIR
/// reconstruction with the DSP library.
#[test]
fn golden_six_ways_to_cover_a5_a6() {
    use local_watermarks::tmatch::{count_cover_solutions, find_matches, Library};
    let g = iir4_parallel();
    let lib = Library::dsp_default();
    let a5 = g.node_by_name("A5").unwrap();
    let a6 = g.node_by_name("A6").unwrap();
    let pair = find_matches(&g, &lib)
        .into_iter()
        .find(|m| m.nodes == vec![a6, a5])
        .expect("the add2 over (A6, A5) exists");
    assert_eq!(count_cover_solutions(&g, &lib, &pair), 6);
}

/// The analytic attack model's headline number (our documented variant of
/// the paper's 31 729-alterations argument).
#[test]
fn golden_attack_model() {
    assert_eq!(alterations_to_defeat(50_000, 100, 0.5, 1e-6), Ok(40_500));
}
