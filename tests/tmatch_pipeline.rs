//! End-to-end integration of the template-matching watermark.

use local_watermarks::cdfg::designs::{table2_design, table2_designs};
use local_watermarks::core::allocation::{allocated_modules, AllocationPolicy};
use local_watermarks::core::{module_overhead, Signature, TemplateWatermarker, TmatchWmConfig};
use local_watermarks::timing::UnitTiming;
use local_watermarks::tmatch::{cover, CoverConstraints, Library};

fn relaxed(design: &local_watermarks::cdfg::Cdfg, z: usize) -> TmatchWmConfig {
    let cp = UnitTiming::new(design).critical_path();
    TmatchWmConfig {
        z,
        available_steps: 2 * cp,
        ..TmatchWmConfig::default()
    }
}

#[test]
fn small_table2_designs_embed_and_detect() {
    for desc in table2_designs().iter().take(6) {
        let g = table2_design(desc);
        let wm = TemplateWatermarker::new(relaxed(&g, 2));
        let sig = Signature::from_author(&format!("tmatch-{}", desc.name));
        let emb = wm
            .embed(&g, &sig)
            .unwrap_or_else(|e| panic!("{}: {e}", desc.name));
        let ev = wm.detect(&emb.covering, &g, &sig).expect("detects");
        assert!(ev.is_match(), "{} failed to verify", desc.name);
        assert!(ev.log10_pc < 0.0, "{}: Pc must shrink", desc.name);
    }
}

#[test]
fn tight_configuration_embeds_on_every_design() {
    // With steps == critical path, only off-critical regions host marks.
    for desc in table2_designs().iter().take(6) {
        let g = table2_design(desc);
        let wm = TemplateWatermarker::new(TmatchWmConfig {
            z: 1,
            ..TmatchWmConfig::default()
        });
        let sig = Signature::from_author("tight");
        let emb = wm
            .embed(&g, &sig)
            .unwrap_or_else(|e| panic!("{}: {e}", desc.name));
        assert_eq!(emb.forced.len(), 1);
    }
}

#[test]
fn module_overhead_is_bounded_across_designs() {
    for desc in table2_designs().iter().take(4) {
        let g = table2_design(desc);
        let wm = TemplateWatermarker::new(TmatchWmConfig {
            z_fraction: Some(desc.enforced_pct / 100.0),
            ..TmatchWmConfig::default()
        });
        let sig = Signature::from_author("overhead-int");
        let (plain, marked, pct) =
            module_overhead(&g, &wm, &sig).unwrap_or_else(|e| panic!("{}: {e}", desc.name));
        assert!(plain > 0, "{}", desc.name);
        assert!(marked + 2 >= plain, "{}", desc.name);
        assert!(pct.abs() < 80.0, "{}: {pct}%", desc.name);
    }
}

#[test]
fn allocation_and_covering_agree_on_piece_accounting() {
    let g = table2_design(&table2_designs()[4]);
    let lib = Library::dsp_default();
    let covering = cover(&g, &lib, &CoverConstraints::default());
    assert_eq!(
        covering.covered_ops() + covering.singletons.len(),
        g.op_count()
    );
    let cp = UnitTiming::new(&g).critical_path();
    let tight = allocated_modules(&g, &covering, &lib, cp, AllocationPolicy::FixedFunction)
        .expect("feasible");
    let relaxed = allocated_modules(&g, &covering, &lib, 4 * cp, AllocationPolicy::FixedFunction)
        .expect("feasible");
    assert!(relaxed <= tight);
    assert!(relaxed >= 1);
    // Hosting can only reduce the count further.
    let hosted =
        allocated_modules(&g, &covering, &lib, cp, AllocationPolicy::Hosting).expect("feasible");
    assert!(hosted <= tight);
}

#[test]
fn forced_matchings_survive_inside_the_covering_tool() {
    let g = table2_design(&table2_designs()[1]);
    let wm = TemplateWatermarker::new(relaxed(&g, 4));
    let sig = Signature::from_author("forced-int");
    let emb = wm.embed(&g, &sig).expect("embeds");
    for m in &emb.forced {
        assert!(
            emb.covering.selected.contains(m),
            "forced matching missing from covering"
        );
    }
    // No op is covered twice.
    let mut seen = std::collections::HashSet::new();
    for m in &emb.covering.selected {
        for &n in &m.nodes {
            assert!(seen.insert(n), "{n} covered twice");
        }
    }
}
