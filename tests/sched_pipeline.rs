//! End-to-end integration of the operation-scheduling watermark across
//! every substrate crate: design generation → embedding → synthesis →
//! constraint stripping → detection → performance measurement.

use local_watermarks::cdfg::designs::iir4_parallel;
use local_watermarks::cdfg::generators::{mediabench, mediabench_apps};
use local_watermarks::cdfg::EdgeKind;
use local_watermarks::core::{SchedWmConfig, SchedulingWatermarker, Signature};
use local_watermarks::sched::{list_schedule, ResourceSet};
use local_watermarks::vliw::{overhead_percent, Machine};

#[test]
fn every_mediabench_app_supports_two_percent_marks() {
    let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
    for app in mediabench_apps() {
        let g = mediabench(&app, 0);
        let sig = Signature::from_author(&format!("integration-{}", app.name));
        let emb = wm
            .embed(&g, &sig)
            .unwrap_or_else(|e| panic!("{}: {e}", app.name));
        assert_eq!(
            emb.edges.len(),
            ((0.02 * app.ops as f64).round() as usize).max(1),
            "{}",
            app.name
        );
        let ev = wm.detect(&emb.schedule, &g, &sig).expect("detects");
        assert!(ev.is_match(), "{} failed to verify", app.name);
    }
}

#[test]
fn marked_specification_round_trips_through_synthesis_and_stripping() {
    let g = mediabench(&mediabench_apps()[3], 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig::default());
    let sig = Signature::from_author("strip-test");
    let mut emb = wm.embed(&g, &sig).expect("embeds");

    // The marked graph schedules; all constraints hold in the result.
    let schedule = list_schedule(&emb.marked, &ResourceSet::unlimited(), None).expect("schedules");
    for &(s, d) in &emb.edges {
        assert_eq!(schedule.executes_before(s, d), Some(true));
    }

    // Stripping returns the spec to its original shape.
    emb.marked.strip_temporal_edges();
    assert_eq!(emb.marked.edge_count(), g.edge_count());
    assert!(emb.marked.edges().all(|e| e.kind() != EdgeKind::Temporal));

    // The stripped spec still verifies through the schedule.
    let ev = wm.detect(&schedule, &g, &sig).expect("detects");
    assert!(ev.is_match());
}

#[test]
fn vliw_overhead_stays_low_at_two_percent() {
    let machine = Machine::paper_default();
    let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
    for app in mediabench_apps().iter().take(3) {
        let g = mediabench(app, 0);
        let sig = Signature::from_author("perf-test");
        let emb = wm.embed(&g, &sig).expect("embeds");
        let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);
        let perf = overhead_percent(&g, &realized, &machine);
        assert!(perf.marked_cycles >= perf.base_cycles);
        assert!(
            perf.overhead_percent() < 8.0,
            "{}: overhead {}%",
            app.name,
            perf.overhead_percent()
        );
    }
}

#[test]
fn detection_is_stable_across_watermarker_instances() {
    let g = iir4_parallel();
    let sig = Signature::from_author("stability");
    let emb = SchedulingWatermarker::new(SchedWmConfig::default())
        .embed(&g, &sig)
        .expect("embeds");
    // A *fresh* watermarker with the same config re-derives identically.
    let ev = SchedulingWatermarker::new(SchedWmConfig::default())
        .detect(&emb.schedule, &g, &sig)
        .expect("detects");
    assert!(ev.is_match());
}

#[test]
fn ten_distinct_authors_coexist_without_cross_matches() {
    let g = mediabench(&mediabench_apps()[2], 0);
    let wm = SchedulingWatermarker::new(SchedWmConfig {
        k: 10,
        ..SchedWmConfig::default()
    });
    let sigs: Vec<Signature> = (0..10)
        .map(|i| Signature::from_author(&format!("author-{i}")))
        .collect();
    let embeddings: Vec<_> = sigs
        .iter()
        .map(|s| wm.embed(&g, s).expect("embeds"))
        .collect();
    for (i, emb) in embeddings.iter().enumerate() {
        for (j, sig) in sigs.iter().enumerate() {
            let ev = wm.detect(&emb.schedule, &g, sig).expect("detects");
            if i == j {
                assert!(ev.is_match(), "author {i} must verify own schedule");
            } else {
                assert!(
                    !ev.is_match(),
                    "author {j} must not verify author {i}'s schedule"
                );
            }
        }
    }
}
