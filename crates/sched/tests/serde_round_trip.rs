//! JSON round-trip for schedules (feature `serde`).
#![cfg(feature = "serde")]

use localwm_cdfg::designs::iir4_parallel;
use localwm_sched::{list_schedule, ResourceSet, Schedule};

#[test]
fn schedule_round_trips_through_json() {
    let g = iir4_parallel();
    let s = list_schedule(&g, &ResourceSet::unlimited(), None).expect("schedules");
    let json = serde_json::to_string(&s).expect("serializes");
    let s2: Schedule = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(s, s2);
    assert!(s2.validate(&g).is_ok());
}
