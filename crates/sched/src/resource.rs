//! Functional-unit classes and resource sets.

use localwm_cdfg::OpKind;

/// Functional-unit class an operation executes on.
///
/// The classes mirror the paper's evaluation machine ("four arithmetic-logic
/// units, two branch and two memory units") plus a multiplier class, since
/// datapath-oriented resource sets usually separate multipliers from ALUs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum OpClass {
    /// Add/sub/logic/compare/shift/move units.
    Alu = 0,
    /// Multiply/divide units.
    Multiplier = 1,
    /// Load/store units.
    Memory = 2,
    /// Branch units.
    Branch = 3,
}

impl OpClass {
    /// Number of distinct classes.
    pub const COUNT: usize = 4;

    /// The class an operation kind executes on.
    pub fn of(kind: OpKind) -> OpClass {
        match kind {
            OpKind::Mul | OpKind::ConstMul | OpKind::Div => OpClass::Multiplier,
            OpKind::Load | OpKind::Store => OpClass::Memory,
            OpKind::Branch => OpClass::Branch,
            _ => OpClass::Alu,
        }
    }

    /// All classes.
    pub const ALL: [OpClass; 4] = [
        OpClass::Alu,
        OpClass::Multiplier,
        OpClass::Memory,
        OpClass::Branch,
    ];
}

/// Per-class functional-unit availability.
///
/// `None` for a class means unlimited units of that class.
///
/// ```
/// use localwm_sched::{OpClass, ResourceSet};
/// let rs = ResourceSet::unlimited()
///     .with(OpClass::Multiplier, 2)
///     .with(OpClass::Memory, 1);
/// assert_eq!(rs.available(OpClass::Multiplier), Some(2));
/// assert_eq!(rs.available(OpClass::Alu), None);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceSet {
    limits: [Option<usize>; OpClass::COUNT],
}

impl ResourceSet {
    /// No limits on any class (pure dependence-constrained scheduling).
    pub fn unlimited() -> Self {
        ResourceSet {
            limits: [None; OpClass::COUNT],
        }
    }

    /// Sets the limit of one class.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0` — a class with zero units can never schedule.
    #[must_use]
    pub fn with(mut self, class: OpClass, count: usize) -> Self {
        assert!(count > 0, "a resource class needs at least one unit");
        self.limits[class as usize] = Some(count);
        self
    }

    /// The available units of a class (`None` = unlimited).
    pub fn available(&self, class: OpClass) -> Option<usize> {
        self.limits[class as usize]
    }

    /// Whether no class is limited.
    pub fn is_unlimited(&self) -> bool {
        self.limits.iter().all(|l| l.is_none())
    }

    /// Number of classes (for dense usage tables).
    pub fn class_count(&self) -> usize {
        OpClass::COUNT
    }
}

impl Default for ResourceSet {
    fn default() -> Self {
        Self::unlimited()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_expected_kinds() {
        assert_eq!(OpClass::of(OpKind::Add), OpClass::Alu);
        assert_eq!(OpClass::of(OpKind::Xor), OpClass::Alu);
        assert_eq!(OpClass::of(OpKind::Mul), OpClass::Multiplier);
        assert_eq!(OpClass::of(OpKind::ConstMul), OpClass::Multiplier);
        assert_eq!(OpClass::of(OpKind::Load), OpClass::Memory);
        assert_eq!(OpClass::of(OpKind::Branch), OpClass::Branch);
        assert_eq!(OpClass::of(OpKind::UnitOp), OpClass::Alu);
    }

    #[test]
    fn unlimited_has_no_limits() {
        let rs = ResourceSet::unlimited();
        assert!(rs.is_unlimited());
        for class in OpClass::ALL {
            assert_eq!(rs.available(class), None);
        }
    }

    #[test]
    fn with_sets_one_class() {
        let rs = ResourceSet::unlimited().with(OpClass::Alu, 4);
        assert!(!rs.is_unlimited());
        assert_eq!(rs.available(OpClass::Alu), Some(4));
        assert_eq!(rs.available(OpClass::Memory), None);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = ResourceSet::unlimited().with(OpClass::Alu, 0);
    }
}
