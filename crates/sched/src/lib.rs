//! Operation scheduling for behavioral synthesis.
//!
//! Scheduling "partitions the set of operations in the CDFG into groups such
//! that the operations in the same group can be executed concurrently in one
//! control step" (paper §IV-A). This crate supplies every scheduling
//! capability the watermarking protocol and its evaluation need:
//!
//! * [`Schedule`] — a control-step assignment with full validity checking.
//! * [`Windows`] — per-node ASAP/ALAP windows under a deadline.
//! * [`list_schedule`] — resource-constrained list scheduling (the
//!   workhorse "synthesis tool" run after constraints are embedded).
//! * [`exact_schedule`] — minimum-latency branch-and-bound (the exact/ILP
//!   counterpart the paper cites) for certifying heuristics on small
//!   designs.
//! * [`force_directed_schedule`] — Paulin–Knight force-directed scheduling
//!   (the paper cites it as the canonical heuristic), minimizing peak
//!   resource usage under a latency constraint.
//! * [`enumerate`] — exact schedule counting/enumeration for small
//!   (sub)problems, used for the `ψ_W/ψ_N` ratios and exact coincidence
//!   probabilities of the paper's Fig. 3 example.
//!
//! Every scheduler also has an `*_in` variant taking a shared
//! [`localwm_engine::DesignContext`], which reuses the engine's memoized
//! topological order and unit-delay timing instead of recomputing them.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_sched::{list_schedule, ResourceSet, Schedule};
//!
//! let g = iir4_parallel();
//! let sched = list_schedule(&g, &ResourceSet::unlimited(), None)?;
//! assert!(sched.validate(&g).is_ok());
//! assert_eq!(sched.length(), 6); // matches the critical path
//! # Ok::<(), localwm_sched::ScheduleError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enumerate;

mod exact;
mod force_directed;
mod lifetimes;
mod list;
mod resource;
mod schedule;
mod textio;
mod windows;

pub use exact::{exact_schedule, exact_schedule_in, MAX_EXACT_NODES};
pub use force_directed::{force_directed_schedule, force_directed_schedule_in};
pub use lifetimes::{left_edge_binding, lifetimes, register_count, Lifetime};
pub use list::{alap_schedule, alap_schedule_in, list_schedule, list_schedule_in};
pub use resource::{OpClass, ResourceSet};
pub use schedule::{Schedule, ScheduleError};
pub use textio::{parse_schedule, write_schedule};
pub use windows::Windows;
