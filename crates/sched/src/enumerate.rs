//! Exact enumeration and counting of schedules for small subproblems.
//!
//! The paper's coincidence-probability analysis needs, for a subtree `T`,
//! the number of distinct valid schedules with and without the watermark's
//! temporal edges (`ψ_W(e)` / `ψ_N(e)`, and the Fig. 3 example's
//! 166-vs-15 counts). Enumeration is exponential in general — the paper
//! itself notes it "results in exponential runtimes" and uses it "only for
//! small examples" — so this module provides capped counting.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;

use crate::Windows;

/// A self-contained scheduling subproblem: a set of operations, their
/// mobility windows, and minimum step *lags* between dependent pairs.
///
/// Build one with [`SubProblem::from_graph`], then count with
/// [`SubProblem::count`] or enumerate with [`SubProblem::for_each`].
#[derive(Debug, Clone)]
pub struct SubProblem {
    /// The operations, in a topological order of the lag constraints.
    nodes: Vec<NodeId>,
    /// `[asap, alap]` per node (parallel to `nodes`).
    windows: Vec<(u32, u32)>,
    /// `(i, j, lag)` meaning `step[j] >= step[i] + lag` (indices into
    /// `nodes`).
    lags: Vec<(usize, usize, u32)>,
    /// Per node, the incoming lag constraints `(pred_index, lag)`.
    preds: Vec<Vec<(usize, u32)>>,
}

impl SubProblem {
    /// Extracts the scheduling subproblem induced by `subset` within `g`.
    ///
    /// Windows come from `windows` (the full-graph ASAP/ALAP under its
    /// deadline). For every ordered pair `(u, v)` of subset nodes with a
    /// path `u → v` in `g`, a lag constraint `step(v) ≥ step(u) + L` is
    /// added, where `L` is the maximum number of schedulable operations
    /// strictly between them on any path, plus one — so orderings forced
    /// through nodes *outside* the subset are respected too.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains non-schedulable nodes or duplicates, or
    /// if the graph is cyclic.
    pub fn from_graph(g: &Cdfg, windows: &Windows, subset: &[NodeId]) -> Self {
        Self::in_ctx(&DesignContext::from(g), windows, subset)
    }

    /// [`SubProblem::from_graph`] against a shared [`DesignContext`],
    /// reusing its memoized topological order.
    ///
    /// # Panics
    ///
    /// Panics if `subset` contains non-schedulable nodes or duplicates, or
    /// if the graph is cyclic.
    pub fn in_ctx(ctx: &DesignContext, windows: &Windows, subset: &[NodeId]) -> Self {
        let g = ctx.graph();
        let mut seen = std::collections::HashSet::new();
        for &n in subset {
            assert!(
                g.kind(n).is_schedulable(),
                "subproblem nodes must be schedulable operations"
            );
            assert!(seen.insert(n), "duplicate node {n} in subset");
        }
        let order = ctx.topo();
        let index_of: std::collections::HashMap<NodeId, usize> =
            subset.iter().enumerate().map(|(i, &n)| (n, i)).collect();

        let mut lags: Vec<(usize, usize, u32)> = Vec::new();
        // For each subset source u: longest schedulable-op distance to all v.
        for (ui, &u) in subset.iter().enumerate() {
            // dist[x] = max schedulable ops strictly after u up to and
            // including x, only along paths starting at u; None = unreachable.
            let mut dist: Vec<Option<u32>> = vec![None; g.node_count()];
            dist[u.index()] = Some(0);
            let upos = order.iter().position(|&x| x == u).expect("u in order");
            for &x in &order[upos..] {
                let Some(dx) = dist[x.index()] else { continue };
                for s in g.succs(x) {
                    let w = dx + u32::from(g.kind(s).is_schedulable());
                    let slot = &mut dist[s.index()];
                    *slot = Some(slot.map_or(w, |old| old.max(w)));
                }
            }
            for (vi, &v) in subset.iter().enumerate() {
                if ui == vi {
                    continue;
                }
                if let Some(d) = dist[v.index()] {
                    // d counts schedulable ops after u up to v (including v,
                    // which is schedulable): the step gap must be >= d.
                    lags.push((ui, vi, d));
                }
            }
        }

        // Topologically order subset nodes by their lag DAG (stable by
        // original position).
        let n = subset.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(i, j, _) in &lags {
            out[i].push(j);
            indeg[j] += 1;
        }
        let mut topo: Vec<usize> = Vec::with_capacity(n);
        let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        while let Some(i) = ready.pop() {
            topo.push(i);
            for &j in &out[i] {
                indeg[j] -= 1;
                if indeg[j] == 0 {
                    ready.push(j);
                }
            }
        }
        assert_eq!(topo.len(), n, "lag constraints must be acyclic");

        let nodes: Vec<NodeId> = topo.iter().map(|&i| subset[i]).collect();
        let remap: std::collections::HashMap<usize, usize> = topo
            .iter()
            .enumerate()
            .map(|(new, &old)| (old, new))
            .collect();
        let win: Vec<(u32, u32)> = nodes
            .iter()
            .map(|&nd| (windows.asap(nd), windows.alap(nd)))
            .collect();
        let mut preds: Vec<Vec<(usize, u32)>> = vec![Vec::new(); n];
        let lags: Vec<(usize, usize, u32)> = lags
            .into_iter()
            .map(|(i, j, l)| (remap[&i], remap[&j], l))
            .collect();
        for &(i, j, l) in &lags {
            preds[j].push((i, l));
        }
        let _ = index_of;
        SubProblem {
            nodes,
            windows: win,
            lags,
            preds,
        }
    }

    /// Adds an extra ordering constraint `step(src) < step(dst)` (a
    /// temporal watermark edge), returning `None` if either node is not in
    /// the subproblem.
    #[must_use]
    pub fn with_order(&self, src: NodeId, dst: NodeId) -> Option<Self> {
        let i = self.nodes.iter().position(|&n| n == src)?;
        let j = self.nodes.iter().position(|&n| n == dst)?;
        let mut p = self.clone();
        p.lags.push((i, j, 1));
        p.preds[j].push((i, 1));
        // Re-check acyclicity cheaply: if dst already precedes src via lags
        // the count will simply be zero (windows can never satisfy both) —
        // but a cycle breaks the topo assumption, so verify.
        if p.reaches(j, i) {
            // Keep the constraint; counting handles it by returning 0.
            // Mark by clearing topo-dependence: enumeration is order-robust
            // because each node checks all its preds, scheduled or not.
        }
        Some(p)
    }

    fn reaches(&self, from: usize, to: usize) -> bool {
        let mut stack = vec![from];
        let mut seen = vec![false; self.nodes.len()];
        while let Some(x) = stack.pop() {
            if x == to {
                return true;
            }
            for &(i, j, _) in &self.lags {
                if i == x && !seen[j] {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        false
    }

    /// Number of operations in the subproblem.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the subproblem is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Counts all valid schedules, stopping early at `cap`.
    ///
    /// Returns `None` if the count exceeds `cap` (enumeration is
    /// exponential; the paper uses exact counts "only for small examples").
    pub fn count_capped(&self, cap: u128) -> Option<u128> {
        let mut assigned = vec![0u32; self.nodes.len()];
        let mut count = 0u128;
        if self.dfs_count(0, &mut assigned, &mut count, cap) {
            Some(count)
        } else {
            None
        }
    }

    /// Counts all valid schedules (cap `u128::MAX`).
    pub fn count(&self) -> u128 {
        self.count_capped(u128::MAX)
            .expect("u128 cap not reachable")
    }

    /// Enumerates every valid schedule, invoking `f` with `(nodes, steps)`.
    pub fn for_each<F: FnMut(&[NodeId], &[u32])>(&self, mut f: F) {
        let mut assigned = vec![0u32; self.nodes.len()];
        self.dfs_each(0, &mut assigned, &mut f);
    }

    fn feasible_range(&self, i: usize, assigned: &[u32]) -> Option<(u32, u32)> {
        let (asap, alap) = self.windows[i];
        let mut lo = asap;
        for &(p, lag) in &self.preds[i] {
            if p < i {
                lo = lo.max(assigned[p] + lag);
            }
        }
        // Constraints from preds placed *after* i in topo order cannot
        // exist: topo order guarantees p < i. (with_order may break that;
        // handled by re-checking at the end in dfs via post-filter.)
        if lo > alap {
            None
        } else {
            Some((lo, alap))
        }
    }

    fn satisfies_all(&self, assigned: &[u32]) -> bool {
        self.lags
            .iter()
            .all(|&(i, j, lag)| assigned[j] >= assigned[i] + lag)
    }

    fn dfs_count(&self, i: usize, assigned: &mut [u32], count: &mut u128, cap: u128) -> bool {
        if i == self.nodes.len() {
            if self.satisfies_all(assigned) {
                *count += 1;
                if *count > cap {
                    return false;
                }
            }
            return true;
        }
        let Some((lo, hi)) = self.feasible_range(i, assigned) else {
            return true;
        };
        for s in lo..=hi {
            assigned[i] = s;
            if !self.dfs_count(i + 1, assigned, count, cap) {
                return false;
            }
        }
        true
    }

    fn dfs_each<F: FnMut(&[NodeId], &[u32])>(&self, i: usize, assigned: &mut [u32], f: &mut F) {
        if i == self.nodes.len() {
            if self.satisfies_all(assigned) {
                f(&self.nodes, assigned);
            }
            return;
        }
        let Some((lo, hi)) = self.feasible_range(i, assigned) else {
            return;
        };
        for s in lo..=hi {
            assigned[i] = s;
            self.dfs_each(i + 1, assigned, f);
        }
    }
}

/// The `ψ_W / ψ_N` ratio for one temporal edge within a subproblem: the
/// number of schedules in which `src` runs before `dst` divided by the
/// total number of schedules.
///
/// Returns `None` if counting exceeds `cap` or the subproblem admits no
/// schedule at all.
pub fn psi_ratio(problem: &SubProblem, src: NodeId, dst: NodeId, cap: u128) -> Option<f64> {
    let total = problem.count_capped(cap)?;
    if total == 0 {
        return None;
    }
    let constrained = problem.with_order(src, dst)?.count_capped(cap)?;
    Some(constrained as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::{Cdfg, OpKind};

    /// Two independent ops, 3 steps each: 9 schedules.
    #[test]
    fn independent_ops_multiply() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, b).unwrap();
        let w = Windows::new(&g, 3).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b]);
        assert_eq!(p.count(), 9);
    }

    /// A chain a -> b over 3 steps: C(3,2) = 3 schedules.
    #[test]
    fn chained_ops_respect_order() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        let w = Windows::new(&g, 3).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b]);
        assert_eq!(p.count(), 3);
    }

    /// Ordering through an intermediate node *outside* the subset still
    /// constrains the pair, with lag 2.
    #[test]
    fn transitive_lag_through_excluded_node() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let m = g.add_node(OpKind::Neg); // excluded middle
        let b = g.add_node(OpKind::Not);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, m).unwrap();
        g.add_data_edge(m, b).unwrap();
        let w = Windows::new(&g, 4).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b]);
        // a in [1,2], b in [3,4], step(b) >= step(a) + 2:
        // (1,3),(1,4),(2,4) = 3 schedules.
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn with_order_restricts_counts() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, b).unwrap();
        let w = Windows::new(&g, 3).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b]);
        let total = p.count(); // 9
        let ordered = p.with_order(a, b).unwrap().count();
        // a strictly before b over 3 steps: C(3,2) = 3.
        assert_eq!(total, 9);
        assert_eq!(ordered, 3);
        let ratio = psi_ratio(&p, a, b, 1_000_000).unwrap();
        assert!((ratio - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn contradictory_orders_count_zero() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap(); // a must precede b
        let w = Windows::new(&g, 3).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b]);
        let rev = p.with_order(b, a).unwrap();
        assert_eq!(rev.count(), 0);
    }

    #[test]
    fn cap_triggers_on_large_spaces() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let ops: Vec<NodeId> = (0..8)
            .map(|_| {
                let n = g.add_node(OpKind::Not);
                g.add_data_edge(x, n).unwrap();
                n
            })
            .collect();
        let w = Windows::new(&g, 10).unwrap();
        let p = SubProblem::from_graph(&g, &w, &ops);
        // 10^8 schedules >> 1000.
        assert_eq!(p.count_capped(1000), None);
    }

    #[test]
    fn enumeration_matches_count() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        let c = g.add_node(OpKind::Not);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(x, c).unwrap();
        let w = Windows::new(&g, 3).unwrap();
        let p = SubProblem::from_graph(&g, &w, &[a, b, c]);
        let mut seen = Vec::new();
        p.for_each(|nodes, steps| {
            assert_eq!(nodes.len(), steps.len());
            seen.push(steps.to_vec());
        });
        assert_eq!(seen.len() as u128, p.count());
        // All enumerated schedules are distinct.
        seen.sort();
        let before = seen.len();
        seen.dedup();
        assert_eq!(seen.len(), before);
    }
}
