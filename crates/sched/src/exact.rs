//! Exact (branch-and-bound) scheduling.
//!
//! The paper names two scheduling families: heuristics (force-directed
//! [14]) and exact formulations (ILP [15]). This module is the exact
//! counterpart in this workspace: an iterative-deepening branch-and-bound
//! that finds a **minimum-latency** resource-constrained schedule, used to
//! certify heuristic quality on small designs and to give watermark
//! experiments a ground-truth optimum.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::{DesignContext, UnitTiming};

use crate::{OpClass, ResourceSet, Schedule, ScheduleError};

/// Finds a minimum-latency schedule by iterative deepening.
///
/// For each candidate latency `L` starting at the critical path, a
/// depth-first search assigns operations (topological order, critical
/// ops first) to steps within their `[earliest, L − tail + 1]` windows
/// under the per-step resource limits, backtracking on dead ends. The
/// first feasible `L` is optimal.
///
/// Exponential in the worst case: intended for designs up to a few dozen
/// operations (`limit_nodes` guards against accidental big inputs).
///
/// # Errors
///
/// * [`ScheduleError::InfeasibleDeadline`] if no schedule exists within
///   `max_latency`.
///
/// # Panics
///
/// Panics if the graph is cyclic or has more than `MAX_EXACT_NODES`
/// operations.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_sched::{exact_schedule, ResourceSet};
///
/// let g = iir4_parallel();
/// let s = exact_schedule(&g, &ResourceSet::unlimited(), 12)?;
/// assert_eq!(s.length(), 6); // the critical path is optimal
/// # Ok::<(), localwm_sched::ScheduleError>(())
/// ```
pub fn exact_schedule(
    g: &Cdfg,
    resources: &ResourceSet,
    max_latency: u32,
) -> Result<Schedule, ScheduleError> {
    exact_schedule_in(&DesignContext::from(g), resources, max_latency)
}

/// [`exact_schedule`] against a shared [`DesignContext`], reusing its
/// memoized topological order and unit-delay timing.
///
/// # Errors
///
/// * [`ScheduleError::InfeasibleDeadline`] if no schedule exists within
///   `max_latency`.
///
/// # Panics
///
/// Panics if the graph is cyclic or has more than `MAX_EXACT_NODES`
/// operations.
pub fn exact_schedule_in(
    ctx: &DesignContext,
    resources: &ResourceSet,
    max_latency: u32,
) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    assert!(
        g.op_count() <= MAX_EXACT_NODES,
        "exact scheduling is exponential; {} ops exceed the {} cap",
        g.op_count(),
        MAX_EXACT_NODES
    );
    let timing = ctx.unit_timing();
    let cp = timing.critical_path();
    // Class-count lower bound: ceil(ops_of_class / units).
    let mut class_lb = cp;
    let mut per_class = [0u32; OpClass::COUNT];
    for n in g.node_ids() {
        if g.kind(n).is_schedulable() {
            per_class[OpClass::of(g.kind(n)) as usize] += 1;
        }
    }
    for class in OpClass::ALL {
        if let Some(u) = resources.available(class) {
            class_lb = class_lb.max(per_class[class as usize].div_ceil(u as u32));
        }
    }

    for latency in class_lb..=max_latency.max(class_lb) {
        if latency > max_latency {
            break;
        }
        if let Some(schedule) = try_latency(ctx, resources, timing, latency) {
            debug_assert!(schedule.validate_with_resources(g, resources).is_ok());
            return Ok(schedule);
        }
    }
    Err(ScheduleError::InfeasibleDeadline {
        requested: max_latency,
        needed: max_latency + 1,
    })
}

/// The hard cap on exact-scheduling problem size.
pub const MAX_EXACT_NODES: usize = 64;

fn try_latency(
    ctx: &DesignContext,
    resources: &ResourceSet,
    timing: &UnitTiming,
    latency: u32,
) -> Option<Schedule> {
    let g = ctx.graph();
    // Order: topological, critical (small mobility) first for early pruning.
    let mut ops: Vec<NodeId> = ctx
        .topo()
        .iter()
        .copied()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect();
    // Stable secondary sort by mobility keeps the topological property:
    // we must NOT reorder dependents before dependencies, so sort only as a
    // tiebreak via stable sort on mobility *within* the topo order is
    // unsound in general; instead keep pure topological order (assignments
    // propagate earliest-step constraints forward, which is sound).
    let _ = &mut ops;

    let mut schedule = Schedule::empty(g);
    let mut usage = vec![[0usize; OpClass::COUNT]; latency as usize + 1];
    if dfs(
        g,
        resources,
        timing,
        latency,
        &ops,
        0,
        &mut schedule,
        &mut usage,
    ) {
        Some(schedule)
    } else {
        None
    }
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    g: &Cdfg,
    resources: &ResourceSet,
    timing: &UnitTiming,
    latency: u32,
    ops: &[NodeId],
    idx: usize,
    schedule: &mut Schedule,
    usage: &mut [[usize; OpClass::COUNT]],
) -> bool {
    let Some(&n) = ops.get(idx) else {
        return true;
    };
    let class = OpClass::of(g.kind(n));
    let earliest = g
        .preds(n)
        .filter(|&p| g.kind(p).is_schedulable())
        .filter_map(|p| schedule.step(p))
        .max()
        .map_or(1, |m| m + 1)
        .max(timing.asap(n));
    let latest = timing.alap(n, latency);
    if earliest > latest {
        return false;
    }
    for step in earliest..=latest {
        if let Some(avail) = resources.available(class) {
            if usage[step as usize][class as usize] >= avail {
                continue;
            }
        }
        usage[step as usize][class as usize] += 1;
        schedule.set_step(n, step);
        if dfs(g, resources, timing, latency, ops, idx + 1, schedule, usage) {
            return true;
        }
        schedule.clear_step(n);
        usage[step as usize][class as usize] -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list_schedule;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{Cdfg, OpKind};

    #[test]
    fn unlimited_resources_reach_critical_path() {
        let g = iir4_parallel();
        let s = exact_schedule(&g, &ResourceSet::unlimited(), 10).unwrap();
        assert_eq!(s.length(), 6);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn exact_never_loses_to_list() {
        let g = iir4_parallel();
        for (alu, mult) in [(1usize, 1usize), (2, 1), (2, 2), (4, 2)] {
            let rs = ResourceSet::unlimited()
                .with(OpClass::Alu, alu)
                .with(OpClass::Multiplier, mult);
            let list = list_schedule(&g, &rs, None).unwrap();
            let exact = exact_schedule(&g, &rs, list.length()).unwrap();
            assert!(
                exact.length() <= list.length(),
                "alu={alu} mult={mult}: exact {} > list {}",
                exact.length(),
                list.length()
            );
            assert!(exact.validate_with_resources(&g, &rs).is_ok());
        }
    }

    #[test]
    fn class_bound_is_respected() {
        // 6 independent multiplies on 2 multipliers: exactly 3 steps.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        for _ in 0..6 {
            let m = g.add_node(OpKind::ConstMul);
            g.add_data_edge(x, m).unwrap();
        }
        let rs = ResourceSet::unlimited().with(OpClass::Multiplier, 2);
        let s = exact_schedule(&g, &rs, 10).unwrap();
        assert_eq!(s.length(), 3);
    }

    #[test]
    fn infeasible_budget_is_reported() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        for _ in 0..4 {
            let m = g.add_node(OpKind::ConstMul);
            g.add_data_edge(x, m).unwrap();
        }
        let rs = ResourceSet::unlimited().with(OpClass::Multiplier, 1);
        assert!(matches!(
            exact_schedule(&g, &rs, 3),
            Err(ScheduleError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn temporal_edges_constrain_the_optimum() {
        // Two independent ops; a temporal edge forces 2 steps even with
        // unlimited resources.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, b).unwrap();
        let free = exact_schedule(&g, &ResourceSet::unlimited(), 4).unwrap();
        assert_eq!(free.length(), 1);
        g.add_temporal_edge(a, b).unwrap();
        let constrained = exact_schedule(&g, &ResourceSet::unlimited(), 4).unwrap();
        assert_eq!(constrained.length(), 2);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversized_input_panics() {
        let g = localwm_cdfg::generators::random_dag(100, 0.05, 1);
        let _ = exact_schedule(&g, &ResourceSet::unlimited(), 100);
    }
}
