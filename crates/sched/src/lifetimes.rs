//! Variable lifetimes and register binding.
//!
//! "Scheduling determines the total number of control steps …, the minimum
//! number of functional modules …, and the lifetimes of variables" (paper
//! §IV-A). This module computes those lifetimes from a schedule and binds
//! them to registers with the classic left-edge algorithm, completing the
//! datapath-cost picture next to module allocation.

use localwm_cdfg::{Cdfg, NodeId, OpKind};

use crate::Schedule;

/// The lifetime of one value: produced at the end of `def` (control step of
/// its producer; 0 for primary inputs/constants) and needed through `last_use`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The producing node.
    pub producer: NodeId,
    /// Step the value becomes available (producer's step; 0 for sources).
    pub def: u32,
    /// Last step in which a consumer reads it (equals `def` for values
    /// consumed only by free sinks).
    pub last_use: u32,
}

impl Lifetime {
    /// Whether two lifetimes overlap (need simultaneous storage).
    ///
    /// A value is stored from the end of its def step until the end of its
    /// last-use step, so intervals `[def, last_use]` overlapping in more
    /// than a point boundary conflict.
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        self.def < other.last_use && other.def < self.last_use
    }
}

/// Computes the lifetimes of all values in a scheduled design.
///
/// Every node that produces a value consumed by a data edge gets a
/// lifetime; free sinks (outputs) read at the consumer producer's step.
///
/// # Panics
///
/// Panics if a schedulable producer or consumer lacks a step (validate the
/// schedule first).
pub fn lifetimes(g: &Cdfg, schedule: &Schedule) -> Vec<Lifetime> {
    let step_of = |n: NodeId| -> u32 {
        if g.kind(n).is_schedulable() {
            schedule.step(n).expect("schedulable node has a step")
        } else {
            0
        }
    };
    let mut out = Vec::new();
    for n in g.node_ids() {
        if g.kind(n) == OpKind::Output {
            continue;
        }
        let consumers: Vec<NodeId> = g.data_succs(n).collect();
        if consumers.is_empty() {
            continue;
        }
        let def = step_of(n);
        let last_use = consumers
            .iter()
            .map(|&c| {
                if g.kind(c).is_schedulable() {
                    step_of(c)
                } else {
                    def // free sinks read immediately
                }
            })
            .max()
            .unwrap_or(def);
        out.push(Lifetime {
            producer: n,
            def,
            last_use: last_use.max(def),
        });
    }
    out
}

/// Binds lifetimes to registers with the left-edge algorithm: sort by def
/// step, greedily pack each value into the first register whose current
/// occupant expired. Returns the register index per lifetime (parallel to
/// the input) and is optimal in register count for interval graphs.
pub fn left_edge_binding(lifetimes: &[Lifetime]) -> (Vec<usize>, usize) {
    let mut order: Vec<usize> = (0..lifetimes.len()).collect();
    order.sort_by_key(|&i| (lifetimes[i].def, lifetimes[i].last_use, i));
    let mut reg_free_at: Vec<u32> = Vec::new(); // last_use of current occupant
    let mut binding = vec![0usize; lifetimes.len()];
    for i in order {
        let lt = lifetimes[i];
        // First register whose occupant expired at or before this def.
        match reg_free_at.iter().position(|&free| free <= lt.def) {
            Some(r) => {
                reg_free_at[r] = lt.last_use;
                binding[i] = r;
            }
            None => {
                reg_free_at.push(lt.last_use);
                binding[i] = reg_free_at.len() - 1;
            }
        }
    }
    let count = reg_free_at.len();
    (binding, count)
}

/// The minimum register count of a scheduled design (left-edge bound).
pub fn register_count(g: &Cdfg, schedule: &Schedule) -> usize {
    let lts = lifetimes(g, schedule);
    left_edge_binding(&lts).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{alap_schedule, list_schedule, ResourceSet};
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::generators::{layered, LayeredConfig};

    #[test]
    fn chain_needs_one_register() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let mut prev = x;
        for _ in 0..5 {
            let n = g.add_node(OpKind::Not);
            g.add_data_edge(prev, n).unwrap();
            prev = n;
        }
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        // Each value dies the step after it is born: lifetimes overlap only
        // pairwise at handoff, and the left edge reuses one register plus
        // the input's.
        assert!(register_count(&g, &s) <= 2);
    }

    #[test]
    fn binding_never_overlaps_within_a_register() {
        let g = iir4_parallel();
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let lts = lifetimes(&g, &s);
        let (binding, count) = left_edge_binding(&lts);
        assert!(count >= 1);
        for i in 0..lts.len() {
            for j in (i + 1)..lts.len() {
                if binding[i] == binding[j] {
                    assert!(
                        !lts[i].overlaps(&lts[j]),
                        "register {} holds overlapping values {:?} and {:?}",
                        binding[i],
                        lts[i],
                        lts[j]
                    );
                }
            }
        }
    }

    #[test]
    fn spreading_a_schedule_can_cost_registers() {
        let g = layered(&LayeredConfig {
            ops: 80,
            layers: 10,
            seed: 4,
            ..Default::default()
        });
        let packed = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let spread = alap_schedule(&g, packed.length() * 3).unwrap();
        // ALAP stretches producer-to-consumer distances: register pressure
        // should not *drop*.
        assert!(register_count(&g, &spread) + 2 >= register_count(&g, &packed));
    }

    #[test]
    fn lifetime_overlap_predicate() {
        let a = Lifetime {
            producer: NodeId::from_index(0),
            def: 1,
            last_use: 4,
        };
        let b = Lifetime {
            producer: NodeId::from_index(1),
            def: 4,
            last_use: 6,
        };
        let c = Lifetime {
            producer: NodeId::from_index(2),
            def: 2,
            last_use: 3,
        };
        assert!(!a.overlaps(&b), "handoff at a step boundary is free");
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&a));
    }

    #[test]
    fn every_consumed_value_gets_a_lifetime() {
        let g = iir4_parallel();
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let lts = lifetimes(&g, &s);
        let producers: std::collections::HashSet<_> = lts.iter().map(|l| l.producer).collect();
        for n in g.node_ids() {
            let produces = g.data_succs(n).next().is_some() && g.kind(n) != OpKind::Output;
            assert_eq!(producers.contains(&n), produces, "{n}");
        }
    }
}
