//! ASAP/ALAP mobility windows under a deadline.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::{DesignContext, EngineError, UnitTiming};

use crate::ScheduleError;

/// Per-node scheduling windows `[asap, alap]` for a fixed number of
/// available control steps.
///
/// The windows are the paper's `asap(·)`/`alap(·)` functions: the scheduling
/// freedom of each operation given the design's latency budget. Watermark
/// constraint encoding pairs nodes with *overlapping* windows.
///
/// The timing substrate comes from the shared
/// [`DesignContext`] — build windows with [`Windows::in_ctx`] to reuse its
/// memoized analyses; [`Windows::new`] is a convenience shim that constructs
/// a throwaway context.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_sched::Windows;
///
/// let g = iir4_parallel();
/// let w = Windows::new(&g, 8)?; // two slack steps over the 6-step CP
/// let c1 = g.node_by_name("C1").unwrap();
/// assert_eq!(w.asap(c1), 1);
/// assert_eq!(w.alap(c1), 3);
/// # Ok::<(), localwm_sched::ScheduleError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Windows {
    timing: UnitTiming,
    available_steps: u32,
}

impl Windows {
    /// Computes windows for `available_steps` control steps against a
    /// shared context (the memoized path).
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InfeasibleDeadline`] if the deadline is shorter than
    /// the critical path.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn in_ctx(ctx: &DesignContext, available_steps: u32) -> Result<Self, ScheduleError> {
        // Populate / validate via the context's memoized window table.
        match ctx.windows(available_steps) {
            Ok(_) => {}
            Err(EngineError::InfeasibleDeadline {
                deadline,
                critical_path,
            }) => {
                return Err(ScheduleError::InfeasibleDeadline {
                    requested: deadline,
                    needed: critical_path,
                })
            }
            Err(EngineError::Cyclic(_)) => panic!("windows require a DAG"),
        }
        Ok(Windows {
            timing: ctx.unit_timing().clone(),
            available_steps,
        })
    }

    /// Computes windows for `available_steps` control steps.
    ///
    /// Convenience shim over [`Windows::in_ctx`] with a throwaway context.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::InfeasibleDeadline`] if the deadline is shorter than
    /// the critical path.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn new(g: &Cdfg, available_steps: u32) -> Result<Self, ScheduleError> {
        Self::in_ctx(&DesignContext::from(g), available_steps)
    }

    /// Windows with the tightest feasible deadline (`steps == C`), against
    /// a shared context.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn tight_in(ctx: &DesignContext) -> Self {
        let timing = ctx.unit_timing().clone();
        let available_steps = timing.critical_path();
        Windows {
            timing,
            available_steps,
        }
    }

    /// Windows with the tightest feasible deadline (`steps == C`).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn tight(g: &Cdfg) -> Self {
        Self::tight_in(&DesignContext::from(g))
    }

    /// The deadline these windows were computed for.
    pub fn available_steps(&self) -> u32 {
        self.available_steps
    }

    /// The critical path of the underlying graph.
    pub fn critical_path(&self) -> u32 {
        self.timing.critical_path()
    }

    /// Earliest step of `n`.
    pub fn asap(&self, n: NodeId) -> u32 {
        self.timing.asap(n)
    }

    /// Latest step of `n` under the deadline.
    pub fn alap(&self, n: NodeId) -> u32 {
        self.timing.alap(n, self.available_steps)
    }

    /// `alap - asap`.
    pub fn mobility(&self, n: NodeId) -> u32 {
        self.timing.mobility(n, self.available_steps)
    }

    /// The paper's laxity of `n` (longest path through `n`, in ops).
    pub fn laxity(&self, n: NodeId) -> u32 {
        self.timing.laxity(n)
    }

    /// Whether the windows of `a` and `b` overlap (the temporal-edge
    /// pairing precondition).
    pub fn overlap(&self, a: NodeId, b: NodeId) -> bool {
        self.timing.windows_overlap(a, b, self.available_steps)
    }

    /// Access to the underlying timing (e.g. for incremental updates).
    pub fn timing(&self) -> &UnitTiming {
        &self.timing
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{Cdfg, OpKind};

    #[test]
    fn infeasible_deadline_is_rejected() {
        let g = iir4_parallel();
        let err = Windows::new(&g, 5).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::InfeasibleDeadline {
                requested: 5,
                needed: 6
            }
        );
    }

    #[test]
    fn tight_windows_pin_critical_nodes() {
        let g = iir4_parallel();
        let w = Windows::tight(&g);
        assert_eq!(w.available_steps(), 6);
        let a9 = g.node_by_name("A9").unwrap();
        assert_eq!(w.asap(a9), w.alap(a9));
        assert_eq!(w.mobility(a9), 0);
    }

    #[test]
    fn slack_grows_with_deadline() {
        let g = iir4_parallel();
        let tight = Windows::new(&g, 6).unwrap();
        let loose = Windows::new(&g, 12).unwrap();
        let c2 = g.node_by_name("C2").unwrap();
        assert!(loose.mobility(c2) > tight.mobility(c2));
    }

    #[test]
    fn asap_never_exceeds_alap() {
        let g = iir4_parallel();
        let w = Windows::new(&g, 9).unwrap();
        for n in g.node_ids() {
            assert!(w.asap(n) <= w.alap(n), "window inverted at {n}");
        }
    }

    #[test]
    fn shared_context_and_shim_agree() {
        let g = iir4_parallel();
        let ctx = DesignContext::from(&g);
        let a = Windows::in_ctx(&ctx, 9).unwrap();
        let b = Windows::new(&g, 9).unwrap();
        for n in g.node_ids() {
            assert_eq!(a.asap(n), b.asap(n));
            assert_eq!(a.alap(n), b.alap(n));
        }
    }

    #[test]
    fn disjoint_windows_do_not_overlap() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        let w = Windows::tight(&g);
        assert!(!w.overlap(a, b));
    }
}
