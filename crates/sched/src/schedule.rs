//! The schedule type and its validity checks.

use std::fmt;

use localwm_cdfg::{Cdfg, NodeId};

use crate::ResourceSet;

/// A control-step assignment: every schedulable operation gets a 1-based
/// step; free nodes (inputs, constants, outputs) carry no step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    steps: Vec<Option<u32>>,
}

/// Scheduling errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// A schedulable operation has no assigned step.
    Unscheduled(NodeId),
    /// A free node was assigned a step.
    FreeNodeScheduled(NodeId),
    /// A precedence edge is violated (`src` not strictly before `dst`).
    PrecedenceViolated {
        /// Edge source.
        src: NodeId,
        /// Edge destination.
        dst: NodeId,
    },
    /// More operations of one class in a step than the resource set allows.
    ResourceOversubscribed {
        /// The oversubscribed control step.
        step: u32,
        /// Operations of the class placed in that step.
        used: usize,
        /// Available units of the class.
        available: usize,
    },
    /// The requested deadline is infeasible (shorter than the critical
    /// path, or resources too scarce for the scheduler in use).
    InfeasibleDeadline {
        /// The requested number of control steps.
        requested: u32,
        /// A lower bound on the achievable length.
        needed: u32,
    },
    /// A step assignment of 0 was supplied (steps are 1-based).
    ZeroStep(NodeId),
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::Unscheduled(n) => write!(f, "operation {n} has no control step"),
            ScheduleError::FreeNodeScheduled(n) => {
                write!(f, "free node {n} must not carry a control step")
            }
            ScheduleError::PrecedenceViolated { src, dst } => {
                write!(f, "precedence violated: {src} must precede {dst}")
            }
            ScheduleError::ResourceOversubscribed {
                step,
                used,
                available,
            } => write!(
                f,
                "step {step} uses {used} unit(s) of a class with only {available}"
            ),
            ScheduleError::InfeasibleDeadline { requested, needed } => write!(
                f,
                "deadline of {requested} step(s) infeasible; at least {needed} needed"
            ),
            ScheduleError::ZeroStep(n) => write!(f, "operation {n} assigned step 0"),
        }
    }
}

impl std::error::Error for ScheduleError {}

impl Schedule {
    /// Creates an empty (all-unscheduled) assignment sized for `g`.
    pub fn empty(g: &Cdfg) -> Self {
        Schedule {
            steps: vec![None; g.node_count()],
        }
    }

    /// Creates a schedule from raw per-node steps.
    pub fn from_steps(steps: Vec<Option<u32>>) -> Self {
        Schedule { steps }
    }

    /// The step of a node (`None` for free or unscheduled nodes).
    pub fn step(&self, n: NodeId) -> Option<u32> {
        self.steps.get(n.index()).copied().flatten()
    }

    /// Assigns a step.
    pub fn set_step(&mut self, n: NodeId, step: u32) {
        self.steps[n.index()] = Some(step);
    }

    /// Clears a step assignment.
    pub fn clear_step(&mut self, n: NodeId) {
        self.steps[n.index()] = None;
    }

    /// Total schedule length in control steps (0 if nothing scheduled).
    pub fn length(&self) -> u32 {
        self.steps.iter().flatten().copied().max().unwrap_or(0)
    }

    /// Iterator over `(node, step)` pairs of scheduled operations.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.steps
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|step| (NodeId::from_index(i), step)))
    }

    /// Whether `a` executes strictly before `b`.
    ///
    /// Returns `None` if either is unscheduled.
    pub fn executes_before(&self, a: NodeId, b: NodeId) -> Option<bool> {
        Some(self.step(a)? < self.step(b)?)
    }

    /// Renders the schedule as a per-step table for human inspection.
    ///
    /// ```text
    /// step 1 | C1(cmul) C2(cmul)
    /// step 2 | A1(add)
    /// ```
    pub fn render(&self, g: &Cdfg) -> String {
        let len = self.length() as usize;
        let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); len + 1];
        for (n, s) in self.iter() {
            buckets[s as usize].push(n);
        }
        let mut out = String::new();
        let width = len.to_string().len();
        for (step, bucket) in buckets.iter().enumerate().skip(1) {
            let mut names: Vec<String> = bucket
                .iter()
                .map(|&n| {
                    let label = g.node_name(n).map_or_else(|| n.to_string(), str::to_owned);
                    format!("{label}({})", g.kind(n))
                })
                .collect();
            names.sort_unstable();
            out.push_str(&format!("step {step:>width$} | {}\n", names.join(" ")));
        }
        out
    }

    /// Validates precedence completeness for a graph (no resource check).
    ///
    /// # Errors
    ///
    /// See [`ScheduleError`].
    pub fn validate(&self, g: &Cdfg) -> Result<(), ScheduleError> {
        self.validate_with_resources(g, &ResourceSet::unlimited())
    }

    /// Validates a schedule against a graph and a resource set:
    ///
    /// 1. every schedulable operation has a (non-zero) step;
    /// 2. free nodes have no step;
    /// 3. every edge (data, control, or temporal) whose endpoints are both
    ///    schedulable runs source strictly before destination;
    /// 4. no control step uses more units of a class than available.
    ///
    /// # Errors
    ///
    /// The first violation found, as a [`ScheduleError`].
    pub fn validate_with_resources(
        &self,
        g: &Cdfg,
        resources: &ResourceSet,
    ) -> Result<(), ScheduleError> {
        for n in g.node_ids() {
            let schedulable = g.kind(n).is_schedulable();
            match (schedulable, self.step(n)) {
                (true, None) => return Err(ScheduleError::Unscheduled(n)),
                (true, Some(0)) => return Err(ScheduleError::ZeroStep(n)),
                (false, Some(_)) => return Err(ScheduleError::FreeNodeScheduled(n)),
                _ => {}
            }
        }
        for e in g.edges() {
            let (s, d) = (e.src(), e.dst());
            match (self.step(s), self.step(d)) {
                (Some(a), Some(b)) if a >= b => {
                    return Err(ScheduleError::PrecedenceViolated { src: s, dst: d })
                }
                _ => {}
            }
        }
        if !resources.is_unlimited() {
            let len = self.length();
            let classes = resources.class_count();
            let mut usage = vec![0usize; (len as usize + 1) * classes];
            for (n, step) in self.iter() {
                let class = crate::OpClass::of(g.kind(n));
                let cell = &mut usage[step as usize * classes + class as usize];
                *cell += 1;
                if let Some(avail) = resources.available(class) {
                    if *cell > avail {
                        return Err(ScheduleError::ResourceOversubscribed {
                            step,
                            used: *cell,
                            available: avail,
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

/// Hand-written [`serde`] impls (the vendored offline serde stand-in has no
/// derive macros; see `vendor/README.md`): a schedule serializes as its
/// dense per-node step array, `null` for free nodes.
#[cfg(feature = "serde")]
mod serde_impls {
    use super::Schedule;
    use serde::{DeError, Deserialize, Serialize, Value};

    impl Serialize for Schedule {
        fn to_value(&self) -> Value {
            self.steps.to_value()
        }
    }

    impl Deserialize for Schedule {
        fn from_value(v: &Value) -> Result<Self, DeError> {
            Ok(Schedule {
                steps: Deserialize::from_value(v)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::{Cdfg, OpKind};

    fn add_chain() -> (Cdfg, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        (g, x, a, b)
    }

    #[test]
    fn valid_schedule_passes() {
        let (g, _, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 1);
        s.set_step(b, 2);
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.length(), 2);
        assert_eq!(s.executes_before(a, b), Some(true));
    }

    #[test]
    fn render_shows_every_scheduled_op() {
        let (g, _, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 1);
        s.set_step(b, 2);
        let table = s.render(&g);
        assert_eq!(table.lines().count(), 2);
        assert!(table.contains("step 1 |"));
        assert!(table.contains("(not)"));
        assert!(table.contains("(neg)"));
    }

    #[test]
    fn missing_step_is_reported() {
        let (g, _, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 1);
        assert_eq!(s.validate(&g), Err(ScheduleError::Unscheduled(b)));
    }

    #[test]
    fn precedence_violation_is_reported() {
        let (g, _, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 2);
        s.set_step(b, 2);
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::PrecedenceViolated { src: a, dst: b })
        );
    }

    #[test]
    fn temporal_edges_are_enforced() {
        let (mut g, _, a, b) = add_chain();
        let c = g.add_node(OpKind::UnitOp);
        let x2 = g.add_node(OpKind::Input);
        g.add_data_edge(x2, c).unwrap();
        g.add_temporal_edge(b, c).unwrap();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 1);
        s.set_step(b, 2);
        s.set_step(c, 2);
        assert_eq!(
            s.validate(&g),
            Err(ScheduleError::PrecedenceViolated { src: b, dst: c })
        );
        s.set_step(c, 3);
        assert!(s.validate(&g).is_ok());
    }

    #[test]
    fn free_node_with_step_is_rejected() {
        let (g, x, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 1);
        s.set_step(b, 2);
        s.set_step(x, 1);
        assert_eq!(s.validate(&g), Err(ScheduleError::FreeNodeScheduled(x)));
    }

    #[test]
    fn zero_step_is_rejected() {
        let (g, _, a, b) = add_chain();
        let mut s = Schedule::empty(&g);
        s.set_step(a, 0);
        s.set_step(b, 2);
        assert_eq!(s.validate(&g), Err(ScheduleError::ZeroStep(a)));
    }

    #[test]
    fn resource_oversubscription_is_detected() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let y = g.add_node(OpKind::Input);
        let m1 = g.add_node(OpKind::Mul);
        let m2 = g.add_node(OpKind::Mul);
        g.add_data_edge(x, m1).unwrap();
        g.add_data_edge(y, m1).unwrap();
        g.add_data_edge(x, m2).unwrap();
        g.add_data_edge(y, m2).unwrap();
        let mut s = Schedule::empty(&g);
        s.set_step(m1, 1);
        s.set_step(m2, 1);
        let one_mult = ResourceSet::unlimited().with(crate::OpClass::Multiplier, 1);
        assert!(matches!(
            s.validate_with_resources(&g, &one_mult),
            Err(ScheduleError::ResourceOversubscribed {
                step: 1,
                used: 2,
                available: 1
            })
        ));
        s.set_step(m2, 2);
        assert!(s.validate_with_resources(&g, &one_mult).is_ok());
    }
}
