//! Force-directed scheduling (Paulin & Knight).
//!
//! The paper cites force-directed scheduling as the canonical heuristic for
//! behavioral synthesis [14]. Given a latency budget, FDS balances the
//! expected concurrency of each functional-unit class across control steps,
//! minimizing peak resource usage.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;

use crate::{OpClass, Schedule, ScheduleError, Windows};

/// Force-directed schedules a CDFG into `available_steps` control steps,
/// minimizing the peak per-class concurrency.
///
/// The implementation is the classic algorithm: uniform placement
/// probabilities over each operation's live `[asap, alap]` window,
/// per-class distribution graphs, and self + direct predecessor/successor
/// forces. One operation is committed per iteration (lowest total force,
/// ties by node id), windows are re-propagated, and the loop repeats —
/// `O(n² · S)` overall, intended for the design-scale problems of the
/// paper's Table II rather than whole programs.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] if `available_steps` is below the
/// critical path.
///
/// # Panics
///
/// Panics if the graph is cyclic.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_sched::force_directed_schedule;
///
/// let g = iir4_parallel();
/// let s = force_directed_schedule(&g, 8)?;
/// assert!(s.validate(&g).is_ok());
/// assert!(s.length() <= 8);
/// # Ok::<(), localwm_sched::ScheduleError>(())
/// ```
pub fn force_directed_schedule(g: &Cdfg, available_steps: u32) -> Result<Schedule, ScheduleError> {
    force_directed_schedule_in(&DesignContext::from(g), available_steps)
}

/// [`force_directed_schedule`] against a shared [`DesignContext`].
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] if `available_steps` is below the
/// critical path.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn force_directed_schedule_in(
    ctx: &DesignContext,
    available_steps: u32,
) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    let windows = Windows::in_ctx(ctx, available_steps)?;
    let steps = available_steps as usize;

    let mut asap: Vec<u32> = g.node_ids().map(|id| windows.asap(id)).collect();
    let mut alap: Vec<u32> = g.node_ids().map(|id| windows.alap(id)).collect();
    let schedulable: Vec<bool> = g.node_ids().map(|id| g.kind(id).is_schedulable()).collect();
    let class: Vec<OpClass> = g.node_ids().map(|id| OpClass::of(g.kind(id))).collect();

    let mut unplaced: Vec<NodeId> = g.node_ids().filter(|id| schedulable[id.index()]).collect();
    let mut schedule = Schedule::empty(g);

    // Distribution graphs: dg[class][step-1].
    let mut dg = vec![vec![0f64; steps]; OpClass::COUNT];
    let prob = |asap: u32, alap: u32, s: u32| -> f64 {
        if (asap..=alap).contains(&s) {
            1.0 / f64::from(alap - asap + 1)
        } else {
            0.0
        }
    };
    for &id in &unplaced {
        let i = id.index();
        for s in asap[i]..=alap[i] {
            dg[class[i] as usize][(s - 1) as usize] += prob(asap[i], alap[i], s);
        }
    }

    // Force of moving a window [a0,b0] to [a1,b1] for class c.
    let force_of = |dg: &[Vec<f64>], c: OpClass, a0: u32, b0: u32, a1: u32, b1: u32| -> f64 {
        let row = &dg[c as usize];
        let mut f = 0.0;
        for s in a1..=b1 {
            f += row[(s - 1) as usize] * prob(a1, b1, s);
        }
        for s in a0..=b0 {
            f -= row[(s - 1) as usize] * prob(a0, b0, s);
        }
        f
    };

    while !unplaced.is_empty() {
        let mut best: Option<(f64, NodeId, u32)> = None;
        for &id in &unplaced {
            let i = id.index();
            'step: for t in asap[i]..=alap[i] {
                let mut total = force_of(&dg, class[i], asap[i], alap[i], t, t);
                // Direct successors: window floor rises to t+1.
                for d in g.succs(id) {
                    let j = d.index();
                    if !schedulable[j] {
                        continue;
                    }
                    let na = asap[j].max(t + 1);
                    if na > alap[j] {
                        continue 'step; // infeasible placement
                    }
                    if na != asap[j] {
                        total += force_of(&dg, class[j], asap[j], alap[j], na, alap[j]);
                    }
                }
                // Direct predecessors: window ceiling drops to t-1.
                for p in g.preds(id) {
                    let j = p.index();
                    if !schedulable[j] {
                        continue;
                    }
                    if schedule.step(p).is_some() {
                        continue;
                    }
                    let nb = alap[j].min(t.saturating_sub(1));
                    if nb < asap[j] {
                        continue 'step;
                    }
                    if nb != alap[j] {
                        total += force_of(&dg, class[j], asap[j], alap[j], asap[j], nb);
                    }
                }
                let better = match best {
                    None => true,
                    Some((bf, bid, _)) => {
                        total < bf - 1e-12 || ((total - bf).abs() <= 1e-12 && id < bid)
                    }
                };
                if better {
                    best = Some((total, id, t));
                }
            }
        }
        let (_, id, t) = best.expect("windows always admit at least one placement");
        let i = id.index();

        // Commit: remove old distribution, pin to t.
        for s in asap[i]..=alap[i] {
            dg[class[i] as usize][(s - 1) as usize] -= prob(asap[i], alap[i], s);
        }
        dg[class[i] as usize][(t - 1) as usize] += 1.0;
        asap[i] = t;
        alap[i] = t;
        schedule.set_step(id, t);
        unplaced.retain(|&u| u != id);

        // Propagate window tightening transitively, updating the DGs.
        let mut stack: Vec<NodeId> = vec![id];
        while let Some(u) = stack.pop() {
            let ui = u.index();
            for d in g.succs(u) {
                let j = d.index();
                if !schedulable[j] || schedule.step(d).is_some() {
                    continue;
                }
                let floor = asap[ui] + u32::from(schedulable[ui]);
                if asap[j] < floor {
                    let nb = alap[j];
                    update_window(&mut dg, class[j], &mut asap[j], &mut alap[j], floor, nb);
                    stack.push(d);
                }
            }
            for p in g.preds(u) {
                let j = p.index();
                if !schedulable[j] || schedule.step(p).is_some() {
                    continue;
                }
                let ceil = alap[ui].saturating_sub(u32::from(schedulable[ui]));
                if alap[j] > ceil {
                    let na = asap[j];
                    update_window(&mut dg, class[j], &mut asap[j], &mut alap[j], na, ceil);
                    stack.push(p);
                }
            }
        }
    }

    debug_assert!(schedule.validate(g).is_ok());
    Ok(schedule)
}

fn update_window(
    dg: &mut [Vec<f64>],
    c: OpClass,
    asap: &mut u32,
    alap: &mut u32,
    na: u32,
    nb: u32,
) {
    let row = &mut dg[c as usize];
    let old_p = 1.0 / f64::from(*alap - *asap + 1);
    for s in *asap..=*alap {
        row[(s - 1) as usize] -= old_p;
    }
    debug_assert!(na <= nb, "window update produced an empty window");
    let new_p = 1.0 / f64::from(nb - na + 1);
    for s in na..=nb {
        row[(s - 1) as usize] += new_p;
    }
    *asap = na;
    *alap = nb;
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{Cdfg, OpKind};

    fn peak_usage(g: &Cdfg, s: &Schedule, c: OpClass) -> usize {
        let mut per_step = std::collections::HashMap::new();
        for (n, step) in s.iter() {
            if OpClass::of(g.kind(n)) == c {
                *per_step.entry(step).or_insert(0usize) += 1;
            }
        }
        per_step.values().copied().max().unwrap_or(0)
    }

    #[test]
    fn produces_valid_schedule_within_deadline() {
        let g = iir4_parallel();
        for steps in [6u32, 8, 12] {
            let s = force_directed_schedule(&g, steps).unwrap();
            assert!(s.validate(&g).is_ok(), "steps={steps}");
            assert!(s.length() <= steps);
        }
    }

    #[test]
    fn slack_reduces_peak_multiplier_usage() {
        let g = iir4_parallel();
        let tight = force_directed_schedule(&g, 6).unwrap();
        let loose = force_directed_schedule(&g, 12).unwrap();
        let pt = peak_usage(&g, &tight, OpClass::Multiplier);
        let pl = peak_usage(&g, &loose, OpClass::Multiplier);
        assert!(
            pl <= pt,
            "FDS with slack should not raise peak mult usage ({pl} > {pt})"
        );
        // With 12 steps, 8 cmuls can spread far below the 8-wide worst case.
        assert!(pl <= 4, "expected balanced multipliers, got {pl}");
    }

    #[test]
    fn infeasible_deadline_rejected() {
        let g = iir4_parallel();
        assert!(matches!(
            force_directed_schedule(&g, 3),
            Err(ScheduleError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn honours_temporal_edges() {
        let mut g = iir4_parallel();
        let c1 = g.node_by_name("C1").unwrap();
        let c6 = g.node_by_name("C6").unwrap();
        g.add_temporal_edge(c1, c6).unwrap();
        let s = force_directed_schedule(&g, 8).unwrap();
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.executes_before(c1, c6), Some(true));
    }

    #[test]
    fn deterministic() {
        let g = iir4_parallel();
        let a = force_directed_schedule(&g, 9).unwrap();
        let b = force_directed_schedule(&g, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn balances_better_than_asap_packing() {
        // 6 independent multiplies + a 3-deep chain; 3 steps available.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        for _ in 0..6 {
            let m = g.add_node(OpKind::ConstMul);
            g.add_data_edge(x, m).unwrap();
        }
        let mut prev = x;
        for _ in 0..3 {
            let a = g.add_node(OpKind::Not);
            g.add_data_edge(prev, a).unwrap();
            prev = a;
        }
        let s = force_directed_schedule(&g, 3).unwrap();
        assert!(s.validate(&g).is_ok());
        // ASAP would put all 6 multiplies in step 1; FDS spreads to ~2/step.
        assert!(peak_usage(&g, &s, OpClass::Multiplier) <= 3);
    }
}
