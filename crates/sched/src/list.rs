//! Resource-constrained list scheduling.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;

use crate::{OpClass, ResourceSet, Schedule, ScheduleError};

/// List-schedules a CDFG.
///
/// Priority function: longest tail first (critical-path scheduling), ties
/// broken by node id for determinism. Every edge kind — data, control and
/// *temporal* — is honoured as a strict precedence, which is exactly how the
/// watermarking flow makes the "synthesis tool" satisfy the embedded
/// constraints transparently.
///
/// With `deadline: None` the schedule is as short as the resources permit.
/// With a deadline the schedule is checked post-hoc and
/// [`ScheduleError::InfeasibleDeadline`] is returned if it overruns.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] when a deadline is given and
/// cannot be met.
///
/// # Panics
///
/// Panics if the graph is cyclic.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_sched::{list_schedule, OpClass, ResourceSet};
///
/// let g = iir4_parallel();
/// // One multiplier: the 8 constant-mults serialize.
/// let rs = ResourceSet::unlimited().with(OpClass::Multiplier, 1);
/// let s = list_schedule(&g, &rs, None)?;
/// assert!(s.validate_with_resources(&g, &rs).is_ok());
/// assert!(s.length() >= 8);
/// # Ok::<(), localwm_sched::ScheduleError>(())
/// ```
pub fn list_schedule(
    g: &Cdfg,
    resources: &ResourceSet,
    deadline: Option<u32>,
) -> Result<Schedule, ScheduleError> {
    list_schedule_in(&DesignContext::from(g), resources, deadline)
}

/// [`list_schedule`] against a shared [`DesignContext`], reusing its
/// memoized unit-delay timing for the priority function.
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] when a deadline is given and
/// cannot be met.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn list_schedule_in(
    ctx: &DesignContext,
    resources: &ResourceSet,
    deadline: Option<u32>,
) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    let timing = ctx.unit_timing();
    let mut schedule = Schedule::empty(g);

    // Remaining unscheduled precedence predecessors per node.
    let mut pending: Vec<usize> = g
        .node_ids()
        .map(|n| g.preds(n).filter(|&p| g.kind(p).is_schedulable()).count())
        .collect();

    // Ready list: schedulable ops whose schedulable preds are all placed.
    let mut ready: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && pending[n.index()] == 0)
        .collect();

    // Earliest step each node may start at, updated as preds are placed.
    let mut earliest: Vec<u32> = vec![1; g.node_count()];

    let mut remaining = g.op_count();
    let mut step: u32 = 0;
    while remaining > 0 {
        step += 1;
        // Candidates runnable this step.
        let mut candidates: Vec<NodeId> = ready
            .iter()
            .copied()
            .filter(|&n| earliest[n.index()] <= step)
            .collect();
        // Longest tail first; ties by id.
        candidates.sort_by_key(|&n| (std::cmp::Reverse(timing.laxity(n)), n));

        let mut used = [0usize; OpClass::COUNT];
        let mut placed: Vec<NodeId> = Vec::new();
        for n in candidates {
            let class = OpClass::of(g.kind(n));
            if let Some(avail) = resources.available(class) {
                if used[class as usize] >= avail {
                    continue;
                }
            }
            used[class as usize] += 1;
            schedule.set_step(n, step);
            placed.push(n);
        }
        for n in placed {
            ready.retain(|&r| r != n);
            remaining -= 1;
            for s in g.succs(n) {
                earliest[s.index()] = earliest[s.index()].max(step + 1);
                if g.kind(s).is_schedulable() {
                    pending[s.index()] -= 1;
                    if pending[s.index()] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
        debug_assert!(
            step <= 2 * g.node_count() as u32 + 2,
            "list scheduler failed to make progress"
        );
    }

    ctx.probe().counter("sched.list.steps", u64::from(step));

    if let Some(d) = deadline {
        let len = schedule.length();
        if len > d {
            return Err(ScheduleError::InfeasibleDeadline {
                requested: d,
                needed: len,
            });
        }
    }
    Ok(schedule)
}

/// ALAP-schedules a CDFG: every operation runs at its latest feasible step
/// under the deadline. Linear time, and it *spreads* work across the whole
/// step budget, which makes it a cheap stand-in for force-directed
/// scheduling on designs too large for `O(n²·S)` balancing (the echo
/// canceler of Table II).
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] if `available_steps` is below the
/// critical path.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn alap_schedule(g: &Cdfg, available_steps: u32) -> Result<Schedule, ScheduleError> {
    alap_schedule_in(&DesignContext::from(g), available_steps)
}

/// [`alap_schedule`] against a shared [`DesignContext`].
///
/// # Errors
///
/// [`ScheduleError::InfeasibleDeadline`] if `available_steps` is below the
/// critical path.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn alap_schedule_in(
    ctx: &DesignContext,
    available_steps: u32,
) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    let windows = crate::Windows::in_ctx(ctx, available_steps)?;
    let mut s = Schedule::empty(g);
    for n in g.node_ids() {
        if g.kind(n).is_schedulable() {
            s.set_step(n, windows.alap(n));
        }
    }
    debug_assert!(s.validate(g).is_ok());
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};
    use localwm_cdfg::OpKind;

    #[test]
    fn unlimited_resources_reach_critical_path() {
        let g = iir4_parallel();
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.length(), 6);
    }

    #[test]
    fn resource_limits_stretch_the_schedule() {
        let g = iir4_parallel();
        let rs = ResourceSet::unlimited()
            .with(OpClass::Multiplier, 1)
            .with(OpClass::Alu, 1);
        let s = list_schedule(&g, &rs, None).unwrap();
        assert!(s.validate_with_resources(&g, &rs).is_ok());
        // 8 cmuls on one multiplier and 13 ALU ops on one ALU.
        assert!(s.length() >= 13);
    }

    #[test]
    fn temporal_edges_are_honoured() {
        let mut g = iir4_parallel();
        let c1 = g.node_by_name("C1").unwrap();
        let c5 = g.node_by_name("C5").unwrap();
        g.add_temporal_edge(c1, c5).unwrap();
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        assert!(s.validate(&g).is_ok());
        assert_eq!(s.executes_before(c1, c5), Some(true));
    }

    #[test]
    fn deadline_violation_is_reported() {
        let g = iir4_parallel();
        let rs = ResourceSet::unlimited().with(OpClass::Alu, 1);
        let err = list_schedule(&g, &rs, Some(6)).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasibleDeadline { .. }));
    }

    #[test]
    fn schedules_mediabench_scale_graphs() {
        let app = mediabench_apps()[0];
        let g = mediabench(&app, 0);
        let rs = ResourceSet::unlimited()
            .with(OpClass::Alu, 4)
            .with(OpClass::Multiplier, 4)
            .with(OpClass::Memory, 2)
            .with(OpClass::Branch, 2);
        let s = list_schedule(&g, &rs, None).unwrap();
        assert!(s.validate_with_resources(&g, &rs).is_ok());
    }

    #[test]
    fn alap_spreads_to_late_steps() {
        let g = iir4_parallel();
        let s = alap_schedule(&g, 12).unwrap();
        assert!(s.validate(&g).is_ok());
        // The final add must land on the last step.
        let a9 = g.node_by_name("A9").unwrap();
        assert_eq!(s.step(a9), Some(12));
    }

    #[test]
    fn alap_rejects_infeasible_deadline() {
        let g = iir4_parallel();
        assert!(matches!(
            alap_schedule(&g, 4),
            Err(ScheduleError::InfeasibleDeadline { .. })
        ));
    }

    #[test]
    fn deterministic() {
        let g = iir4_parallel();
        let a = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let b = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn store_and_branch_ops_are_scheduled_too() {
        let mut g = localwm_cdfg::Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let ld = g.add_node(OpKind::Load);
        let st = g.add_node(OpKind::Store);
        let br = g.add_node(OpKind::Branch);
        g.add_data_edge(x, ld).unwrap();
        g.add_data_edge(x, st).unwrap();
        g.add_data_edge(ld, st).unwrap();
        g.add_data_edge(ld, br).unwrap();
        let rs = ResourceSet::unlimited().with(OpClass::Memory, 1);
        let s = list_schedule(&g, &rs, None).unwrap();
        assert!(s.validate_with_resources(&g, &rs).is_ok());
        assert!(s.step(st) > s.step(ld));
    }
}
