//! Schedule text format: one `<node-name> <step>` pair per line.
//!
//! The interchange format the `localwm` CLI and the `localwm-serve` wire
//! protocol use for schedules. Node names match the canonical CDFG text
//! format of [`localwm_cdfg::write_cdfg`]: declared names where present,
//! synthetic `n<i>` names for anonymous nodes.

use localwm_cdfg::{Cdfg, NodeId};

use crate::Schedule;

/// Serializes a schedule using node names (synthetic `n<i>` for anonymous
/// nodes, matching `localwm_cdfg::write_cdfg`).
pub fn write_schedule(g: &Cdfg, s: &Schedule) -> String {
    let mut out = String::from("# localwm schedule v1\n");
    for (n, step) in s.iter() {
        use std::fmt::Write as _;
        match g.node_name(n) {
            Some(name) => {
                let _ = writeln!(out, "{name} {step}");
            }
            None => {
                let _ = writeln!(out, "n{} {step}", n.index());
            }
        }
    }
    out
}

/// Parses the schedule format against a graph (names must resolve).
///
/// # Errors
///
/// Returns a descriptive message for malformed lines, unknown node names,
/// and unparseable steps.
pub fn parse_schedule(g: &Cdfg, text: &str) -> Result<Schedule, String> {
    let mut s = Schedule::empty(g);
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let (name, step) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(s), None) => (n, s),
            _ => return Err(format!("line {}: expected `<name> <step>`", lineno + 1)),
        };
        let node: NodeId = resolve(g, name)
            .ok_or_else(|| format!("line {}: unknown node `{name}`", lineno + 1))?;
        let step: u32 = step
            .parse()
            .map_err(|_| format!("line {}: bad step `{step}`", lineno + 1))?;
        s.set_step(node, step);
    }
    Ok(s)
}

fn resolve(g: &Cdfg, name: &str) -> Option<NodeId> {
    if let Some(n) = g.node_by_name(name) {
        return Some(n);
    }
    // Synthetic `n<i>` names for anonymous nodes.
    let idx: usize = name.strip_prefix('n')?.parse().ok()?;
    let id = NodeId::from_index(idx);
    if g.node(id).is_some() && g.node_name(id).is_none() {
        Some(id)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{list_schedule, ResourceSet};
    use localwm_cdfg::OpKind;

    #[test]
    fn round_trips_named_and_anonymous_nodes() {
        let mut g = Cdfg::new();
        let x = g.add_named_node(OpKind::Input, "x");
        let a = g.add_node(OpKind::Not); // anonymous
        let b = g.add_named_node(OpKind::Neg, "b");
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        let s = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let text = write_schedule(&g, &s);
        let parsed = parse_schedule(&g, &text).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    fn rejects_unknown_nodes_and_bad_steps() {
        let mut g = Cdfg::new();
        let _ = g.add_named_node(OpKind::Input, "x");
        assert!(parse_schedule(&g, "ghost 1\n").is_err());
        assert!(parse_schedule(&g, "x abc\n").is_err());
        assert!(parse_schedule(&g, "x\n").is_err());
    }
}
