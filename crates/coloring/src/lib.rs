//! Local watermarking of graph-coloring solutions.
//!
//! The paper introduces local watermarks as a *generic* IPP paradigm and
//! illustrates it with graph coloring: "while uniquely marking a solution
//! to graph coloring, a local watermark is embedded in a random subgraph"
//! (§III). This crate is that instance, end to end:
//!
//! * [`UGraph`] — a simple undirected graph with a `G(n, p)` generator.
//! * [`greedy_coloring`] — the off-the-shelf optimizer (largest-degree-
//!   first greedy colorer).
//! * [`ColoringWatermarker`] — the protocol: a signature-selected locality
//!   (BFS subgraph), signature-selected *must-differ* constraints between
//!   non-adjacent vertex pairs inside it, embedding by coloring the
//!   constraint-augmented graph, and constraint-verification detection.
//!
//! # Example
//!
//! ```
//! use localwm_coloring::{ColoringConfig, ColoringWatermarker, UGraph};
//! use localwm_prng::Signature;
//!
//! let g = UGraph::random(200, 0.06, 7);
//! let sig = Signature::from_author("alice");
//! let wm = ColoringWatermarker::new(ColoringConfig::default());
//! let emb = wm.embed(&g, &sig)?;
//! let ev = wm.detect(&emb.coloring, &g, &sig)?;
//! assert!(ev.is_match());
//! # Ok::<(), localwm_coloring::ColoringWmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod attack;
mod color;
mod graph;
mod wm;

#[allow(deprecated)]
pub use attack::perturb_coloring;
pub use attack::perturb_coloring_with;
pub use color::{greedy_coloring, validate_coloring, Coloring};
pub use graph::UGraph;
pub use wm::{
    ColoringConfig, ColoringEmbedding, ColoringEvidence, ColoringWatermarker, ColoringWmError,
};
