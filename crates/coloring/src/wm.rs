//! The local watermark protocol for graph coloring.

use std::fmt;

use localwm_prng::{Bitstream, Signature};

use crate::{greedy_coloring, validate_coloring, Coloring, UGraph};

/// Derivation output: the must-differ pairs and the locality centers.
type Derivation = (Vec<(usize, usize)>, Vec<usize>);

/// Configuration of the coloring watermark.
#[derive(Debug, Clone, PartialEq)]
pub struct ColoringConfig {
    /// Number of localities (BFS balls) to mark.
    pub localities: usize,
    /// BFS radius of each locality.
    pub radius: usize,
    /// Must-differ constraints per locality.
    pub constraints_per_locality: usize,
    /// Selection attempts before giving up.
    pub max_attempts: usize,
}

impl Default for ColoringConfig {
    fn default() -> Self {
        ColoringConfig {
            localities: 4,
            radius: 2,
            constraints_per_locality: 12,
            max_attempts: 32,
        }
    }
}

/// A fully-embedded coloring watermark.
#[derive(Debug, Clone)]
pub struct ColoringEmbedding {
    /// The constrained (virtual-edge-augmented) graph the optimizer ran on.
    pub constrained: UGraph,
    /// The coloring produced under constraints — the marked solution.
    pub coloring: Coloring,
    /// The signature's must-differ pairs, per locality.
    pub constraints: Vec<(usize, usize)>,
    /// The chosen locality centers.
    pub centers: Vec<usize>,
}

/// Detection evidence.
#[derive(Debug, Clone)]
pub struct ColoringEvidence {
    /// Per constraint: the pair and whether it is differently colored.
    pub checks: Vec<((usize, usize), bool)>,
    /// `log₁₀` of the coincidence probability under the independence
    /// model: each unconstrained pair differs with probability
    /// `1 − 1/χ`, so `P_c = (1 − 1/χ)^K`.
    pub log10_pc: f64,
}

impl ColoringEvidence {
    /// Whether every constraint holds (and at least one was checked).
    pub fn is_match(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(|(_, ok)| *ok)
    }

    /// Fraction of constraints that hold.
    pub fn satisfied_fraction(&self) -> f64 {
        if self.checks.is_empty() {
            return 0.0;
        }
        self.checks.iter().filter(|(_, ok)| *ok).count() as f64 / self.checks.len() as f64
    }
}

/// Errors from the coloring watermark.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ColoringWmError {
    /// The graph is too small or too dense to host the requested
    /// constraints (not enough non-adjacent pairs in any locality).
    NoLocality {
        /// Constraints placed before giving up.
        placed: usize,
        /// Constraints requested.
        requested: usize,
    },
    /// A configuration field is invalid.
    InvalidConfig(String),
}

impl fmt::Display for ColoringWmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColoringWmError::NoLocality { placed, requested } => {
                write!(f, "only {placed} of {requested} constraints placeable")
            }
            ColoringWmError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ColoringWmError {}

/// Embeds and detects local watermarks in graph colorings.
#[derive(Debug, Clone)]
pub struct ColoringWatermarker {
    config: ColoringConfig,
}

impl ColoringWatermarker {
    /// Creates a watermarker.
    pub fn new(config: ColoringConfig) -> Self {
        ColoringWatermarker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ColoringConfig {
        &self.config
    }

    /// Derives the signature's must-differ pairs. Deterministic in
    /// `(graph, signature, config)` — detection replays it.
    fn derive(&self, g: &UGraph, signature: &Signature) -> Result<Derivation, ColoringWmError> {
        if self.config.localities == 0 || self.config.constraints_per_locality == 0 {
            return Err(ColoringWmError::InvalidConfig(
                "localities and constraints_per_locality must be positive".to_owned(),
            ));
        }
        let n = g.vertex_count();
        if n < 4 {
            return Err(ColoringWmError::NoLocality {
                placed: 0,
                requested: self.config.localities * self.config.constraints_per_locality,
            });
        }
        let mut constraints: Vec<(usize, usize)> = Vec::new();
        let mut centers: Vec<usize> = Vec::new();
        let total = self.config.localities * self.config.constraints_per_locality;
        for attempt in 0..self.config.max_attempts {
            if constraints.len() >= total {
                break;
            }
            let mut bits =
                Bitstream::for_purpose(signature, &format!("coloring-wm/attempt-{attempt}"));
            let center = bits.range(n);
            let ball = g.ball(center, self.config.radius);
            if ball.len() < 4 {
                continue;
            }
            // Non-adjacent pairs inside the locality, canonical order.
            let mut candidates: Vec<(usize, usize)> = Vec::new();
            for (i, &u) in ball.iter().enumerate() {
                for &v in &ball[i + 1..] {
                    let (a, b) = if u < v { (u, v) } else { (v, u) };
                    if !g.adjacent(a, b) && !constraints.contains(&(a, b)) {
                        candidates.push((a, b));
                    }
                }
            }
            candidates.sort_unstable();
            candidates.dedup();
            let take = self
                .config
                .constraints_per_locality
                .min(candidates.len())
                .min(total - constraints.len());
            if take == 0 {
                continue;
            }
            let picks = bits.ordered_selection(candidates.len(), take);
            for i in picks {
                constraints.push(candidates[i]);
            }
            centers.push(center);
        }
        if constraints.len() < total {
            return Err(ColoringWmError::NoLocality {
                placed: constraints.len(),
                requested: total,
            });
        }
        Ok((constraints, centers))
    }

    /// Embeds the watermark: augments the graph with the signature's
    /// must-differ pairs as virtual edges and colors it.
    ///
    /// # Errors
    ///
    /// [`ColoringWmError::NoLocality`] when the graph cannot host the
    /// requested constraint count.
    pub fn embed(
        &self,
        g: &UGraph,
        signature: &Signature,
    ) -> Result<ColoringEmbedding, ColoringWmError> {
        let (constraints, centers) = self.derive(g, signature)?;
        let mut constrained = g.clone();
        for &(u, v) in &constraints {
            constrained.add_edge(u, v);
        }
        let coloring = greedy_coloring(&constrained);
        debug_assert!(validate_coloring(&constrained, &coloring));
        debug_assert!(validate_coloring(g, &coloring));
        Ok(ColoringEmbedding {
            constrained,
            coloring,
            constraints,
            centers,
        })
    }

    /// Detects the watermark in a suspected coloring of `g`.
    ///
    /// # Errors
    ///
    /// Same derivation errors as [`ColoringWatermarker::embed`].
    pub fn detect(
        &self,
        coloring: &Coloring,
        g: &UGraph,
        signature: &Signature,
    ) -> Result<ColoringEvidence, ColoringWmError> {
        let (constraints, _) = self.derive(g, signature)?;
        let checks: Vec<((usize, usize), bool)> = constraints
            .into_iter()
            .map(|(u, v)| ((u, v), coloring.color(u) != coloring.color(v)))
            .collect();
        let chi = coloring.color_count().max(2) as f64;
        let per_pair = 1.0 - 1.0 / chi;
        let log10_pc = checks.len() as f64 * per_pair.log10();
        Ok(ColoringEvidence { checks, log10_pc })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(name: &str) -> Signature {
        Signature::from_author(name)
    }

    #[test]
    fn embed_detect_round_trips() {
        let g = UGraph::random(300, 0.04, 11);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let s = sig("color-roundtrip");
        let emb = wm.embed(&g, &s).unwrap();
        assert!(validate_coloring(&g, &emb.coloring));
        let ev = wm.detect(&emb.coloring, &g, &s).unwrap();
        assert!(ev.is_match());
        assert!(ev.log10_pc < 0.0);
    }

    #[test]
    fn plain_coloring_misses_constraints() {
        // With 48 constraints and chi ~ 5-8, a plain greedy coloring
        // satisfies all of them with probability (1-1/chi)^48 << 1.
        let g = UGraph::random(300, 0.04, 11);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let s = sig("color-plain");
        let plain = greedy_coloring(&g);
        let ev = wm.detect(&plain, &g, &s).unwrap();
        assert!(!ev.is_match());
        assert!(ev.satisfied_fraction() > 0.5, "chance level is high");
    }

    #[test]
    fn wrong_signature_rarely_verifies() {
        let g = UGraph::random(300, 0.04, 2);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let author = sig("true-author");
        let emb = wm.embed(&g, &author).unwrap();
        let mut false_pos = 0;
        for i in 0..6 {
            let other = sig(&format!("color-impostor-{i}"));
            if let Ok(ev) = wm.detect(&emb.coloring, &g, &other) {
                if ev.is_match() {
                    false_pos += 1;
                }
            }
        }
        assert_eq!(false_pos, 0);
    }

    #[test]
    fn watermark_overhead_in_colors_is_small() {
        let g = UGraph::random(400, 0.05, 5);
        let plain = greedy_coloring(&g).color_count();
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let emb = wm.embed(&g, &sig("color-overhead")).unwrap();
        let marked = emb.coloring.color_count();
        assert!(
            marked <= plain + 2,
            "48 local constraints should cost at most ~2 colors \
             ({plain} -> {marked})"
        );
    }

    #[test]
    fn too_dense_graph_reports_no_locality() {
        let g = UGraph::random(12, 1.0, 0); // complete: no non-adjacent pairs
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        assert!(matches!(
            wm.embed(&g, &sig("dense")),
            Err(ColoringWmError::NoLocality { .. })
        ));
    }

    #[test]
    fn derivation_is_deterministic() {
        let g = UGraph::random(200, 0.05, 9);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let s = sig("det");
        let a = wm.embed(&g, &s).unwrap();
        let b = wm.embed(&g, &s).unwrap();
        assert_eq!(a.constraints, b.constraints);
        assert_eq!(a.coloring, b.coloring);
    }
}
