//! Tampering models for coloring watermarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{validate_coloring, Coloring, UGraph};

/// Randomly recolors up to `moves` vertices, keeping the coloring proper
/// (each move picks a random vertex and a random color legal for its
/// neighbourhood, within the current palette plus one spare).
///
/// Returns the perturbed coloring and the number of effective recolorings.
///
/// # Panics
///
/// Panics if the input coloring is not proper for `g`.
pub fn perturb_coloring(
    g: &UGraph,
    coloring: &Coloring,
    moves: usize,
    seed: u64,
) -> (Coloring, usize) {
    assert!(
        validate_coloring(g, coloring),
        "perturbation requires a proper coloring"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut colors = coloring.as_slice().to_vec();
    let palette = coloring.color_count() as u32 + 1;
    let n = g.vertex_count();
    let mut applied = 0usize;
    for _ in 0..moves {
        let v = rng.gen_range(0..n);
        let forbidden: Vec<u32> = g.neighbours(v).iter().map(|&u| colors[u]).collect();
        let legal: Vec<u32> = (0..palette)
            .filter(|c| !forbidden.contains(c) && *c != colors[v])
            .collect();
        if legal.is_empty() {
            continue;
        }
        colors[v] = legal[rng.gen_range(0..legal.len())];
        applied += 1;
    }
    let out = Coloring::from_colors(colors);
    debug_assert!(validate_coloring(g, &out));
    (out, applied)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_coloring, ColoringConfig, ColoringWatermarker};
    use localwm_prng::Signature;

    #[test]
    fn perturbation_keeps_coloring_proper() {
        let g = UGraph::random(200, 0.05, 3);
        let c = greedy_coloring(&g);
        let (p, applied) = perturb_coloring(&g, &c, 100, 1);
        assert!(applied > 0);
        assert!(validate_coloring(&g, &p));
    }

    #[test]
    fn heavy_recoloring_erodes_the_mark() {
        let g = UGraph::random(400, 0.03, 9);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let sig = Signature::from_author("coloring-victim");
        let emb = wm.embed(&g, &sig).unwrap();
        let light = wm
            .detect(&perturb_coloring(&g, &emb.coloring, 20, 2).0, &g, &sig)
            .unwrap();
        let heavy = wm
            .detect(&perturb_coloring(&g, &emb.coloring, 2000, 2).0, &g, &sig)
            .unwrap();
        assert!(light.satisfied_fraction() >= heavy.satisfied_fraction());
        // Must-differ constraints survive *most* random recolorings (a
        // random legal color usually still differs), so decay is gradual —
        // exactly the robustness the paper claims for local marks.
        assert!(heavy.satisfied_fraction() > 0.5);
    }

    #[test]
    fn zero_moves_is_identity() {
        let g = UGraph::random(50, 0.1, 4);
        let c = greedy_coloring(&g);
        let (p, applied) = perturb_coloring(&g, &c, 0, 7);
        assert_eq!(applied, 0);
        assert_eq!(p, c);
    }
}
