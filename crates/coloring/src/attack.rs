//! Tampering models for coloring watermarks.
//!
//! Perturbations draw from [`localwm_prng::SplitMix64`] — the toolkit's
//! canonical deterministic stream — so the same seed reproduces the same
//! recoloring byte-for-byte on every platform. [`perturb_coloring`] is the
//! seed-taking deprecated shim over [`perturb_coloring_with`].

use localwm_prng::SplitMix64;

use crate::{validate_coloring, Coloring, UGraph};

/// Randomly recolors up to `moves` vertices, keeping the coloring proper
/// (each move picks a random vertex and a random color legal for its
/// neighbourhood, within the current palette plus one spare), drawing
/// every choice from `rng`.
///
/// Returns the perturbed coloring and the number of effective recolorings.
///
/// # Panics
///
/// Panics if the input coloring is not proper for `g`.
pub fn perturb_coloring_with(
    g: &UGraph,
    coloring: &Coloring,
    moves: usize,
    rng: &mut SplitMix64,
) -> (Coloring, usize) {
    assert!(
        validate_coloring(g, coloring),
        "perturbation requires a proper coloring"
    );
    let mut colors = coloring.as_slice().to_vec();
    let palette = coloring.color_count() as u32 + 1;
    let n = g.vertex_count();
    let mut applied = 0usize;
    for _ in 0..moves {
        let v = usize::try_from(rng.below(n as u64)).expect("vertex index fits");
        let forbidden: Vec<u32> = g.neighbours(v).iter().map(|&u| colors[u]).collect();
        let legal: Vec<u32> = (0..palette)
            .filter(|c| !forbidden.contains(c) && *c != colors[v])
            .collect();
        if legal.is_empty() {
            continue;
        }
        colors[v] = legal[usize::try_from(rng.below(legal.len() as u64)).expect("color fits")];
        applied += 1;
    }
    let out = Coloring::from_colors(colors);
    debug_assert!(validate_coloring(g, &out));
    (out, applied)
}

/// Seed-taking shim over [`perturb_coloring_with`].
///
/// # Panics
///
/// Panics if the input coloring is not proper for `g`.
#[deprecated(
    since = "0.1.0",
    note = "use perturb_coloring_with with a localwm_prng::SplitMix64 stream"
)]
pub fn perturb_coloring(
    g: &UGraph,
    coloring: &Coloring,
    moves: usize,
    seed: u64,
) -> (Coloring, usize) {
    perturb_coloring_with(g, coloring, moves, &mut SplitMix64::new(seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{greedy_coloring, ColoringConfig, ColoringWatermarker};
    use localwm_prng::Signature;

    fn rng(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }

    #[test]
    fn perturbation_keeps_coloring_proper() {
        let g = UGraph::random(200, 0.05, 3);
        let c = greedy_coloring(&g);
        let (p, applied) = perturb_coloring_with(&g, &c, 100, &mut rng(1));
        assert!(applied > 0);
        assert!(validate_coloring(&g, &p));
    }

    #[test]
    fn heavy_recoloring_erodes_the_mark() {
        let g = UGraph::random(400, 0.03, 9);
        let wm = ColoringWatermarker::new(ColoringConfig::default());
        let sig = Signature::from_author("coloring-victim");
        let emb = wm.embed(&g, &sig).unwrap();
        let light = wm
            .detect(
                &perturb_coloring_with(&g, &emb.coloring, 20, &mut rng(2)).0,
                &g,
                &sig,
            )
            .unwrap();
        let heavy = wm
            .detect(
                &perturb_coloring_with(&g, &emb.coloring, 2000, &mut rng(2)).0,
                &g,
                &sig,
            )
            .unwrap();
        assert!(light.satisfied_fraction() >= heavy.satisfied_fraction());
        // Must-differ constraints survive *most* random recolorings (a
        // random legal color usually still differs), so decay is gradual —
        // exactly the robustness the paper claims for local marks.
        assert!(heavy.satisfied_fraction() > 0.5);
    }

    #[test]
    fn zero_moves_is_identity() {
        let g = UGraph::random(50, 0.1, 4);
        let c = greedy_coloring(&g);
        let (p, applied) = perturb_coloring_with(&g, &c, 0, &mut rng(7));
        assert_eq!(applied, 0);
        assert_eq!(p, c);
    }

    #[test]
    #[allow(deprecated)]
    fn seed_taking_shim_matches_the_stream_entry_point() {
        let g = UGraph::random(80, 0.08, 6);
        let c = greedy_coloring(&g);
        assert_eq!(
            perturb_coloring(&g, &c, 25, 11),
            perturb_coloring_with(&g, &c, 25, &mut rng(11))
        );
    }
}
