//! Greedy coloring: the off-the-shelf optimizer the watermark rides.

use crate::UGraph;

/// A proper vertex coloring: `colors[v]` is the color of vertex `v`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<u32>,
}

impl Coloring {
    /// Color of a vertex.
    pub fn color(&self, v: usize) -> u32 {
        self.colors[v]
    }

    /// Number of distinct colors used.
    pub fn color_count(&self) -> usize {
        let mut seen: Vec<u32> = self.colors.clone();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Raw color vector.
    pub fn as_slice(&self) -> &[u32] {
        &self.colors
    }

    /// Builds a coloring from raw colors (for deserialization/tests).
    pub fn from_colors(colors: Vec<u32>) -> Self {
        Coloring { colors }
    }
}

/// Largest-degree-first greedy coloring. Deterministic: vertices are
/// processed by descending degree (ties by index) and each takes the
/// smallest color absent from its neighbourhood.
///
/// ```
/// use localwm_coloring::{greedy_coloring, validate_coloring, UGraph};
/// let g = UGraph::random(60, 0.2, 9);
/// let c = greedy_coloring(&g);
/// assert!(validate_coloring(&g, &c));
/// ```
pub fn greedy_coloring(g: &UGraph) -> Coloring {
    let n = g.vertex_count();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by_key(|&v| (std::cmp::Reverse(g.degree(v)), v));
    let mut colors = vec![u32::MAX; n];
    for v in order {
        let mut used: Vec<u32> = g
            .neighbours(v)
            .iter()
            .map(|&u| colors[u])
            .filter(|&c| c != u32::MAX)
            .collect();
        used.sort_unstable();
        used.dedup();
        let mut c = 0u32;
        for u in used {
            if u == c {
                c += 1;
            } else if u > c {
                break;
            }
        }
        colors[v] = c;
    }
    Coloring { colors }
}

/// Whether a coloring is proper for `g` (all vertices colored, no edge
/// monochromatic).
pub fn validate_coloring(g: &UGraph, c: &Coloring) -> bool {
    if c.as_slice().len() != g.vertex_count() {
        return false;
    }
    for u in 0..g.vertex_count() {
        for &v in g.neighbours(u) {
            if c.color(u) == c.color(v) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn colors_a_triangle_with_three() {
        let mut g = UGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(0, 2);
        let c = greedy_coloring(&g);
        assert!(validate_coloring(&g, &c));
        assert_eq!(c.color_count(), 3);
    }

    #[test]
    fn bipartite_needs_two() {
        let mut g = UGraph::new(6);
        for u in 0..3 {
            for v in 3..6 {
                g.add_edge(u, v);
            }
        }
        let c = greedy_coloring(&g);
        assert!(validate_coloring(&g, &c));
        assert_eq!(c.color_count(), 2);
    }

    #[test]
    fn random_graphs_color_properly() {
        for seed in 0..10 {
            let g = UGraph::random(80, 0.15, seed);
            let c = greedy_coloring(&g);
            assert!(validate_coloring(&g, &c), "seed {seed}");
        }
    }

    #[test]
    fn invalid_coloring_detected() {
        let mut g = UGraph::new(2);
        g.add_edge(0, 1);
        let bad = Coloring::from_colors(vec![0, 0]);
        assert!(!validate_coloring(&g, &bad));
        let short = Coloring::from_colors(vec![0]);
        assert!(!validate_coloring(&g, &short));
    }
}
