//! Simple undirected graphs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// An undirected graph on vertices `0..n` with adjacency lists.
///
/// ```
/// use localwm_coloring::UGraph;
/// let mut g = UGraph::new(3);
/// g.add_edge(0, 1);
/// assert!(g.adjacent(0, 1));
/// assert!(g.adjacent(1, 0));
/// assert!(!g.adjacent(0, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UGraph {
    adj: Vec<Vec<usize>>,
    edges: usize,
}

impl UGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        UGraph {
            adj: vec![Vec::new(); n],
            edges: 0,
        }
    }

    /// An Erdős–Rényi `G(n, p)` graph, deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability.
    pub fn random(n: usize, p: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut g = UGraph::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                if rng.gen_bool(p) {
                    g.add_edge(u, v);
                }
            }
        }
        g
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Adds an undirected edge (idempotent; self-loops rejected).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range vertices or a self loop.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        assert!(u != v, "self loops are not allowed");
        assert!(u < self.adj.len() && v < self.adj.len(), "vertex range");
        if !self.adj[u].contains(&v) {
            self.adj[u].push(v);
            self.adj[v].push(u);
            self.edges += 1;
        }
    }

    /// Whether `u` and `v` are adjacent.
    pub fn adjacent(&self, u: usize, v: usize) -> bool {
        self.adj[u].contains(&v)
    }

    /// Neighbours of `u` (insertion order).
    pub fn neighbours(&self, u: usize) -> &[usize] {
        &self.adj[u]
    }

    /// Degree of `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].len()
    }

    /// Breadth-first ball of `radius` hops around `start` (sorted
    /// neighbour order for determinism), including `start`.
    pub fn ball(&self, start: usize, radius: usize) -> Vec<usize> {
        let mut seen = vec![false; self.vertex_count()];
        let mut queue = std::collections::VecDeque::new();
        let mut out = Vec::new();
        seen[start] = true;
        queue.push_back((start, 0usize));
        while let Some((u, d)) = queue.pop_front() {
            out.push(u);
            if d == radius {
                continue;
            }
            let mut next: Vec<usize> = self.adj[u].iter().copied().filter(|&v| !seen[v]).collect();
            next.sort_unstable();
            for v in next {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back((v, d + 1));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_symmetric_and_deduped() {
        let mut g = UGraph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 0);
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    #[should_panic(expected = "self loops")]
    fn self_loop_panics() {
        let mut g = UGraph::new(2);
        g.add_edge(1, 1);
    }

    #[test]
    fn random_graph_is_deterministic() {
        let a = UGraph::random(50, 0.1, 3);
        let b = UGraph::random(50, 0.1, 3);
        assert_eq!(a, b);
        let c = UGraph::random(50, 0.1, 4);
        assert_ne!(a, c);
    }

    #[test]
    fn ball_grows_with_radius() {
        let g = UGraph::random(100, 0.05, 1);
        let b1 = g.ball(0, 1);
        let b2 = g.ball(0, 2);
        assert!(b2.len() >= b1.len());
        assert_eq!(b1[0], 0);
    }

    #[test]
    fn extreme_probabilities() {
        assert_eq!(UGraph::random(10, 0.0, 0).edge_count(), 0);
        assert_eq!(UGraph::random(10, 1.0, 0).edge_count(), 45);
    }
}
