//! Unit binding: assigning each macro-operation to a concrete hardware
//! instance, with an interconnect (multiplexer) cost estimate.
//!
//! Allocation ([`crate::allocation`]) decides *how many* units of each
//! type exist; binding decides *which* instance runs each piece, and the
//! choice determines multiplexing: an instance fed by many distinct
//! producer instances needs a wider input mux. This completes the classic
//! scheduling → allocation → binding HLS back-end and lets experiments
//! report a datapath-cost delta beyond the unit count.

use crate::allocation::{min_units, AllocationPolicy, MacroDag};

/// A completed binding.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Per macro: `(type index, instance index within that type)`.
    pub instance: Vec<(usize, usize)>,
    /// Units allocated per type (the vector binding was computed against).
    pub units: Vec<usize>,
    /// Estimated total multiplexer inputs: for every unit instance, the
    /// number of distinct producer instances feeding it beyond the first.
    pub mux_inputs: usize,
}

impl Binding {
    /// Total unit instances in use.
    pub fn unit_count(&self) -> usize {
        self.units.iter().sum()
    }
}

/// Schedules and binds a macro DAG at `steps` using the minimal unit
/// vector, assigning each piece to the least-recently-used compatible
/// instance (a cheap interconnect heuristic: it spreads consumers of one
/// producer across repeats of the same instance).
///
/// Returns `None` when the deadline is below the macro critical path.
pub fn bind(dag: &MacroDag, steps: u32, policy: AllocationPolicy) -> Option<Binding> {
    let units = min_units(dag, steps, policy)?;
    // Instance ids: dense per type.
    let n = dag.len();
    let tcount = dag.type_count();
    let hosts: Vec<Vec<usize>> = (0..tcount)
        .map(|p| {
            let mut h = vec![p];
            if policy == AllocationPolicy::Hosting {
                for u in 0..tcount {
                    if u != p && dag.type_table[u].hosts(&dag.type_table[p]) {
                        h.push(u);
                    }
                }
            }
            h
        })
        .collect();

    // Re-run the list schedule, this time recording instance assignments.
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &dag.edges {
        out[a].push(b);
        indeg[b] += 1;
    }
    let mut tail = vec![1u32; n];
    {
        let mut indeg2 = indeg.clone();
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg2[i] == 0).collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &out[u] {
                indeg2[v] -= 1;
                if indeg2[v] == 0 {
                    stack.push(v);
                }
            }
        }
        for &u in order.iter().rev() {
            for &v in &out[u] {
                tail[u] = tail[u].max(tail[v] + 1);
            }
        }
    }

    let mut instance = vec![(usize::MAX, usize::MAX); n];
    let mut earliest = vec![1u32; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut remaining = n;
    let mut step = 0u32;
    // Round-robin pointer per type for LRU-ish spreading.
    let mut rr: Vec<usize> = vec![0; tcount];
    while remaining > 0 {
        step += 1;
        if step > steps.saturating_add(n as u32) {
            return None; // cannot happen with a min_units vector; guard anyway
        }
        let mut cands: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| earliest[i] <= step)
            .collect();
        cands.sort_by_key(|&i| (std::cmp::Reverse(tail[i]), i));
        let mut used: Vec<Vec<bool>> = units.iter().map(|&u| vec![false; u]).collect();
        let mut placed = Vec::new();
        for i in cands {
            let t = dag.types[i];
            let mut slot = None;
            'hosts: for &h in &hosts[t] {
                let count = units[h];
                for k in 0..count {
                    let idx = (rr[h] + k) % count.max(1);
                    if count > 0 && !used[h][idx] {
                        slot = Some((h, idx));
                        rr[h] = (idx + 1) % count;
                        break 'hosts;
                    }
                }
            }
            if let Some((h, idx)) = slot {
                used[h][idx] = true;
                instance[i] = (h, idx);
                placed.push(i);
            }
        }
        for i in placed {
            ready.retain(|&r| r != i);
            remaining -= 1;
            for &v in &out[i] {
                earliest[v] = earliest[v].max(step + 1);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(v);
                }
            }
        }
    }

    // Mux estimate: distinct producer instances per consumer instance.
    use std::collections::{HashMap, HashSet};
    let mut feeders: HashMap<(usize, usize), HashSet<(usize, usize)>> = HashMap::new();
    for &(a, b) in &dag.edges {
        feeders.entry(instance[b]).or_default().insert(instance[a]);
    }
    let mux_inputs = feeders
        .values()
        .map(|srcs| srcs.len().saturating_sub(1))
        .sum();

    Some(Binding {
        instance,
        units,
        mux_inputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocation::condense;
    use localwm_cdfg::designs::{table2_design, table2_designs};
    use localwm_tmatch::{cover, CoverConstraints, Library};

    fn dag_for(idx: usize) -> (MacroDag, u32) {
        let g = table2_design(&table2_designs()[idx]);
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        let dag = condense(&g, &c, &lib);
        let cp = dag.critical_path();
        (dag, cp)
    }

    #[test]
    fn every_piece_gets_a_valid_instance() {
        let (dag, cp) = dag_for(1);
        let b = bind(&dag, cp, AllocationPolicy::FixedFunction).unwrap();
        assert_eq!(b.instance.len(), dag.len());
        for (i, &(t, k)) in b.instance.iter().enumerate() {
            assert!(t < dag.type_count(), "piece {i} unbound");
            assert!(k < b.units[t], "instance index out of range");
            // Fixed-function: the instance type is the piece's own type.
            assert_eq!(t, dag.types[i]);
        }
    }

    #[test]
    fn no_instance_double_booked_per_step() {
        // Re-derivable from the construction, but verify via the schedule
        // invariant: binding succeeded within the minimal unit vector, so
        // per-step usage respected unit counts by construction; check the
        // mux estimate is finite and sane instead.
        let (dag, cp) = dag_for(2);
        let b = bind(&dag, 2 * cp, AllocationPolicy::FixedFunction).unwrap();
        assert!(b.mux_inputs <= dag.edges.len());
    }

    #[test]
    fn relaxed_binding_uses_fewer_units_but_more_muxing_per_unit() {
        let (dag, cp) = dag_for(4);
        let tight = bind(&dag, cp, AllocationPolicy::FixedFunction).unwrap();
        let relaxed = bind(&dag, 4 * cp, AllocationPolicy::FixedFunction).unwrap();
        assert!(relaxed.unit_count() <= tight.unit_count());
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let (dag, _) = dag_for(0);
        assert!(bind(&dag, 1, AllocationPolicy::FixedFunction).is_none());
    }
}
