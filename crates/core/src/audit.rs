//! One-call quality audit of an embedding.
//!
//! Embedding a watermark makes four promises: the constrained schedule is
//! *valid*, it fits the *deadline*, the realization is *semantically
//! transparent*, and the mark *detects*. [`audit_sched_embedding`] checks
//! all four against the artifacts, producing a report a release pipeline
//! can gate on.

use localwm_cdfg::Cdfg;
use localwm_prng::Signature;
use localwm_sim::{interpret, outputs_match, Inputs};
use localwm_vliw::{overhead_percent, Machine};

use crate::{SchedEmbedding, SchedulingWatermarker, WatermarkError};

/// The outcome of auditing a scheduling-watermark embedding.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The constrained schedule validates against the marked graph.
    pub schedule_valid: bool,
    /// The schedule fits the declared step budget.
    pub deadline_kept: bool,
    /// The unit-op realization computes identical primary outputs on every
    /// sampled input vector.
    pub semantics_preserved: bool,
    /// Detection with the embedding signature fully matches.
    pub detects: bool,
    /// VLIW execution-time overhead of the realized watermark (percent).
    pub vliw_overhead_percent: f64,
    /// `log₁₀ P_c` of the detected mark.
    pub log10_pc: f64,
}

impl AuditReport {
    /// Whether every audited property holds.
    pub fn passed(&self) -> bool {
        self.schedule_valid && self.deadline_kept && self.semantics_preserved && self.detects
    }
}

/// Audits an embedding end to end.
///
/// `input_samples` seeds drive the semantic-preservation check (more
/// samples, stronger evidence; 4–16 is plenty for wide designs).
///
/// # Errors
///
/// Propagates detection/derivation errors; simulation failures surface as
/// `semantics_preserved == false` only if outputs differ — structural
/// simulation errors propagate as [`WatermarkError::Graph`]-like failures
/// are impossible for graphs the embedder itself produced.
pub fn audit_sched_embedding(
    wm: &SchedulingWatermarker,
    g: &Cdfg,
    signature: &Signature,
    embedding: &SchedEmbedding,
    input_samples: u64,
) -> Result<AuditReport, WatermarkError> {
    let schedule_valid = embedding.schedule.validate(&embedding.marked).is_ok();
    let deadline_kept = embedding.schedule.length() <= embedding.available_steps;

    let realized = SchedulingWatermarker::realize_as_unit_ops(g, &embedding.edges);
    let mut semantics_preserved = true;
    for seed in 0..input_samples.max(1) {
        let inputs = Inputs::seeded(seed);
        let base = interpret(g, &inputs).expect("original design simulates");
        let marked = interpret(&realized, &inputs).expect("realized design simulates");
        if !outputs_match(g, &base, &marked) {
            semantics_preserved = false;
            break;
        }
    }

    let evidence = wm.detect(&embedding.schedule, g, signature)?;
    let perf = overhead_percent(g, &realized, &Machine::paper_default());

    Ok(AuditReport {
        schedule_valid,
        deadline_kept,
        semantics_preserved,
        detects: evidence.is_match(),
        vliw_overhead_percent: perf.overhead_percent(),
        log10_pc: evidence.log10_pc,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedWmConfig;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};

    #[test]
    fn fresh_embedding_passes_audit() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author("audited");
        let emb = wm.embed(&g, &sig).unwrap();
        let report = audit_sched_embedding(&wm, &g, &sig, &emb, 4).unwrap();
        assert!(report.passed(), "{report:?}");
        assert!(report.vliw_overhead_percent >= 0.0);
        assert!(report.log10_pc < 0.0);
    }

    #[test]
    fn audit_flags_a_corrupted_schedule() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author("audited-corrupt");
        let mut emb = wm.embed(&g, &sig).unwrap();
        // Corrupt: push the first constrained source after its destination.
        let (s, d) = emb.edges[0];
        let d_step = emb.schedule.step(d).unwrap();
        emb.schedule.set_step(s, d_step + 1);
        let report = audit_sched_embedding(&wm, &g, &sig, &emb, 2).unwrap();
        assert!(!report.passed());
        assert!(!report.schedule_valid || !report.detects);
    }

    #[test]
    fn audit_flags_a_blown_deadline() {
        let g = mediabench(&mediabench_apps()[2], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let sig = Signature::from_author("audited-deadline");
        let mut emb = wm.embed(&g, &sig).unwrap();
        emb.available_steps = 1; // claim an impossible budget
        let report = audit_sched_embedding(&wm, &g, &sig, &emb, 1).unwrap();
        assert!(!report.deadline_kept);
        assert!(!report.passed());
    }
}
