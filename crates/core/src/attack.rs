//! Tampering models and proof-decay measurement (paper §IV-A discussion).
//!
//! "The attacker may try to modify the output locally in such a way that
//! the watermark disappears or the proof of authorship is lowered below a
//! predetermined standard." These models quantify how much of a solution an
//! attacker must perturb:
//!
//! * [`perturb_schedule_with`] — random legal moves of operations within
//!   their live windows (local tampering that preserves solution validity).
//! * [`reschedule_with`] — a full re-synthesis with a different
//!   (randomized) priority function, the strongest whole-solution attack
//!   short of redesign.
//! * [`alterations_to_defeat`] — the analytic model behind the paper's
//!   "alter 63 % of the final solution" argument.
//!
//! All randomized models draw from [`localwm_prng::SplitMix64`], the
//! toolkit's canonical deterministic stream: the same seed produces the
//! same perturbation byte-for-byte on every platform. The seed-taking
//! entry points ([`perturb_schedule`], [`reschedule`], [`reschedule_in`])
//! remain as thin deprecated shims over the stream-taking ones; the
//! richer budgeted attack suite lives in `localwm-attack`.

use std::fmt;

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;
use localwm_prng::SplitMix64;
use localwm_sched::{Schedule, ScheduleError};

/// Randomly moves up to `moves` operations to different control steps,
/// keeping the schedule valid (each op stays within the window its
/// currently-scheduled neighbours allow, and within `available_steps`),
/// drawing every choice from `rng`.
///
/// Returns the perturbed schedule and the number of moves actually applied
/// (an op whose neighbours pin it in place cannot move).
///
/// # Panics
///
/// Panics if the input schedule is invalid for `g`.
pub fn perturb_schedule_with(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    moves: usize,
    rng: &mut SplitMix64,
) -> (Schedule, usize) {
    assert!(
        schedule.validate(g).is_ok(),
        "perturbation requires a valid schedule"
    );
    let mut s = schedule.clone();
    let ops: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect();
    let mut applied = 0usize;
    for _ in 0..moves {
        let n = ops[usize::try_from(rng.below(ops.len() as u64)).expect("op index fits")];
        // Live window given currently scheduled neighbours.
        let lo = g
            .preds(n)
            .filter_map(|p| s.step(p))
            .max()
            .map_or(1, |m| m + 1);
        let hi = g
            .succs(n)
            .filter_map(|d| s.step(d))
            .min()
            .map_or(available_steps, |m| m.saturating_sub(1));
        if lo >= hi {
            continue; // pinned
        }
        let cur = s.step(n).expect("schedulable ops are scheduled");
        let new = rng.in_range_u32(lo, hi);
        if new != cur {
            s.set_step(n, new);
            applied += 1;
        }
    }
    debug_assert!(s.validate(g).is_ok());
    (s, applied)
}

/// Seed-taking shim over [`perturb_schedule_with`].
///
/// # Panics
///
/// Panics if the input schedule is invalid for `g`.
#[deprecated(
    since = "0.1.0",
    note = "use perturb_schedule_with with a localwm_prng::SplitMix64 stream"
)]
pub fn perturb_schedule(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    moves: usize,
    seed: u64,
) -> (Schedule, usize) {
    perturb_schedule_with(
        g,
        schedule,
        available_steps,
        moves,
        &mut SplitMix64::new(seed),
    )
}

/// Re-synthesizes the design from scratch with a randomized priority list
/// scheduler — the attack of re-running a different tool on the (stripped)
/// specification. Walks in topo order, placing each op at its earliest
/// feasible step plus a random hold of 0..=2 steps drawn from `rng`.
///
/// # Errors
///
/// Propagates scheduling failures.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn reschedule_with(
    ctx: &DesignContext,
    rng: &mut SplitMix64,
) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    let mut s = Schedule::empty(g);
    for &n in ctx.topo() {
        if !g.kind(n).is_schedulable() {
            continue;
        }
        let lo = g
            .preds(n)
            .filter_map(|p| s.step(p))
            .max()
            .map_or(1, |m| m + 1);
        let hold = u32::try_from(rng.below(3)).expect("hold fits");
        s.set_step(n, lo + hold);
    }
    debug_assert!(s.validate(g).is_ok());
    Ok(s)
}

/// Seed-taking shim over [`reschedule_with`].
///
/// # Errors
///
/// Propagates scheduling failures.
///
/// # Panics
///
/// Panics if the graph is cyclic.
#[deprecated(
    since = "0.1.0",
    note = "use reschedule_with with a localwm_prng::SplitMix64 stream"
)]
pub fn reschedule(g: &Cdfg, seed: u64) -> Result<Schedule, ScheduleError> {
    reschedule_with(&DesignContext::from(g), &mut SplitMix64::new(seed))
}

/// Seed-taking shim over [`reschedule_with`] for a shared
/// [`DesignContext`].
///
/// # Errors
///
/// Propagates scheduling failures.
///
/// # Panics
///
/// Panics if the graph is cyclic.
#[deprecated(
    since = "0.1.0",
    note = "use reschedule_with with a localwm_prng::SplitMix64 stream"
)]
pub fn reschedule_in(ctx: &DesignContext, seed: u64) -> Result<Schedule, ScheduleError> {
    reschedule_with(ctx, &mut SplitMix64::new(seed))
}

/// A degenerate input to the analytic tampering model: the typed
/// diagnosis, not a panic, so services and the CLI can surface it like
/// any other watermarking error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackModelError {
    /// The solution has no alterable operation pairs (an empty or
    /// single-op schedule): the model is undefined, there is nothing an
    /// attacker could alter.
    NoAlterablePairs,
    /// The mean coincidence ratio must lie strictly inside `(0, 1)`;
    /// a zero-signature design (no marked constraints, ratio 0 or 1)
    /// carries no proof to defeat.
    InvalidRatio(
        /// The offending ratio.
        f64,
    ),
    /// The target coincidence probability must lie strictly inside
    /// `(0, 1)`.
    InvalidTarget(
        /// The offending target.
        f64,
    ),
}

impl fmt::Display for AttackModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttackModelError::NoAlterablePairs => {
                write!(f, "no alterable pairs: the solution is empty or trivial")
            }
            AttackModelError::InvalidRatio(r) => {
                write!(f, "mean coincidence ratio {r} outside (0, 1)")
            }
            AttackModelError::InvalidTarget(t) => {
                write!(f, "target coincidence probability {t} outside (0, 1)")
            }
        }
    }
}

impl std::error::Error for AttackModelError {}

/// The analytic tampering model: how many random pair-order alterations an
/// attacker must apply before the expected surviving proof drops below
/// `target_pc`.
///
/// Model (documented because the paper's arithmetic is not fully
/// reproducible from the text): the solution contains `total_pairs`
/// alterable operation pairs, `marked_edges` of which carry watermark
/// constraints with mean coincidence ratio `mean_ratio` (the paper uses
/// `E[ψ_W/ψ_N] = ½`). Alterations hit pairs uniformly without replacement;
/// each hit on a marked pair destroys its constraint. Detection retains
/// proof `mean_ratio^(surviving)`; the attacker needs
/// `surviving ≤ log(target_pc)/log(mean_ratio)`, so the expected number of
/// alterations is `total_pairs · (marked - survivors_allowed) / marked`.
///
/// With the paper's example (100 000 ops ⇒ 50 000 pairs, 100 edges,
/// ratio ½, target 10⁻⁶) this model yields 40 000 alterations — the same
/// order as the paper's 31 729, and the same conclusion: the attacker must
/// rework most of the solution. `EXPERIMENTS.md` discusses the difference.
///
/// # Errors
///
/// Returns a typed [`AttackModelError`] on degenerate inputs — an empty
/// solution (`total_pairs == 0`) or out-of-range `mean_ratio` /
/// `target_pc` — instead of panicking.
pub fn alterations_to_defeat(
    total_pairs: u64,
    marked_edges: u64,
    mean_ratio: f64,
    target_pc: f64,
) -> Result<u64, AttackModelError> {
    if !(mean_ratio > 0.0 && mean_ratio < 1.0) {
        return Err(AttackModelError::InvalidRatio(mean_ratio));
    }
    if !(target_pc > 0.0 && target_pc < 1.0) {
        return Err(AttackModelError::InvalidTarget(target_pc));
    }
    if total_pairs == 0 {
        return Err(AttackModelError::NoAlterablePairs);
    }
    if marked_edges == 0 {
        return Ok(0);
    }
    let survivors_allowed = (target_pc.ln() / mean_ratio.ln()).floor();
    let must_destroy = (marked_edges as f64 - survivors_allowed).max(0.0);
    Ok(((total_pairs as f64) * must_destroy / marked_edges as f64).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedWmConfig, SchedulingWatermarker, Signature};
    use localwm_cdfg::generators::{mediabench, mediabench_apps};

    fn rng(seed: u64) -> SplitMix64 {
        SplitMix64::new(seed)
    }

    #[test]
    fn perturbation_keeps_schedule_valid() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &Signature::from_author("victim")).unwrap();
        let (p, applied) =
            perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 200, &mut rng(1));
        assert!(applied > 0);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn small_perturbations_leave_most_constraints_intact() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 15,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("victim-2");
        let emb = wm.embed(&g, &s).unwrap();
        let (p, _) = perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 30, &mut rng(7));
        let ev = wm.detect(&p, &g, &s).unwrap();
        assert!(
            ev.satisfied_fraction() >= 0.6,
            "30 random moves on a 758-op design should not erase the mark \
             (got {})",
            ev.satisfied_fraction()
        );
    }

    #[test]
    fn tolerant_detection_survives_light_tampering() {
        let g = mediabench(&mediabench_apps()[4], 0); // PGP, 1755 ops
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 35,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("tolerant-victim");
        let emb = wm.embed(&g, &s).unwrap();
        let (p, _) =
            perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 150, &mut rng(5));
        let ev = wm.detect(&p, &g, &s).unwrap();
        // A handful of constraints may break...
        assert!(ev.satisfied_fraction() > 0.7);
        // ...but the statistical verdict still attributes authorship.
        assert!(
            ev.is_match_with_tolerance(1e-6),
            "chance probability {} too high",
            ev.chance_probability()
        );
        // An unrelated signature never passes the same test.
        let other = Signature::from_author("tolerant-impostor");
        let wrong = wm.detect(&p, &g, &other).unwrap();
        assert!(!wrong.is_match_with_tolerance(1e-6));
    }

    #[test]
    fn heavy_perturbation_degrades_the_proof() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 15,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("victim-3");
        let emb = wm.embed(&g, &s).unwrap();
        let light = wm
            .detect(
                &perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 20, &mut rng(3)).0,
                &g,
                &s,
            )
            .unwrap();
        let heavy = wm
            .detect(
                &perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 5000, &mut rng(3)).0,
                &g,
                &s,
            )
            .unwrap();
        assert!(heavy.satisfied_fraction() <= light.satisfied_fraction());
    }

    #[test]
    fn reschedule_produces_valid_unmarked_solution() {
        let g = mediabench(&mediabench_apps()[2], 0);
        let ctx = DesignContext::from(&g);
        let s1 = reschedule_with(&ctx, &mut rng(1)).unwrap();
        let s2 = reschedule_with(&ctx, &mut rng(2)).unwrap();
        assert!(s1.validate(&g).is_ok());
        assert_ne!(s1, s2, "different seeds should differ");
    }

    #[test]
    #[allow(deprecated)]
    fn seed_taking_shims_match_the_stream_entry_points() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &Signature::from_author("shim")).unwrap();
        let via_shim = perturb_schedule(&g, &emb.schedule, emb.available_steps, 40, 9);
        let via_stream =
            perturb_schedule_with(&g, &emb.schedule, emb.available_steps, 40, &mut rng(9));
        assert_eq!(via_shim, via_stream);
        let ctx = DesignContext::from(&g);
        assert_eq!(
            reschedule(&g, 4).unwrap(),
            reschedule_with(&ctx, &mut rng(4)).unwrap()
        );
        assert_eq!(
            reschedule_in(&ctx, 4).unwrap(),
            reschedule_with(&ctx, &mut rng(4)).unwrap()
        );
    }

    #[test]
    fn analytic_model_reproduces_papers_order_of_magnitude() {
        // 100 000 ops, 100 edges, ratio 1/2, target 1e-6.
        let f = alterations_to_defeat(50_000, 100, 0.5, 1e-6).unwrap();
        // Paper reports 31 729 (63 % of 50 000); our model gives 40 500
        // (80 %). Same conclusion: the majority of the solution must change.
        assert_eq!(f, 40_500);
        assert!(f as f64 / 50_000.0 > 0.5);
    }

    #[test]
    fn analytic_model_edge_cases() {
        assert_eq!(alterations_to_defeat(1000, 0, 0.5, 1e-6), Ok(0));
        // Weak mark (few edges): already below target, nothing to do.
        assert_eq!(alterations_to_defeat(1000, 10, 0.5, 1e-6), Ok(0));
    }

    #[test]
    fn analytic_model_rejects_degenerate_inputs_with_typed_errors() {
        // Empty schedule: no alterable pairs.
        assert_eq!(
            alterations_to_defeat(0, 5, 0.5, 1e-6),
            Err(AttackModelError::NoAlterablePairs)
        );
        // Zero-signature design: ratio collapses to 0 (or 1).
        assert_eq!(
            alterations_to_defeat(1000, 5, 0.0, 1e-6),
            Err(AttackModelError::InvalidRatio(0.0))
        );
        assert_eq!(
            alterations_to_defeat(1000, 5, 1.0, 1e-6),
            Err(AttackModelError::InvalidRatio(1.0))
        );
        assert_eq!(
            alterations_to_defeat(1000, 5, 0.5, 0.0),
            Err(AttackModelError::InvalidTarget(0.0))
        );
        assert!(alterations_to_defeat(0, 5, 0.5, 1e-6)
            .unwrap_err()
            .to_string()
            .contains("no alterable pairs"));
    }
}
