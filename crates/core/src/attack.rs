//! Tampering models and proof-decay measurement (paper §IV-A discussion).
//!
//! "The attacker may try to modify the output locally in such a way that
//! the watermark disappears or the proof of authorship is lowered below a
//! predetermined standard." These models quantify how much of a solution an
//! attacker must perturb:
//!
//! * [`perturb_schedule`] — random legal moves of operations within their
//!   live windows (local tampering that preserves solution validity).
//! * [`reschedule`] — a full re-synthesis with a different (randomized)
//!   priority function, the strongest whole-solution attack short of
//!   redesign.
//! * [`alterations_to_defeat`] — the analytic model behind the paper's
//!   "alter 63 % of the final solution" argument.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;
use localwm_sched::{Schedule, ScheduleError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Randomly moves up to `moves` operations to different control steps,
/// keeping the schedule valid (each op stays within the window its
/// currently-scheduled neighbours allow, and within `available_steps`).
///
/// Returns the perturbed schedule and the number of moves actually applied
/// (an op whose neighbours pin it in place cannot move).
///
/// # Panics
///
/// Panics if the input schedule is invalid for `g`.
pub fn perturb_schedule(
    g: &Cdfg,
    schedule: &Schedule,
    available_steps: u32,
    moves: usize,
    seed: u64,
) -> (Schedule, usize) {
    assert!(
        schedule.validate(g).is_ok(),
        "perturbation requires a valid schedule"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = schedule.clone();
    let ops: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .collect();
    let mut applied = 0usize;
    for _ in 0..moves {
        let n = ops[rng.gen_range(0..ops.len())];
        // Live window given currently scheduled neighbours.
        let lo = g
            .preds(n)
            .filter_map(|p| s.step(p))
            .max()
            .map_or(1, |m| m + 1);
        let hi = g
            .succs(n)
            .filter_map(|d| s.step(d))
            .min()
            .map_or(available_steps, |m| m.saturating_sub(1));
        if lo >= hi {
            continue; // pinned
        }
        let cur = s.step(n).expect("schedulable ops are scheduled");
        let new = rng.gen_range(lo..=hi);
        if new != cur {
            s.set_step(n, new);
            applied += 1;
        }
    }
    debug_assert!(s.validate(g).is_ok());
    (s, applied)
}

/// Re-synthesizes the design from scratch with a randomized priority list
/// scheduler — the attack of re-running a different tool on the (stripped)
/// specification.
///
/// # Errors
///
/// Propagates scheduling failures.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn reschedule(g: &Cdfg, seed: u64) -> Result<Schedule, ScheduleError> {
    reschedule_in(&DesignContext::from(g), seed)
}

/// [`reschedule`] against a shared [`DesignContext`], reusing its memoized
/// topological order.
///
/// # Errors
///
/// Propagates scheduling failures.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn reschedule_in(ctx: &DesignContext, seed: u64) -> Result<Schedule, ScheduleError> {
    let g = ctx.graph();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut s = Schedule::empty(g);
    // Randomized-greedy: walk in topo order, placing each op at its
    // earliest feasible step plus a random hold of 0..=2 steps.
    for &n in ctx.topo() {
        if !g.kind(n).is_schedulable() {
            continue;
        }
        let lo = g
            .preds(n)
            .filter_map(|p| s.step(p))
            .max()
            .map_or(1, |m| m + 1);
        let hold = rng.gen_range(0..=2);
        s.set_step(n, lo + hold);
    }
    debug_assert!(s.validate(g).is_ok());
    Ok(s)
}

/// The analytic tampering model: how many random pair-order alterations an
/// attacker must apply before the expected surviving proof drops below
/// `target_pc`.
///
/// Model (documented because the paper's arithmetic is not fully
/// reproducible from the text): the solution contains `total_pairs`
/// alterable operation pairs, `marked_edges` of which carry watermark
/// constraints with mean coincidence ratio `mean_ratio` (the paper uses
/// `E[ψ_W/ψ_N] = ½`). Alterations hit pairs uniformly without replacement;
/// each hit on a marked pair destroys its constraint. Detection retains
/// proof `mean_ratio^(surviving)`; the attacker needs
/// `surviving ≤ log(target_pc)/log(mean_ratio)`, so the expected number of
/// alterations is `total_pairs · (marked - survivors_allowed) / marked`.
///
/// With the paper's example (100 000 ops ⇒ 50 000 pairs, 100 edges,
/// ratio ½, target 10⁻⁶) this model yields 40 000 alterations — the same
/// order as the paper's 31 729, and the same conclusion: the attacker must
/// rework most of the solution. `EXPERIMENTS.md` discusses the difference.
///
/// # Panics
///
/// Panics if `mean_ratio` is not in `(0, 1)` or `target_pc` not in `(0, 1)`.
pub fn alterations_to_defeat(
    total_pairs: u64,
    marked_edges: u64,
    mean_ratio: f64,
    target_pc: f64,
) -> u64 {
    assert!((0.0..1.0).contains(&mean_ratio) && mean_ratio > 0.0);
    assert!((0.0..1.0).contains(&target_pc) && target_pc > 0.0);
    if marked_edges == 0 {
        return 0;
    }
    let survivors_allowed = (target_pc.ln() / mean_ratio.ln()).floor();
    let must_destroy = (marked_edges as f64 - survivors_allowed).max(0.0);
    ((total_pairs as f64) * must_destroy / marked_edges as f64).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SchedWmConfig, SchedulingWatermarker, Signature};
    use localwm_cdfg::generators::{mediabench, mediabench_apps};

    #[test]
    fn perturbation_keeps_schedule_valid() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &Signature::from_author("victim")).unwrap();
        let (p, applied) = perturb_schedule(&g, &emb.schedule, emb.available_steps, 200, 1);
        assert!(applied > 0);
        assert!(p.validate(&g).is_ok());
    }

    #[test]
    fn small_perturbations_leave_most_constraints_intact() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 15,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("victim-2");
        let emb = wm.embed(&g, &s).unwrap();
        let (p, _) = perturb_schedule(&g, &emb.schedule, emb.available_steps, 30, 7);
        let ev = wm.detect(&p, &g, &s).unwrap();
        assert!(
            ev.satisfied_fraction() >= 0.6,
            "30 random moves on a 758-op design should not erase the mark \
             (got {})",
            ev.satisfied_fraction()
        );
    }

    #[test]
    fn tolerant_detection_survives_light_tampering() {
        let g = mediabench(&mediabench_apps()[4], 0); // PGP, 1755 ops
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 35,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("tolerant-victim");
        let emb = wm.embed(&g, &s).unwrap();
        let (p, _) = perturb_schedule(&g, &emb.schedule, emb.available_steps, 150, 5);
        let ev = wm.detect(&p, &g, &s).unwrap();
        // A handful of constraints may break...
        assert!(ev.satisfied_fraction() > 0.7);
        // ...but the statistical verdict still attributes authorship.
        assert!(
            ev.is_match_with_tolerance(1e-6),
            "chance probability {} too high",
            ev.chance_probability()
        );
        // An unrelated signature never passes the same test.
        let other = Signature::from_author("tolerant-impostor");
        let wrong = wm.detect(&p, &g, &other).unwrap();
        assert!(!wrong.is_match_with_tolerance(1e-6));
    }

    #[test]
    fn heavy_perturbation_degrades_the_proof() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 15,
            ..SchedWmConfig::default()
        });
        let s = Signature::from_author("victim-3");
        let emb = wm.embed(&g, &s).unwrap();
        let light = wm
            .detect(
                &perturb_schedule(&g, &emb.schedule, emb.available_steps, 20, 3).0,
                &g,
                &s,
            )
            .unwrap();
        let heavy = wm
            .detect(
                &perturb_schedule(&g, &emb.schedule, emb.available_steps, 5000, 3).0,
                &g,
                &s,
            )
            .unwrap();
        assert!(heavy.satisfied_fraction() <= light.satisfied_fraction());
    }

    #[test]
    fn reschedule_produces_valid_unmarked_solution() {
        let g = mediabench(&mediabench_apps()[2], 0);
        let s1 = reschedule(&g, 1).unwrap();
        let s2 = reschedule(&g, 2).unwrap();
        assert!(s1.validate(&g).is_ok());
        assert_ne!(s1, s2, "different seeds should differ");
    }

    #[test]
    fn analytic_model_reproduces_papers_order_of_magnitude() {
        // 100 000 ops, 100 edges, ratio 1/2, target 1e-6.
        let f = alterations_to_defeat(50_000, 100, 0.5, 1e-6);
        // Paper reports 31 729 (63 % of 50 000); our model gives 40 500
        // (80 %). Same conclusion: the majority of the solution must change.
        assert_eq!(f, 40_500);
        assert!(f as f64 / 50_000.0 > 0.5);
    }

    #[test]
    fn analytic_model_edge_cases() {
        assert_eq!(alterations_to_defeat(1000, 0, 0.5, 1e-6), 0);
        // Weak mark (few edges): already below target, nothing to do.
        assert_eq!(alterations_to_defeat(1000, 10, 0.5, 1e-6), 0);
    }
}
