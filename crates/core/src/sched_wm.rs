//! The operation-scheduling watermark (paper §IV-A, Fig. 2).

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::{par_map, DesignContext, Parallelism};
use localwm_prng::{Bitstream, Signature};
use localwm_sched::{list_schedule_in, ResourceSet, Schedule, Windows};

use crate::domain::{pick_root, select_domain_in, Domain};
use crate::{pc, WatermarkError};

/// Derivation output: the selected localities, the temporal edges, and the
/// windows they were drawn against.
type Derivation = (Vec<Domain>, Vec<(NodeId, NodeId)>, Windows);

/// Configuration of the scheduling watermark.
///
/// With `tau == 0` / `k == 0` the parameters auto-scale with the design
/// (`τ = max(10, N/5)`, `K = max(3, τ/5)`); `k_fraction` overrides `k` as a
/// fraction of the operation count, which is how the paper's Table I
/// parameterizes its runs ("2 % / 5 % nodes constrained").
#[derive(Debug, Clone, PartialEq)]
pub struct SchedWmConfig {
    /// Desired locality cardinality `τ = |T|` (0 = auto).
    pub tau: usize,
    /// Number of temporal edges `K` (0 = auto).
    pub k: usize,
    /// `K` as a fraction of the design's operation count; overrides `k`.
    pub k_fraction: Option<f64>,
    /// Laxity margin `ε ∈ [0, 1)`: only operations whose longest
    /// containing path is at most `(1 − ε) ·` available steps receive
    /// constraints, keeping the watermark off (near-)critical paths.
    pub epsilon: f64,
    /// Available control steps as a multiple of the critical path
    /// (≥ 1; 1.0 = tight schedule).
    pub slack_factor: f64,
    /// Domain-selection attempts before giving up.
    pub max_attempts: usize,
}

impl Default for SchedWmConfig {
    fn default() -> Self {
        SchedWmConfig {
            tau: 0,
            k: 0,
            k_fraction: None,
            epsilon: 0.2,
            slack_factor: 1.5,
            max_attempts: 24,
        }
    }
}

impl SchedWmConfig {
    /// The paper's Table I parameterization: constrain `fraction` of the
    /// design's operations (`K = fraction · N`, `τ = 5 · K`).
    pub fn with_node_fraction(fraction: f64) -> Self {
        SchedWmConfig {
            k_fraction: Some(fraction),
            ..Self::default()
        }
    }

    fn validate(&self) -> Result<(), WatermarkError> {
        if !(0.0..1.0).contains(&self.epsilon) {
            return Err(WatermarkError::InvalidConfig(format!(
                "epsilon must be in [0, 1), got {}",
                self.epsilon
            )));
        }
        if self.slack_factor < 1.0 {
            return Err(WatermarkError::InvalidConfig(format!(
                "slack_factor must be >= 1, got {}",
                self.slack_factor
            )));
        }
        if let Some(f) = self.k_fraction {
            if !(0.0..=1.0).contains(&f) {
                return Err(WatermarkError::InvalidConfig(format!(
                    "k_fraction must be in [0, 1], got {f}"
                )));
            }
        }
        if self.max_attempts == 0 {
            return Err(WatermarkError::InvalidConfig(
                "max_attempts must be positive".to_owned(),
            ));
        }
        Ok(())
    }

    fn resolve(&self, g: &Cdfg) -> (usize, usize) {
        let n = g.op_count();
        let k = match self.k_fraction {
            Some(f) => ((f * n as f64).round() as usize).max(1),
            None if self.k > 0 => self.k,
            None => (self.tau_for(n) / 5).max(3),
        };
        let tau = if self.tau > 0 {
            self.tau
        } else if self.k_fraction.is_some() || self.k > 0 {
            (5 * k).max(k + 2)
        } else {
            self.tau_for(n)
        };
        (tau.max(k + 1), k)
    }

    fn tau_for(&self, n: usize) -> usize {
        if self.tau > 0 {
            self.tau
        } else {
            (n / 5).max(10)
        }
    }
}

/// The result of embedding a scheduling watermark.
#[derive(Debug, Clone)]
pub struct SchedEmbedding {
    /// The constrained specification: the original graph plus the
    /// watermark's temporal edges. Hand this to the synthesis tool; strip
    /// the temporal edges afterwards with
    /// [`Cdfg::strip_temporal_edges`](localwm_cdfg::Cdfg::strip_temporal_edges).
    pub marked: Cdfg,
    /// A schedule produced under the constraints (by this crate's list
    /// scheduler — any constraint-honouring scheduler works).
    pub schedule: Schedule,
    /// The temporal edges, in drawing order.
    pub edges: Vec<(NodeId, NodeId)>,
    /// The selected domains (one per locality; local watermarks are
    /// plural — several small marks accumulate until `K` edges are
    /// placed).
    pub domains: Vec<Domain>,
    /// Control steps the windows were computed for.
    pub available_steps: u32,
}

/// Evidence from a detection pass.
#[derive(Debug, Clone)]
pub struct SchedEvidence {
    /// Per-edge check: `(src, dst, src-ran-strictly-before-dst)`.
    pub checks: Vec<(NodeId, NodeId, bool)>,
    /// Per-edge chance probability: how likely an *unmarked* schedule
    /// satisfies each constraint (pair-window estimate).
    pub chances: Vec<f64>,
    /// `log₁₀` of the coincidence probability `P_c` estimated for the
    /// checked constraints (pair-window estimator; see [`pc`]).
    pub log10_pc: f64,
}

impl SchedEvidence {
    /// Whether every constraint holds (and at least one was checked).
    pub fn is_match(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(|&(_, _, ok)| ok)
    }

    /// Fraction of constraints that hold.
    pub fn satisfied_fraction(&self) -> f64 {
        if self.checks.is_empty() {
            return 0.0;
        }
        self.checks.iter().filter(|&&(_, _, ok)| ok).count() as f64 / self.checks.len() as f64
    }

    /// Strength of the authorship proof, `1 − P_c`, reported as the
    /// number of decimal orders of magnitude of `P_c` (larger = stronger).
    pub fn proof_strength_digits(&self) -> f64 {
        -self.log10_pc
    }

    /// The significance of a (possibly partial) match: the probability
    /// that an unmarked schedule satisfies at least as many constraints as
    /// this one did, by chance (Poisson-binomial tail over the per-edge
    /// chance probabilities).
    pub fn chance_probability(&self) -> f64 {
        let satisfied = self.checks.iter().filter(|&&(_, _, ok)| ok).count();
        pc::poisson_binomial_tail(&self.chances, satisfied)
    }

    /// Tolerant verdict: authorship is claimed when the observed match is
    /// less likely than `max_chance` to arise from an unmarked solution —
    /// so a lightly tampered mark (a few violated constraints) still
    /// attributes. `max_chance` of `1e-6` mirrors the paper's
    /// one-in-a-million standard.
    pub fn is_match_with_tolerance(&self, max_chance: f64) -> bool {
        !self.checks.is_empty() && self.chance_probability() <= max_chance
    }
}

/// Embeds and detects scheduling watermarks.
#[derive(Debug, Clone)]
pub struct SchedulingWatermarker {
    config: SchedWmConfig,
}

impl SchedulingWatermarker {
    /// Creates a watermarker with the given configuration.
    pub fn new(config: SchedWmConfig) -> Self {
        SchedulingWatermarker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SchedWmConfig {
        &self.config
    }

    /// Derives the signature-specific constraints for `g`.
    ///
    /// Both [`SchedulingWatermarker::embed`] and
    /// [`SchedulingWatermarker::detect`] call this; it is deterministic in
    /// `(g, signature, config)`, which is what makes detection work without
    /// any side channel.
    fn derive_in(
        &self,
        ctx: &DesignContext,
        signature: &Signature,
        par: Parallelism,
    ) -> Result<Derivation, WatermarkError> {
        self.config.validate()?;
        let g = ctx.graph();
        let (tau, k) = self.config.resolve(g);
        let cp = ctx.unit_timing().critical_path();
        if cp == 0 {
            return Err(WatermarkError::NoDomain {
                attempts: 0,
                best_candidates: 0,
                needed: k + 1,
            });
        }
        let steps = ((f64::from(cp) * self.config.slack_factor).ceil() as u32).max(cp);
        let windows = Windows::in_ctx(ctx, steps)?;
        // Eligibility: the longest path through a constrained node must
        // clear the deadline with an ε margin. With a tight deadline
        // (`slack_factor == 1`) this is exactly the paper's
        // `laxity ≤ C·(1−ε)` condition; with slack the margin is measured
        // against the step budget, which is what actually bounds the
        // timing overhead the constraint can cause. The same cap is
        // applied to every path a drawn edge creates.
        let laxity_cap = f64::from(steps) * (1.0 - self.config.epsilon);
        let edge_path_cap = laxity_cap.floor().min(f64::from(steps)) as u32;

        // Local watermarks are plural: constraints accumulate across
        // several pseudorandomly selected localities until K temporal
        // edges are placed. Each locality is independently detectable;
        // detection replays the identical deterministic loop.
        let roots = crate::domain::root_candidates_in(ctx, tau, (k / 4).max(2));

        // Phase 1 — locality preparation, fanned across workers. Each
        // attempt's bitstream, root pick, domain walk and eligibility
        // filter depend only on (graph, signature, attempt index), never on
        // edges drawn by earlier attempts, so the fan-out is result-
        // identical for every `Parallelism` choice.
        let attempts: Vec<usize> = (0..self.config.max_attempts).collect();
        let prepared: Vec<Option<(Bitstream, Domain, Vec<NodeId>)>> =
            par_map(par, &attempts, |_, &attempt| {
                let mut bits =
                    Bitstream::for_purpose(signature, &format!("sched-wm/attempt-{attempt}"));
                let root = pick_root(&roots, &mut bits)?;
                let domain = select_domain_in(ctx, root, tau, &mut bits);

                // T': eligible nodes — schedulable, laxity within the cap,
                // and (pruned to a fixpoint) owning an overlap partner
                // inside T'.
                let mut t_prime: Vec<NodeId> = domain
                    .t
                    .iter()
                    .copied()
                    .filter(|&n| g.kind(n).is_schedulable())
                    .filter(|&n| f64::from(windows.laxity(n)) <= laxity_cap)
                    .collect();
                loop {
                    let before = t_prime.len();
                    let snapshot = t_prime.clone();
                    t_prime.retain(|&n| snapshot.iter().any(|&m| m != n && windows.overlap(n, m)));
                    if t_prime.len() == before {
                        break;
                    }
                }
                Some((bits, domain, t_prime))
            });
        ctx.probe()
            .counter("core.sched_wm.attempts", prepared.len() as u64);

        // Phase 2 — edge drawing. Each drawn edge tightens the working
        // graph that later draws are filtered against, so localities are
        // consumed strictly in attempt order.
        let mut best_candidates = 0usize;
        let mut pairs_examined = 0usize;
        let mut domains: Vec<Domain> = Vec::new();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(k);
        let mut working = DesignContext::from(g);
        for prep in prepared {
            if edges.len() == k {
                break;
            }
            let Some((mut bits, domain, t_prime)) = prep else {
                break;
            };
            best_candidates = best_candidates.max(t_prime.len());
            if t_prime.len() < 2 {
                continue;
            }

            // T'': pseudorandomly ordered selection. We select up to 2R+2
            // nodes for the R edges this locality still owes (the paper
            // selects K) so every source keeps later candidates even after
            // the overlap/incomparability filters.
            let rem = k - edges.len();
            let want = (2 * rem + 2).min(t_prime.len());
            let idxs = bits.ordered_selection(t_prime.len(), want);
            let t2: Vec<NodeId> = idxs.into_iter().map(|i| t_prime[i]).collect();

            let mut drew_here = false;
            for i in 0..t2.len() {
                if edges.len() == k {
                    break;
                }
                let ni = t2[i];
                let wt = working.unit_timing();
                pairs_examined += t2.len() - i - 1;
                let gset: Vec<NodeId> = t2[i + 1..]
                    .iter()
                    .copied()
                    .filter(|&nj| windows.overlap(ni, nj))
                    .filter(|&nj| !working.reaches(ni, nj) && !working.reaches(nj, ni))
                    .filter(|&nj| wt.asap(ni) + wt.tail(nj) <= edge_path_cap)
                    .collect();
                let Some(&nk) = bits.choose(&gset) else {
                    continue;
                };
                working
                    .add_temporal_edge(ni, nk)
                    .expect("incomparable nodes cannot cycle");
                edges.push((ni, nk));
                drew_here = true;
            }
            if drew_here {
                domains.push(domain);
            }
        }
        ctx.probe()
            .counter("core.sched_wm.edges", edges.len() as u64);
        if edges.len() == k {
            return Ok((domains, edges, windows));
        }
        if edges.is_empty() && pairs_examined > 0 {
            // Localities with eligible slack-rich nodes existed, yet no
            // candidate pair anywhere was simultaneously overlapping and
            // incomparable: the design is too serial for this watermark.
            Err(WatermarkError::NoIncomparablePairs {
                domain_size: best_candidates,
                pairs_examined,
            })
        } else if best_candidates < 2 {
            Err(WatermarkError::NoDomain {
                attempts: self.config.max_attempts,
                best_candidates,
                needed: 2,
            })
        } else {
            Err(WatermarkError::TooFewEdges {
                drawn: edges.len(),
                requested: k,
            })
        }
    }

    /// Embeds the watermark: augments the specification with the
    /// signature's temporal edges and synthesizes a schedule under them.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::NoDomain`] if no locality supports the requested
    /// constraint count, plus configuration and scheduling errors.
    pub fn embed(&self, g: &Cdfg, signature: &Signature) -> Result<SchedEmbedding, WatermarkError> {
        self.embed_in(&DesignContext::from(g), signature, Parallelism::from_env())
    }

    /// [`SchedulingWatermarker::embed`] against a shared [`DesignContext`],
    /// fanning the per-attempt locality preparation across scoped worker
    /// threads per `par`. The embedding is byte-identical for every
    /// [`Parallelism`] choice.
    ///
    /// # Errors
    ///
    /// Same as [`SchedulingWatermarker::embed`].
    pub fn embed_in(
        &self,
        ctx: &DesignContext,
        signature: &Signature,
        par: Parallelism,
    ) -> Result<SchedEmbedding, WatermarkError> {
        let (domains, edges, windows) = self.derive_in(ctx, signature, par)?;
        let mut marked = ctx.graph().clone();
        for &(s, d) in &edges {
            marked.add_temporal_edge(s, d)?;
        }
        let marked_ctx = DesignContext::new(marked).with_probe(ctx.probe_arc());
        let schedule = list_schedule_in(
            &marked_ctx,
            &ResourceSet::unlimited(),
            Some(windows.available_steps()),
        )?;
        Ok(SchedEmbedding {
            marked: marked_ctx.into_graph(),
            schedule,
            edges,
            domains,
            available_steps: windows.available_steps(),
        })
    }

    /// Detects the watermark: re-derives the signature's constraints from
    /// the *original* specification and verifies them against the
    /// suspected schedule.
    ///
    /// # Errors
    ///
    /// Same derivation errors as [`SchedulingWatermarker::embed`] — note a
    /// derivation failure means "this signature could not even have been
    /// embedded here", which is itself a negative result.
    pub fn detect(
        &self,
        schedule: &Schedule,
        g: &Cdfg,
        signature: &Signature,
    ) -> Result<SchedEvidence, WatermarkError> {
        self.detect_in(
            schedule,
            &DesignContext::from(g),
            signature,
            Parallelism::from_env(),
        )
    }

    /// [`SchedulingWatermarker::detect`] against a shared
    /// [`DesignContext`], fanning the per-attempt locality preparation
    /// across scoped worker threads per `par`. The evidence is
    /// byte-identical for every [`Parallelism`] choice.
    ///
    /// # Errors
    ///
    /// Same as [`SchedulingWatermarker::detect`].
    pub fn detect_in(
        &self,
        schedule: &Schedule,
        ctx: &DesignContext,
        signature: &Signature,
        par: Parallelism,
    ) -> Result<SchedEvidence, WatermarkError> {
        let (_, edges, windows) = self.derive_in(ctx, signature, par)?;
        let checks: Vec<(NodeId, NodeId, bool)> = edges
            .iter()
            .map(|&(s, d)| (s, d, schedule.executes_before(s, d).unwrap_or(false)))
            .collect();
        let chances: Vec<f64> = edges
            .iter()
            .map(|&(s, d)| pc::pair_order_probability(&windows, s, d))
            .collect();
        let log10_pc = pc::log10_pc_pairs(&windows, &edges);
        Ok(SchedEvidence {
            checks,
            chances,
            log10_pc,
        })
    }

    /// Realizes the temporal edges as *unit operations* for compiled-code
    /// settings: "temporal edges were induced using additional operations
    /// with unit operators (e.g., additions with variables assigned to zero
    /// at runtime)" (paper §V). Each edge `s → d` becomes a `UnitOp` `u`
    /// with a data edge `s → u` and a control edge `u → d`, so a compiler
    /// that knows nothing about watermarks still enforces the order.
    ///
    /// Returns the realized graph (for VLIW overhead measurement).
    pub fn realize_as_unit_ops(g: &Cdfg, edges: &[(NodeId, NodeId)]) -> Cdfg {
        let mut out = g.clone();
        for &(s, d) in edges {
            let u = out.add_node(localwm_cdfg::OpKind::UnitOp);
            out.add_data_edge(s, u).expect("source exists");
            out.add_control_edge(u, d).expect("destination exists");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};
    use localwm_cdfg::EdgeKind;
    use localwm_sched::list_schedule;

    fn sig(name: &str) -> Signature {
        Signature::from_author(name)
    }

    #[test]
    fn embed_then_detect_round_trips() {
        let g = iir4_parallel();
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let s = sig("roundtrip");
        let emb = wm.embed(&g, &s).unwrap();
        assert!(!emb.edges.is_empty());
        assert!(emb.schedule.validate(&emb.marked).is_ok());
        let ev = wm.detect(&emb.schedule, &g, &s).unwrap();
        assert!(ev.is_match());
        assert_eq!(ev.satisfied_fraction(), 1.0);
        assert!(ev.log10_pc < 0.0);
    }

    #[test]
    fn detection_is_deterministic() {
        let g = iir4_parallel();
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let s = sig("determinism");
        let emb = wm.embed(&g, &s).unwrap();
        let e1 = wm.detect(&emb.schedule, &g, &s).unwrap();
        let e2 = wm.detect(&emb.schedule, &g, &s).unwrap();
        assert_eq!(e1.checks, e2.checks);
    }

    #[test]
    fn wrong_signature_rarely_matches() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 12,
            ..SchedWmConfig::default()
        });
        let author = sig("the-author");
        let emb = wm.embed(&g, &author).unwrap();
        let mut false_positives = 0;
        for i in 0..10 {
            let other = sig(&format!("impostor-{i}"));
            if let Ok(ev) = wm.detect(&emb.schedule, &g, &other) {
                if ev.is_match() {
                    false_positives += 1;
                }
            }
        }
        assert_eq!(false_positives, 0, "12-edge marks must not collide");
    }

    #[test]
    fn unconstrained_schedule_does_not_verify() {
        let g = mediabench(&mediabench_apps()[1], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 12,
            ..SchedWmConfig::default()
        });
        let s = sig("author");
        // Schedule the *original* graph: no constraints embedded.
        let plain = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let ev = wm.detect(&plain, &g, &s).unwrap();
        assert!(
            !ev.is_match(),
            "plain schedule should miss some constraints"
        );
    }

    #[test]
    fn marked_graph_has_exactly_k_temporal_edges() {
        let g = mediabench(&mediabench_apps()[2], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 9,
            ..SchedWmConfig::default()
        });
        let emb = wm.embed(&g, &sig("count")).unwrap();
        assert_eq!(emb.edges.len(), 9);
        let temporal = emb
            .marked
            .edges()
            .filter(|e| e.kind() == EdgeKind::Temporal)
            .count();
        assert_eq!(temporal, 9);
    }

    #[test]
    fn stripping_recovers_original_edge_count() {
        let g = iir4_parallel();
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let mut emb = wm.embed(&g, &sig("strip")).unwrap();
        let stripped = emb.marked.strip_temporal_edges();
        assert_eq!(stripped, emb.edges.len());
        assert_eq!(emb.marked.edge_count(), g.edge_count());
    }

    #[test]
    fn schedule_respects_deadline_budget() {
        let g = mediabench(&mediabench_apps()[3], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &sig("budget")).unwrap();
        assert!(emb.schedule.length() <= emb.available_steps);
    }

    #[test]
    fn fraction_config_scales_k_with_design_size() {
        let g = mediabench(&mediabench_apps()[0], 0); // 528 ops
        let wm = SchedulingWatermarker::new(SchedWmConfig::with_node_fraction(0.02));
        let emb = wm.embed(&g, &sig("fraction")).unwrap();
        assert_eq!(emb.edges.len(), (0.02f64 * 528.0).round() as usize);
    }

    #[test]
    fn invalid_epsilon_is_rejected() {
        let g = iir4_parallel();
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            epsilon: 1.0,
            ..SchedWmConfig::default()
        });
        assert!(matches!(
            wm.embed(&g, &sig("bad")),
            Err(WatermarkError::InvalidConfig(_))
        ));
    }

    #[test]
    fn realized_unit_ops_enforce_order_through_dataflow() {
        let g = iir4_parallel();
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &sig("realize")).unwrap();
        let realized = SchedulingWatermarker::realize_as_unit_ops(&g, &emb.edges);
        assert_eq!(
            realized.op_count(),
            g.op_count() + emb.edges.len(),
            "one unit op per edge"
        );
        let s = list_schedule(&realized, &ResourceSet::unlimited(), None).unwrap();
        for &(src, dst) in &emb.edges {
            assert_eq!(s.executes_before(src, dst), Some(true));
        }
    }

    #[test]
    fn serial_and_parallel_embeddings_are_identical() {
        use localwm_cdfg::designs::{table2_design, table2_designs};
        let t2 = table2_designs();
        let designs: Vec<(&str, Cdfg)> = vec![
            ("iir4", iir4_parallel()),
            (t2[1].name, table2_design(&t2[1])), // Linear GE: widest Table II
            (t2[3].name, table2_design(&t2[3])), // Modem
            ("mediabench0", mediabench(&mediabench_apps()[0], 0)),
        ];
        let mut embedded = 0usize;
        for (name, g) in designs {
            let wm = SchedulingWatermarker::new(SchedWmConfig {
                epsilon: 0.0,
                slack_factor: 2.0,
                ..SchedWmConfig::default()
            });
            let s = sig("par-embed");
            let ctx = DesignContext::from(&g);
            let serial = wm.embed_in(&ctx, &s, Parallelism::Serial);
            for par in [Parallelism::Threads(3), Parallelism::Auto] {
                let p = wm.embed_in(&ctx, &s, par);
                match (&serial, &p) {
                    (Ok(se), Ok(pe)) => {
                        assert_eq!(se.edges, pe.edges, "{name}: edges differ under {par:?}");
                        assert_eq!(
                            se.schedule, pe.schedule,
                            "{name}: schedule differs under {par:?}"
                        );
                        let es = wm
                            .detect_in(&se.schedule, &ctx, &s, Parallelism::Serial)
                            .unwrap();
                        let ep = wm.detect_in(&pe.schedule, &ctx, &s, par).unwrap();
                        assert_eq!(
                            es.checks, ep.checks,
                            "{name}: evidence differs under {par:?}"
                        );
                        assert_eq!(es.chances, ep.chances);
                    }
                    // Table II designs are nearly serial accumulation
                    // chains: the scheduling watermark legitimately finds
                    // no incomparable slack pairs there (the paper marks
                    // them with the *template* watermark instead). The
                    // parallel path must still fail identically.
                    (Err(se), Err(pe)) => assert_eq!(
                        format!("{se:?}"),
                        format!("{pe:?}"),
                        "{name}: error differs under {par:?}"
                    ),
                    _ => panic!("{name}: serial and {par:?} disagree on embeddability"),
                }
            }
            embedded += usize::from(serial.is_ok());
        }
        assert!(embedded >= 2, "iir4 and mediabench must embed");
    }

    #[test]
    fn serial_designs_report_no_incomparable_pairs() {
        use localwm_cdfg::designs::{table2_design, table2_designs};
        // Table II designs are nearly serial accumulation chains: eligible
        // slack-rich nodes exist, but every candidate pair is comparable, so
        // the failure must be the typed NoIncomparablePairs diagnostic
        // rather than a generic TooFewEdges.
        let t2 = table2_designs();
        let g = table2_design(&t2[1]); // Linear GE: widest Table II design
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            epsilon: 0.0,
            slack_factor: 2.0,
            ..SchedWmConfig::default()
        });
        let err = wm.embed(&g, &sig("serial")).unwrap_err();
        match err {
            WatermarkError::NoIncomparablePairs {
                domain_size,
                pairs_examined,
            } => {
                assert!(domain_size >= 2, "eligible nodes were found");
                assert!(pairs_examined > 0, "pairs were actually examined");
            }
            other => panic!("expected NoIncomparablePairs, got {other:?}"),
        }
    }

    #[test]
    fn edges_connect_incomparable_slackful_nodes() {
        let g = mediabench(&mediabench_apps()[5], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig::default());
        let emb = wm.embed(&g, &sig("slack")).unwrap();
        for &(s, d) in &emb.edges {
            assert!(!g.reaches(s, d) && !g.reaches(d, s), "{s}->{d} comparable");
        }
    }
}
