//! Domain selection and identification (paper §IV-A).
//!
//! A watermark lives in a *locality*: a subtree `T` of the CDFG chosen by
//! the author's bitstream. Selection must be exactly reproducible at
//! detection time, which requires two ingredients:
//!
//! 1. **Unique identification** of every node in the candidate subtree
//!    `T_o`, by sorting with criteria C1 (level), C2 (fanin-cone size
//!    `K_i(x)`) and C3 (functionality sum `φ(n_i, x)`) for growing
//!    distances `x` — so the enumeration does not depend on internal node
//!    ids an adversary could permute.
//! 2. A **signature-driven breadth-first walk** of `T_o` that includes at
//!    least one input of every visited node and each remaining input with a
//!    bitstream-drawn coin, truncated at the desired cardinality `τ`.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;
use localwm_prng::Bitstream;

/// A selected watermark domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// The central (root) node `n_o`.
    pub root: NodeId,
    /// The full candidate fanin tree `T_o` (BFS order from the root).
    pub t_o: Vec<NodeId>,
    /// The selected subtree `T ⊆ T_o`, in selection order.
    pub t: Vec<NodeId>,
}

/// Orders the nodes of a candidate set uniquely using criteria C1–C3.
///
/// Two nodes compare by level first (C1, descending distance from the
/// root); ties consult the fanin-cone size `K_i(x)` (C2) and the
/// functionality sum `φ(n_i, x)` (C3) for increasing max-distance `x` until
/// resolved. If the criteria are exhausted without resolution (structurally
/// isomorphic cones), the node id breaks the tie — the paper assumes the
/// criteria always resolve, which holds for irregular graphs but not for
/// perfectly symmetric ones.
///
/// The returned vector is the canonical enumeration of the set: position is
/// the node's unique identifier.
pub fn order_nodes(g: &Cdfg, root: NodeId, set: &[NodeId], max_x: u32) -> Vec<NodeId> {
    order_nodes_in(&DesignContext::from(g), root, set, max_x)
}

/// [`order_nodes`] against a shared [`DesignContext`], reusing its memoized
/// level maps and fanin-cone statistics.
pub fn order_nodes_in(
    ctx: &DesignContext,
    root: NodeId,
    set: &[NodeId],
    max_x: u32,
) -> Vec<NodeId> {
    let levels = ctx.levels_from(root);
    let mut out = set.to_vec();
    out.sort_by(|&a, &b| {
        let la = levels[a.index()].unwrap_or(u32::MAX);
        let lb = levels[b.index()].unwrap_or(u32::MAX);
        la.cmp(&lb)
            .then_with(|| {
                for x in 1..=max_x {
                    let ka = ctx.fanin_count(a, x);
                    let kb = ctx.fanin_count(b, x);
                    if ka != kb {
                        return ka.cmp(&kb);
                    }
                    let pa = ctx.phi(a, x);
                    let pb = ctx.phi(b, x);
                    if pa != pb {
                        return pa.cmp(&pb);
                    }
                }
                std::cmp::Ordering::Equal
            })
            .then(a.cmp(&b))
    });
    out
}

/// Selects a domain rooted at `root`: builds the fanin tree `T_o` of
/// max-distance `tau`, orders it canonically, then walks it breadth-first
/// with the bitstream, keeping at least one input per visited node and each
/// further input with a coin flip, until `tau` nodes are selected.
///
/// The walk consumes draws from `bits` deterministically; embedding and
/// detection must pass bitstreams at identical positions.
pub fn select_domain(g: &Cdfg, root: NodeId, tau: usize, bits: &mut Bitstream) -> Domain {
    select_domain_in(&DesignContext::from(g), root, tau, bits)
}

/// [`select_domain`] against a shared [`DesignContext`], reusing its
/// memoized fanin cones and level maps.
pub fn select_domain_in(
    ctx: &DesignContext,
    root: NodeId,
    tau: usize,
    bits: &mut Bitstream,
) -> Domain {
    let g = ctx.graph();
    let t_o = ctx.fanin_cone(root, tau as u32).to_vec();
    let ordered = order_nodes_in(ctx, root, &t_o, 4);
    // Canonical position of each node for deterministic input ordering.
    let pos_of = |n: NodeId| ordered.iter().position(|&x| x == n).unwrap_or(usize::MAX);

    let mut selected: Vec<NodeId> = Vec::with_capacity(tau);
    let mut in_t = vec![false; g.node_count()];
    let mut queue: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
    selected.push(root);
    in_t[root.index()] = true;
    queue.push_back(root);

    while let Some(u) = queue.pop_front() {
        if selected.len() >= tau {
            break;
        }
        // Inputs of u inside T_o, canonically ordered.
        let mut inputs: Vec<NodeId> = g
            .preds(u)
            .filter(|p| t_o.contains(p) && !in_t[p.index()])
            .collect();
        inputs.sort_by_key(|&n| pos_of(n));
        inputs.dedup();
        if inputs.is_empty() {
            continue;
        }
        // At least one input is always included: the bitstream picks which;
        // each remaining input is excluded "with a given probability"
        // (paper §IV-A) — we use 1/4 so the walk keeps enough breadth to
        // reach the desired cardinality.
        let forced = *bits.choose(&inputs).expect("inputs non-empty");
        for n in inputs {
            let take = n == forced || bits.ratio(3, 4);
            if take && selected.len() < tau {
                selected.push(n);
                in_t[n.index()] = true;
                queue.push_back(n);
            }
        }
    }

    Domain {
        root,
        t_o,
        t: selected,
    }
}

/// Picks a pseudorandom root for the domain from a precomputed candidate
/// list (see [`root_candidates`]).
pub fn pick_root(candidates: &[NodeId], bits: &mut Bitstream) -> Option<NodeId> {
    bits.choose(candidates).copied()
}

/// Root candidates for a domain of cardinality `tau`: schedulable nodes
/// whose transitive fanin cone (within distance `tau`) holds at least
/// `min_cone` schedulable operations — a root with a smaller cone can never
/// yield a `τ`-sized subtree. If no node qualifies, the nodes with the
/// largest cones are returned so small designs still embed.
pub fn root_candidates(g: &Cdfg, tau: usize, min_cone: usize) -> Vec<NodeId> {
    root_candidates_in(&DesignContext::from(g), tau, min_cone)
}

/// [`root_candidates`] against a shared [`DesignContext`], reusing its
/// memoized fanin cones.
pub fn root_candidates_in(ctx: &DesignContext, tau: usize, min_cone: usize) -> Vec<NodeId> {
    let g = ctx.graph();
    let mut sized: Vec<(usize, NodeId)> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && g.preds(n).next().is_some())
        .map(|n| {
            let cone = ctx.fanin_cone(n, tau as u32);
            let ops = cone.iter().filter(|&&m| g.kind(m).is_schedulable()).count();
            (ops, n)
        })
        .collect();
    let qualifying: Vec<NodeId> = sized
        .iter()
        .filter(|&&(ops, _)| ops >= min_cone)
        .map(|&(_, n)| n)
        .collect();
    if !qualifying.is_empty() {
        return qualifying;
    }
    // Fallback: the deepest-coned quartile, deterministically ordered.
    sized.sort_by_key(|&(ops, n)| (std::cmp::Reverse(ops), n));
    let keep = (sized.len() / 4).max(1).min(sized.len());
    let mut out: Vec<NodeId> = sized[..keep].iter().map(|&(_, n)| n).collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::analysis::fanin_within;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::OpKind;
    use localwm_prng::Signature;

    fn sig() -> Signature {
        Signature::from_author("domain-tests")
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        let t_o = fanin_within(&g, a9, 6);
        let o1 = order_nodes(&g, a9, &t_o, 4);
        let o2 = order_nodes(&g, a9, &t_o, 4);
        assert_eq!(o1, o2);
        assert_eq!(o1.len(), t_o.len());
        // The root has level 0: must come first.
        assert_eq!(o1[0], a9);
    }

    #[test]
    fn ordering_distinguishes_structurally_different_nodes() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        let a4 = g.node_by_name("A4").unwrap(); // deep add
        let c4 = g.node_by_name("C4").unwrap(); // shallow cmul
        let t_o = fanin_within(&g, a9, 6);
        let ordered = order_nodes(&g, a9, &t_o, 4);
        let pos = |n| ordered.iter().position(|&x| x == n).unwrap();
        // A4 is one edge from A9 (level 1); C4 two (level 2).
        assert!(pos(a4) < pos(c4));
    }

    #[test]
    fn domain_selection_is_reproducible() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        let mut b1 = Bitstream::for_purpose(&sig(), "walk");
        let mut b2 = Bitstream::for_purpose(&sig(), "walk");
        let d1 = select_domain(&g, a9, 8, &mut b1);
        let d2 = select_domain(&g, a9, 8, &mut b2);
        assert_eq!(d1, d2);
        assert!(d1.t.len() <= 8);
        assert_eq!(d1.t[0], a9);
    }

    #[test]
    fn different_signatures_select_different_subtrees() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        let mut diffs = 0;
        for i in 0..8 {
            let s1 = Signature::from_author(&format!("author-a-{i}"));
            let s2 = Signature::from_author(&format!("author-b-{i}"));
            let d1 = select_domain(&g, a9, 10, &mut Bitstream::for_purpose(&s1, "walk"));
            let d2 = select_domain(&g, a9, 10, &mut Bitstream::for_purpose(&s2, "walk"));
            if d1.t != d2.t {
                diffs += 1;
            }
        }
        assert!(diffs >= 4, "only {diffs}/8 signature pairs diverged");
    }

    #[test]
    fn selection_respects_tau() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        for tau in [1usize, 3, 5, 12] {
            let mut bits = Bitstream::for_purpose(&sig(), "tau");
            let d = select_domain(&g, a9, tau, &mut bits);
            assert!(d.t.len() <= tau, "tau={tau} got {}", d.t.len());
        }
    }

    #[test]
    fn selected_nodes_form_a_connected_fanin_region() {
        let g = iir4_parallel();
        let a9 = g.node_by_name("A9").unwrap();
        let mut bits = Bitstream::for_purpose(&sig(), "conn");
        let d = select_domain(&g, a9, 10, &mut bits);
        // Every non-root selected node has a successor in the selection
        // (it was reached as an input of a selected node).
        for &n in &d.t[1..] {
            assert!(
                g.succs(n).any(|s| d.t.contains(&s)),
                "{n} is disconnected from the domain"
            );
        }
    }

    #[test]
    fn pick_root_skips_sources() {
        let g = iir4_parallel();
        let candidates = root_candidates(&g, 8, 4);
        let mut bits = Bitstream::for_purpose(&sig(), "root");
        for _ in 0..32 {
            let r = pick_root(&candidates, &mut bits).unwrap();
            assert!(g.kind(r).is_schedulable());
            assert!(g.kind(r) != OpKind::Input);
        }
    }

    #[test]
    fn root_candidates_prefer_large_cones() {
        let g = iir4_parallel();
        // tau 8, min cone 6: only deep adds qualify.
        let candidates = root_candidates(&g, 8, 6);
        let a9 = g.node_by_name("A9").unwrap();
        assert!(candidates.contains(&a9));
        let c1 = g.node_by_name("C1").unwrap();
        assert!(!candidates.contains(&c1), "C1's cone is a single input");
    }

    #[test]
    fn root_candidates_fall_back_on_tiny_designs() {
        let g = iir4_parallel();
        // Impossible requirement: falls back to the largest cones.
        let candidates = root_candidates(&g, 10, 10_000);
        assert!(!candidates.is_empty());
    }
}
