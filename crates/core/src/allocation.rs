//! Module allocation: the HLS back-end step that turns a covering into a
//! *module count*.
//!
//! The paper's Table II metric is "the count of used modules to cover the
//! entire design" for a given number of available control steps — the
//! number of hardware units after **allocation**, where units are
//! time-shared across control steps. Two effects matter:
//!
//! * more control steps ⇒ more time-sharing ⇒ fewer units;
//! * a specialized module can execute any computation whose operation
//!   multiset its own template covers (a `cmac2` unit — add·add·cmul — can
//!   serve a plain add, a `cmac`, or an `add2` in a pinch), so fragmented
//!   pieces left behind by watermark PPOs are *absorbed* by idle capacity
//!   when the schedule has slack, and cost extra units when it does not.
//!
//! Pipeline: [`condense`] contracts a covering into a macro-operation DAG;
//! [`min_units`] grows a per-type unit vector from zero until a
//! compatibility-aware list schedule meets the deadline;
//! [`allocated_modules`] sums it.

use std::collections::HashMap;

use localwm_cdfg::{Cdfg, OpKind};
use localwm_tmatch::{Covering, Library};

/// A macro-operation type: a name plus the sorted multiset of operation
/// kinds its hardware module implements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MacroType {
    /// Template name or `1op:<mnemonic>`.
    pub name: String,
    /// Sorted operation-kind multiset of the module.
    pub kinds: Vec<OpKind>,
}

impl MacroType {
    /// Whether a unit of `self` can execute a piece of type `piece`
    /// (the piece's kind multiset is contained in this module's).
    pub fn hosts(&self, piece: &MacroType) -> bool {
        let mut pool = self.kinds.clone();
        piece.kinds.iter().all(|k| {
            if let Some(pos) = pool.iter().position(|p| p == k) {
                pool.swap_remove(pos);
                true
            } else {
                false
            }
        })
    }
}

/// A condensed (macro-operation) dependence DAG.
#[derive(Debug, Clone)]
pub struct MacroDag {
    /// Per-macro type index into `type_table`.
    pub types: Vec<usize>,
    /// The distinct macro types.
    pub type_table: Vec<MacroType>,
    /// Dependence edges between macros.
    pub edges: Vec<(usize, usize)>,
}

impl MacroDag {
    /// Number of macro-operations.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the DAG is empty.
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    /// Number of distinct types in use.
    pub fn type_count(&self) -> usize {
        self.type_table.len()
    }

    /// Critical path of the macro DAG, in steps (every macro takes one).
    pub fn critical_path(&self) -> u32 {
        let n = self.len();
        let mut indeg = vec![0usize; n];
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            out[a].push(b);
            indeg[b] += 1;
        }
        let mut depth = vec![1u32; n];
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut best = if n == 0 { 0 } else { 1 };
        while let Some(u) = stack.pop() {
            for &v in &out[u] {
                depth[v] = depth[v].max(depth[u] + 1);
                best = best.max(depth[v]);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    stack.push(v);
                }
            }
        }
        best
    }
}

/// Contracts a covering into a [`MacroDag`].
///
/// Selected matchings become one macro each, typed by their template;
/// uncovered operations become singleton macros typed `1op:<kind>`.
/// Original edges whose endpoints land in different macros become macro
/// dependences (duplicates dropped; free nodes vanish).
pub fn condense(g: &Cdfg, covering: &Covering, lib: &Library) -> MacroDag {
    let mut macro_of: Vec<Option<usize>> = vec![None; g.node_count()];
    let mut types: Vec<usize> = Vec::new();
    let mut table: Vec<MacroType> = Vec::new();
    let mut ids: HashMap<String, usize> = HashMap::new();
    let mut intern = |ty: MacroType, table: &mut Vec<MacroType>| -> usize {
        *ids.entry(ty.name.clone()).or_insert_with(|| {
            table.push(ty);
            table.len() - 1
        })
    };

    for m in &covering.selected {
        let t = lib.template(m.template);
        let mut kinds: Vec<OpKind> = (0..t.len()).map(|p| t.kind(p)).collect();
        kinds.sort_unstable();
        let ty = intern(
            MacroType {
                name: t.name().to_owned(),
                kinds,
            },
            &mut table,
        );
        let idx = types.len();
        types.push(ty);
        for &n in &m.nodes {
            macro_of[n.index()] = Some(idx);
        }
    }
    for &n in &covering.singletons {
        let kind = g.kind(n);
        let ty = intern(
            MacroType {
                name: format!("1op:{kind}"),
                kinds: vec![kind],
            },
            &mut table,
        );
        let idx = types.len();
        types.push(ty);
        macro_of[n.index()] = Some(idx);
    }

    let mut edges: Vec<(usize, usize)> = Vec::new();
    for e in g.edges() {
        let (Some(a), Some(b)) = (macro_of[e.src().index()], macro_of[e.dst().index()]) else {
            continue;
        };
        if a != b {
            edges.push((a, b));
        }
    }
    edges.sort_unstable();
    edges.dedup();
    MacroDag {
        types,
        type_table: table,
        edges,
    }
}

/// How pieces may be assigned to units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AllocationPolicy {
    /// Every piece needs a unit of exactly its type — HYPER-style
    /// fixed-function modules (the default, and what Table II models).
    #[default]
    FixedFunction,
    /// A piece may also execute on any idle unit whose operation multiset
    /// covers it (superset-functionality sharing).
    Hosting,
}

/// Finds a small per-type unit vector meeting the deadline.
///
/// Units start at zero; a list schedule honouring the [`AllocationPolicy`]
/// is attempted and, on overrun, the type of the most-stalled pieces gains
/// one unit. Monotone, deterministic, and guaranteed to terminate (one
/// unit per piece is always feasible when the deadline covers the macro
/// critical path).
///
/// Returns `None` if the deadline is below the macro critical path.
pub fn min_units(dag: &MacroDag, steps: u32, policy: AllocationPolicy) -> Option<Vec<usize>> {
    if dag.is_empty() {
        return Some(Vec::new());
    }
    if dag.critical_path() > steps {
        return None;
    }
    // hosts[piece_type] = unit types that can execute it, own type first.
    let tcount = dag.type_count();
    let hosts: Vec<Vec<usize>> = (0..tcount)
        .map(|p| {
            let mut h = vec![p];
            if policy == AllocationPolicy::Hosting {
                for u in 0..tcount {
                    if u != p && dag.type_table[u].hosts(&dag.type_table[p]) {
                        h.push(u);
                    }
                }
            }
            h
        })
        .collect();

    let mut units = vec![0usize; tcount];
    loop {
        match schedule_len(dag, &units, &hosts, steps) {
            Ok(_) => return Some(units),
            Err(bottleneck) => units[bottleneck] += 1,
        }
    }
}

/// Compatibility-aware list schedule under per-type unit limits.
///
/// `Ok(len)` when the DAG fits in `deadline`; `Err(bottleneck)` with the
/// piece type that stalled most otherwise.
fn schedule_len(
    dag: &MacroDag,
    units: &[usize],
    hosts: &[Vec<usize>],
    deadline: u32,
) -> Result<u32, usize> {
    let n = dag.len();
    let mut indeg = vec![0usize; n];
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in &dag.edges {
        out[a].push(b);
        indeg[b] += 1;
    }
    // Tail-length priority via reverse topological relaxation.
    let mut tail = vec![1u32; n];
    {
        let mut indeg2 = vec![0usize; n];
        for &(_, b) in &dag.edges {
            indeg2[b] += 1;
        }
        let mut order = Vec::with_capacity(n);
        let mut stack: Vec<usize> = (0..n).filter(|&i| indeg2[i] == 0).collect();
        while let Some(u) = stack.pop() {
            order.push(u);
            for &v in &out[u] {
                indeg2[v] -= 1;
                if indeg2[v] == 0 {
                    stack.push(v);
                }
            }
        }
        for &u in order.iter().rev() {
            for &v in &out[u] {
                tail[u] = tail[u].max(tail[v] + 1);
            }
        }
    }

    let mut earliest = vec![1u32; n];
    let mut ready: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut remaining = n;
    let mut step = 0u32;
    let mut stalls = vec![0u64; units.len()];
    while remaining > 0 {
        step += 1;
        let mut cands: Vec<usize> = ready
            .iter()
            .copied()
            .filter(|&i| earliest[i] <= step)
            .collect();
        cands.sort_by_key(|&i| (std::cmp::Reverse(tail[i]), i));
        let mut used = vec![0usize; units.len()];
        let mut placed = Vec::new();
        for i in cands {
            let t = dag.types[i];
            let slot = hosts[t].iter().copied().find(|&h| used[h] < units[h]);
            match slot {
                Some(h) => {
                    used[h] += 1;
                    placed.push(i);
                }
                None => stalls[t] += 1,
            }
        }
        for i in placed {
            ready.retain(|&r| r != i);
            remaining -= 1;
            for &v in &out[i] {
                earliest[v] = earliest[v].max(step + 1);
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    ready.push(v);
                }
            }
        }
        if step > deadline && remaining > 0 {
            return Err(most_stalled(&stalls));
        }
        if step > deadline.saturating_add(dag.len() as u32) {
            // Units all zero for some reachable type: guarantee progress.
            return Err(most_stalled(&stalls));
        }
    }
    if step <= deadline {
        Ok(step)
    } else {
        Err(most_stalled(&stalls))
    }
}

fn most_stalled(stalls: &[u64]) -> usize {
    stalls
        .iter()
        .enumerate()
        .max_by_key(|&(i, &s)| (s, std::cmp::Reverse(i)))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Total modules allocated for a covering at a deadline.
///
/// Returns `None` if the deadline is infeasible for the condensed DAG.
pub fn allocated_modules(
    g: &Cdfg,
    covering: &Covering,
    lib: &Library,
    steps: u32,
    policy: AllocationPolicy,
) -> Option<usize> {
    let dag = condense(g, covering, lib);
    min_units(&dag, steps, policy).map(|u| u.iter().sum())
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_tmatch::{cover, CoverConstraints};

    fn iir_cover() -> (Cdfg, Covering, Library) {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        (g, c, lib)
    }

    #[test]
    fn hosting_is_multiset_containment() {
        let add = MacroType {
            name: "1op:add".into(),
            kinds: vec![OpKind::Add],
        };
        let cmac2 = MacroType {
            name: "cmac2".into(),
            kinds: vec![OpKind::Add, OpKind::Add, OpKind::ConstMul],
        };
        let mac = MacroType {
            name: "mac".into(),
            kinds: vec![OpKind::Add, OpKind::Mul],
        };
        assert!(cmac2.hosts(&add));
        assert!(!add.hosts(&cmac2));
        assert!(mac.hosts(&add));
        assert!(!cmac2.hosts(&mac), "no Mul in a cmac2");
        assert!(cmac2.hosts(&cmac2));
    }

    #[test]
    fn condense_preserves_piece_accounting() {
        let (g, c, lib) = iir_cover();
        let dag = condense(&g, &c, &lib);
        assert_eq!(dag.len(), c.selected.len() + c.singletons.len());
        assert!(dag.critical_path() <= localwm_timing::UnitTiming::new(&g).critical_path());
    }

    #[test]
    fn more_steps_never_needs_more_units() {
        let (g, c, lib) = iir_cover();
        let dag = condense(&g, &c, &lib);
        let cp = dag.critical_path();
        let tight: usize = min_units(&dag, cp, AllocationPolicy::FixedFunction)
            .unwrap()
            .iter()
            .sum();
        let relaxed: usize = min_units(&dag, 4 * cp, AllocationPolicy::FixedFunction)
            .unwrap()
            .iter()
            .sum();
        assert!(relaxed <= tight, "relaxed {relaxed} > tight {tight}");
        assert!(relaxed >= 1);
    }

    #[test]
    fn compatibility_absorbs_singletons() {
        // One cmac2 piece plus an independent singleton add, two steps:
        // the add runs on the idle cmac2 unit; one module total.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let t = g.add_node(OpKind::ConstMul);
        let a1 = g.add_node(OpKind::Add);
        let a2 = g.add_node(OpKind::Add);
        let lone = g.add_node(OpKind::Add);
        let o1 = g.add_node(OpKind::Output);
        let o2 = g.add_node(OpKind::Output);
        g.add_data_edge(x, t).unwrap();
        g.add_data_edge(t, a1).unwrap();
        g.add_data_edge(x, a1).unwrap();
        g.add_data_edge(a1, a2).unwrap();
        g.add_data_edge(x, a2).unwrap();
        g.add_data_edge(a2, o1).unwrap();
        g.add_data_edge(x, lone).unwrap();
        g.add_data_edge(x, lone).unwrap();
        g.add_data_edge(lone, o2).unwrap();
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        assert_eq!(c.selected.len(), 1, "cmac2 covers the tap");
        assert_eq!(c.singletons.len(), 1);
        let total = allocated_modules(&g, &c, &lib, 2, AllocationPolicy::Hosting).unwrap();
        assert_eq!(total, 1, "the lone add should ride the cmac2 unit");
        let strict = allocated_modules(&g, &c, &lib, 2, AllocationPolicy::FixedFunction).unwrap();
        assert_eq!(strict, 2, "fixed-function units cannot share");
    }

    #[test]
    fn infeasible_deadline_is_none() {
        let (g, c, lib) = iir_cover();
        let dag = condense(&g, &c, &lib);
        assert!(dag.critical_path() > 1);
        assert_eq!(min_units(&dag, 1, AllocationPolicy::FixedFunction), None);
    }

    #[test]
    fn allocation_meets_its_own_deadline() {
        let (g, c, lib) = iir_cover();
        let dag = condense(&g, &c, &lib);
        let tcount = dag.type_count();
        let hosts: Vec<Vec<usize>> = (0..tcount)
            .map(|p| {
                let mut h = vec![p];
                for u in 0..tcount {
                    if u != p && dag.type_table[u].hosts(&dag.type_table[p]) {
                        h.push(u);
                    }
                }
                h
            })
            .collect();
        for steps in [dag.critical_path(), dag.critical_path() + 3] {
            let units = min_units(&dag, steps, AllocationPolicy::Hosting).unwrap();
            assert!(matches!(
                schedule_len(&dag, &units, &hosts, steps),
                Ok(l) if l <= steps
            ));
        }
    }

    #[test]
    fn empty_graph_allocates_nothing() {
        let g = Cdfg::new();
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        assert_eq!(
            allocated_modules(&g, &c, &lib, 4, AllocationPolicy::FixedFunction),
            Some(0)
        );
    }
}
