//! The template-matching watermark (paper §IV-B, Fig. 5).

use std::collections::{HashMap, HashSet};

use localwm_cdfg::{Cdfg, NodeId, OpKind};
use localwm_engine::DesignContext;
use localwm_prng::{Bitstream, Signature};
use localwm_sched::{Schedule, Windows};
use localwm_tmatch::{cover, find_matches, CoverConstraints, Covering, Library, Match};

use crate::WatermarkError;

/// Configuration of the template-matching watermark.
#[derive(Debug, Clone)]
pub struct TmatchWmConfig {
    /// The module library (shared with the mapping tool).
    pub library: Library,
    /// Number of matchings to enforce, `Z` (0 = auto: `0.07 · |T|`, the
    /// paper's Table II setting).
    pub z: usize,
    /// `Z` as a fraction of the domain size; overrides `z` when set.
    pub z_fraction: Option<f64>,
    /// Laxity margin `ε ∈ [0, 1)`: nodes on paths longer than
    /// `(1 − ε) ·` available steps are excluded from the domain, keeping
    /// enforced matchings off (near-)critical paths.
    pub epsilon: f64,
    /// Available control steps (0 = tight: the critical path).
    pub available_steps: u32,
}

impl Default for TmatchWmConfig {
    fn default() -> Self {
        TmatchWmConfig {
            library: Library::dsp_default(),
            z: 0,
            z_fraction: None,
            epsilon: 0.1,
            available_steps: 0,
        }
    }
}

impl TmatchWmConfig {
    fn validate(&self) -> Result<(), WatermarkError> {
        if !(0.0..1.0).contains(&self.epsilon) {
            return Err(WatermarkError::InvalidConfig(format!(
                "epsilon must be in [0, 1), got {}",
                self.epsilon
            )));
        }
        if let Some(f) = self.z_fraction {
            if !(0.0..=1.0).contains(&f) {
                return Err(WatermarkError::InvalidConfig(format!(
                    "z_fraction must be in [0, 1], got {f}"
                )));
            }
        }
        if self.library.is_empty() {
            return Err(WatermarkError::InvalidConfig(
                "library must not be empty".to_owned(),
            ));
        }
        Ok(())
    }

    fn resolve_z(&self, domain_size: usize) -> usize {
        match self.z_fraction {
            Some(f) => ((f * domain_size as f64).round() as usize).max(1),
            None if self.z > 0 => self.z,
            None => ((0.07 * domain_size as f64).round() as usize).max(1),
        }
    }
}

/// The result of embedding a template-matching watermark.
#[derive(Debug, Clone)]
pub struct TmatchEmbedding {
    /// The enforced matchings, in enforcement order.
    pub forced: Vec<Match>,
    /// Variables promoted to pseudo-primary outputs.
    pub ppos: Vec<NodeId>,
    /// The covering the constrained mapping tool produced.
    pub covering: Covering,
    /// Control steps used for laxity filtering.
    pub available_steps: u32,
}

/// Evidence from a template-matching detection pass.
#[derive(Debug, Clone)]
pub struct TmatchEvidence {
    /// Per enforced matching: present in the suspected covering?
    pub checks: Vec<(Match, bool)>,
    /// Per enforced matching: the chance an unconstrained covering picks
    /// it anyway (`1 / Solutions(m)`).
    pub chances: Vec<f64>,
    /// `log₁₀ P_c ≈ -Σ log₁₀ Solutions(m_i)`.
    pub log10_pc: f64,
}

impl TmatchEvidence {
    /// Whether every enforced matching is present (and at least one was
    /// checked).
    pub fn is_match(&self) -> bool {
        !self.checks.is_empty() && self.checks.iter().all(|(_, ok)| *ok)
    }

    /// Fraction of enforced matchings present.
    pub fn satisfied_fraction(&self) -> f64 {
        if self.checks.is_empty() {
            return 0.0;
        }
        self.checks.iter().filter(|(_, ok)| *ok).count() as f64 / self.checks.len() as f64
    }

    /// Probability an unconstrained covering shows at least this many of
    /// the enforced matchings by chance (Poisson-binomial tail over the
    /// per-matching chances).
    pub fn chance_probability(&self) -> f64 {
        let present = self.checks.iter().filter(|(_, ok)| *ok).count();
        crate::pc::poisson_binomial_tail(&self.chances, present)
    }

    /// Tolerant verdict at significance `max_chance` (see
    /// [`crate::SchedEvidence::is_match_with_tolerance`]).
    pub fn is_match_with_tolerance(&self, max_chance: f64) -> bool {
        !self.checks.is_empty() && self.chance_probability() <= max_chance
    }
}

/// Embeds and detects template-matching watermarks.
#[derive(Debug, Clone)]
pub struct TemplateWatermarker {
    config: TmatchWmConfig,
}

impl TemplateWatermarker {
    /// Creates a watermarker with the given configuration.
    pub fn new(config: TmatchWmConfig) -> Self {
        TemplateWatermarker { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TmatchWmConfig {
        &self.config
    }

    fn steps_for_in(&self, ctx: &DesignContext) -> u32 {
        if self.config.available_steps > 0 {
            self.config.available_steps
        } else {
            ctx.unit_timing().critical_path()
        }
    }

    /// Derives the signature's forced matchings and PPO set — the Fig. 5
    /// constraint-encoding loop. Deterministic in `(g, signature, config)`.
    fn derive_in(
        &self,
        ctx: &DesignContext,
        signature: &Signature,
    ) -> Result<(Vec<Match>, Vec<NodeId>, u32), WatermarkError> {
        self.config.validate()?;
        let g = ctx.graph();
        let steps = self.steps_for_in(ctx);
        let windows = Windows::in_ctx(ctx, steps)?;
        let laxity_cap = f64::from(steps) * (1.0 - self.config.epsilon);
        let domain: Vec<NodeId> = g
            .node_ids()
            .filter(|&n| g.kind(n).is_schedulable())
            .collect();
        let z = self.config.resolve_z(domain.len());

        let mut bits = Bitstream::for_purpose(signature, "tmatch-wm");
        let mut processed: HashSet<NodeId> = HashSet::new();
        let mut ppos: Vec<NodeId> = Vec::new();
        let mut forced: Vec<Match> = Vec::new();

        let all_matches = find_matches(g, &self.config.library);
        for _ in 0..z {
            let eligible: Vec<&Match> = all_matches
                .iter()
                .filter(|m| m.nodes.len() >= 2)
                .filter(|m| {
                    m.nodes.iter().all(|&n| {
                        !processed.contains(&n) && f64::from(windows.laxity(n)) <= laxity_cap
                    })
                })
                .filter(|m| m.internal_nodes().iter().all(|n| !ppos.contains(n)))
                .collect();
            if eligible.is_empty() {
                break;
            }
            let chosen = eligible[bits.range(eligible.len())].clone();
            // Promote the module's boundary variables to PPOs: the output
            // (root) and every non-primary input producer.
            let in_match: HashSet<NodeId> = chosen.nodes.iter().copied().collect();
            let mut new_ppos: Vec<NodeId> = vec![chosen.root()];
            for &n in &chosen.nodes {
                for p in g.data_preds(n) {
                    if !in_match.contains(&p) && !g.kind(p).is_source() {
                        new_ppos.push(p);
                    }
                }
            }
            new_ppos.sort_unstable();
            new_ppos.dedup();
            for p in new_ppos {
                if !ppos.contains(&p) {
                    ppos.push(p);
                }
            }
            processed.extend(chosen.nodes.iter().copied());
            forced.push(chosen);
        }

        ctx.probe()
            .counter("core.tmatch_wm.forced", forced.len() as u64);
        if forced.len() < z {
            return Err(WatermarkError::TooFewMatchings {
                enforced: forced.len(),
                requested: z,
            });
        }
        Ok((forced, ppos, steps))
    }

    /// Embeds the watermark: derives the forced matchings and runs the
    /// covering tool under them.
    ///
    /// # Errors
    ///
    /// [`WatermarkError::TooFewMatchings`] if the design cannot host `Z`
    /// enforced matchings, plus configuration errors.
    pub fn embed(
        &self,
        g: &Cdfg,
        signature: &Signature,
    ) -> Result<TmatchEmbedding, WatermarkError> {
        self.embed_in(&DesignContext::from(g), signature)
    }

    /// [`TemplateWatermarker::embed`] against a shared [`DesignContext`],
    /// reusing its memoized timing analyses.
    ///
    /// # Errors
    ///
    /// Same as [`TemplateWatermarker::embed`].
    pub fn embed_in(
        &self,
        ctx: &DesignContext,
        signature: &Signature,
    ) -> Result<TmatchEmbedding, WatermarkError> {
        let g = ctx.graph();
        let (forced, ppos, steps) = self.derive_in(ctx, signature)?;
        let covering = cover(
            g,
            &self.config.library,
            &CoverConstraints {
                ppos: ppos.clone(),
                forced: forced.clone(),
            },
        );
        Ok(TmatchEmbedding {
            forced,
            ppos,
            covering,
            available_steps: steps,
        })
    }

    /// Detects the watermark in a suspected covering: re-derives the
    /// forced matchings and checks each one is present.
    ///
    /// # Errors
    ///
    /// Same derivation errors as [`TemplateWatermarker::embed`].
    pub fn detect(
        &self,
        covering: &Covering,
        g: &Cdfg,
        signature: &Signature,
    ) -> Result<TmatchEvidence, WatermarkError> {
        self.detect_in(covering, &DesignContext::from(g), signature)
    }

    /// [`TemplateWatermarker::detect`] against a shared [`DesignContext`].
    ///
    /// # Errors
    ///
    /// Same as [`TemplateWatermarker::detect`].
    pub fn detect_in(
        &self,
        covering: &Covering,
        ctx: &DesignContext,
        signature: &Signature,
    ) -> Result<TmatchEvidence, WatermarkError> {
        let g = ctx.graph();
        let (forced, _, _) = self.derive_in(ctx, signature)?;
        let checks: Vec<(Match, bool)> = forced
            .into_iter()
            .map(|m| {
                let present = covering.selected.contains(&m);
                (m, present)
            })
            .collect();
        let chances: Vec<f64> = checks
            .iter()
            .map(|(m, _)| {
                let ways = localwm_tmatch::count_cover_solutions(g, &self.config.library, m);
                1.0 / ways.max(1) as f64
            })
            .collect();
        let log10_pc = chances.iter().map(|c| c.log10()).sum::<f64>();
        Ok(TmatchEvidence {
            checks,
            chances,
            log10_pc,
        })
    }
}

/// Allocates module instances for a covering under a schedule: a module is
/// busy from the first to the last control step of its operations, and two
/// instances of the same type are needed wherever two busy intervals
/// overlap. Singleton operations allocate single-op modules keyed by their
/// operation kind.
///
/// This is the Table II quality metric: with twice the control steps the
/// scheduler spreads work out, peaks drop, and fewer instances are needed.
pub fn module_instances(g: &Cdfg, covering: &Covering, schedule: &Schedule) -> usize {
    #[derive(Hash, PartialEq, Eq)]
    enum TypeKey {
        Template(usize),
        Single(OpKind),
    }
    let mut intervals: HashMap<TypeKey, Vec<(u32, u32)>> = HashMap::new();
    for m in &covering.selected {
        let steps: Vec<u32> = m.nodes.iter().filter_map(|&n| schedule.step(n)).collect();
        if steps.is_empty() {
            continue;
        }
        let lo = *steps.iter().min().expect("non-empty");
        let hi = *steps.iter().max().expect("non-empty");
        intervals
            .entry(TypeKey::Template(m.template))
            .or_default()
            .push((lo, hi));
    }
    for &n in &covering.singletons {
        if let Some(s) = schedule.step(n) {
            intervals
                .entry(TypeKey::Single(g.kind(n)))
                .or_default()
                .push((s, s));
        }
    }
    intervals
        .values()
        .map(|ivs| {
            // Peak overlap via sweep.
            let mut events: Vec<(u32, i32)> = Vec::with_capacity(ivs.len() * 2);
            for &(lo, hi) in ivs {
                events.push((lo, 1));
                events.push((hi + 1, -1));
            }
            events.sort_unstable();
            let mut cur = 0i32;
            let mut peak = 0i32;
            for (_, d) in events {
                cur += d;
                peak = peak.max(cur);
            }
            peak as usize
        })
        .sum()
}

/// Measures the paper's Table II quality metric — "the percentage of
/// increase of the count of used modules to cover the entire design" —
/// covering the design with and without the watermark constraints and
/// **allocating** functional units for the available control steps (see
/// [`crate::allocation`]): module counts are post-allocation, so a larger
/// step budget lets time-sharing absorb the watermark's fragmentation.
///
/// Returns `(plain_modules, marked_modules, overhead_percent)`.
///
/// # Errors
///
/// Propagates embedding errors.
pub fn module_overhead(
    g: &Cdfg,
    wm: &TemplateWatermarker,
    signature: &Signature,
) -> Result<(usize, usize, f64), WatermarkError> {
    module_overhead_in(&DesignContext::from(g), wm, signature)
}

/// [`module_overhead`] against a shared [`DesignContext`].
///
/// # Errors
///
/// Propagates embedding errors.
pub fn module_overhead_in(
    ctx: &DesignContext,
    wm: &TemplateWatermarker,
    signature: &Signature,
) -> Result<(usize, usize, f64), WatermarkError> {
    let g = ctx.graph();
    let steps = wm.steps_for_in(ctx);
    let plain_cover = cover(g, &wm.config.library, &CoverConstraints::default());
    let policy = crate::allocation::AllocationPolicy::FixedFunction;
    let plain =
        crate::allocation::allocated_modules(g, &plain_cover, &wm.config.library, steps, policy)
            .expect("condensed critical path never exceeds the deadline");
    let emb = wm.embed_in(ctx, signature)?;
    let marked =
        crate::allocation::allocated_modules(g, &emb.covering, &wm.config.library, steps, policy)
            .expect("condensed critical path never exceeds the deadline");
    let overhead = if plain == 0 {
        0.0
    } else {
        100.0 * (marked as f64 - plain as f64) / plain as f64
    };
    Ok((plain, marked, overhead))
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::designs::{table2_design, table2_designs};
    use localwm_sched::force_directed_schedule;

    fn sig(name: &str) -> Signature {
        Signature::from_author(name)
    }

    fn relaxed_config(g: &Cdfg, z: usize) -> TmatchWmConfig {
        let cp = localwm_timing::UnitTiming::new(g).critical_path();
        TmatchWmConfig {
            z,
            available_steps: 2 * cp,
            ..TmatchWmConfig::default()
        }
    }

    #[test]
    fn embed_then_detect_round_trips() {
        let g = iir4_parallel();
        let wm = TemplateWatermarker::new(relaxed_config(&g, 2));
        let s = sig("tmatch-roundtrip");
        let emb = wm.embed(&g, &s).unwrap();
        assert_eq!(emb.forced.len(), 2);
        let ev = wm.detect(&emb.covering, &g, &s).unwrap();
        assert!(ev.is_match());
        assert!(ev.log10_pc < 0.0);
    }

    #[test]
    fn unconstrained_covering_misses_matchings() {
        let g = table2_design(&table2_designs()[1]); // Linear GE
        let wm = TemplateWatermarker::new(relaxed_config(&g, 4));
        let s = sig("tmatch-plain");
        let plain = cover(&g, &Library::dsp_default(), &CoverConstraints::default());
        let ev = wm.detect(&plain, &g, &s).unwrap();
        // The greedy cover may coincide on some matchings, but rarely all.
        assert!(ev.satisfied_fraction() < 1.0 || !ev.is_match());
    }

    #[test]
    fn forced_matchings_are_disjoint_and_off_critical_paths() {
        let g = table2_design(&table2_designs()[2]); // Wavelet
        let wm = TemplateWatermarker::new(relaxed_config(&g, 3));
        let emb = wm.embed(&g, &sig("disjoint")).unwrap();
        let mut seen = HashSet::new();
        let steps = emb.available_steps;
        let w = Windows::new(&g, steps).unwrap();
        let cap = f64::from(steps) * (1.0 - wm.config().epsilon);
        for m in &emb.forced {
            for &n in &m.nodes {
                assert!(seen.insert(n), "{n} enforced twice");
                assert!(f64::from(w.laxity(n)) <= cap, "{n} too critical");
            }
        }
    }

    #[test]
    fn ppos_are_module_boundaries() {
        let g = iir4_parallel();
        let wm = TemplateWatermarker::new(relaxed_config(&g, 2));
        let emb = wm.embed(&g, &sig("ppo")).unwrap();
        for m in &emb.forced {
            assert!(emb.ppos.contains(&m.root()), "module output must be PPO");
        }
    }

    #[test]
    fn different_signatures_enforce_different_matchings() {
        let g = table2_design(&table2_designs()[3]); // Modem
        let wm = TemplateWatermarker::new(relaxed_config(&g, 3));
        let a = wm.embed(&g, &sig("author-a")).unwrap();
        let b = wm.embed(&g, &sig("author-b")).unwrap();
        assert_ne!(a.forced, b.forced);
    }

    #[test]
    fn too_many_matchings_error() {
        let g = iir4_parallel();
        let wm = TemplateWatermarker::new(relaxed_config(&g, 50));
        assert!(matches!(
            wm.embed(&g, &sig("greedy")),
            Err(WatermarkError::TooFewMatchings { .. })
        ));
    }

    #[test]
    fn module_overhead_is_nonnegative_and_small() {
        let g = table2_design(&table2_designs()[1]);
        let wm = TemplateWatermarker::new(relaxed_config(&g, 2));
        let (plain, marked, pct) = module_overhead(&g, &wm, &sig("overhead")).unwrap();
        assert!(plain > 0);
        assert!(
            marked + 1 >= plain,
            "fragmentation should not reduce the unit count materially"
        );
        assert!(pct < 60.0, "overhead {pct}% implausibly high");
    }

    #[test]
    fn relaxed_steps_need_fewer_instances() {
        let g = table2_design(&table2_designs()[0]); // 8th order CF IIR
        let cp = localwm_timing::UnitTiming::new(&g).critical_path();
        let lib = Library::dsp_default();
        let covering = cover(&g, &lib, &CoverConstraints::default());
        let tight = module_instances(&g, &covering, &force_directed_schedule(&g, cp).unwrap());
        let relaxed =
            module_instances(&g, &covering, &force_directed_schedule(&g, 2 * cp).unwrap());
        assert!(relaxed <= tight, "slack must not raise instance count");
    }
}
