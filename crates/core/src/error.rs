//! Watermarking errors.

use std::fmt;

use localwm_cdfg::CdfgError;
use localwm_sched::ScheduleError;

/// Errors from watermark embedding or detection.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WatermarkError {
    /// No domain with enough eligible nodes could be found after the
    /// configured number of attempts. The design may be too small, too
    /// serial (no slack), or the config too demanding.
    NoDomain {
        /// Domain-selection attempts made.
        attempts: usize,
        /// Eligible candidates in the best attempt.
        best_candidates: usize,
        /// Candidates required (`τ'`).
        needed: usize,
    },
    /// Fewer than `K` temporal edges could be drawn in the selected domain.
    TooFewEdges {
        /// Edges drawn.
        drawn: usize,
        /// Edges requested (`K`).
        requested: usize,
    },
    /// Eligible (slack-rich) nodes were found, but every examined pair was
    /// comparable or non-overlapping, so not a single temporal edge could
    /// be drawn. This is the signature failure mode of nearly-serial
    /// accumulation chains (the paper's Table II designs), which the paper
    /// marks with the *template* watermark instead.
    NoIncomparablePairs {
        /// Eligible nodes in the largest locality examined.
        domain_size: usize,
        /// Candidate (source, destination) pairs examined across every
        /// locality before giving up.
        pairs_examined: usize,
    },
    /// Fewer than `Z` matchings could be enforced.
    TooFewMatchings {
        /// Matchings enforced.
        enforced: usize,
        /// Matchings requested (`Z`).
        requested: usize,
    },
    /// A graph operation failed.
    Graph(CdfgError),
    /// Scheduling failed.
    Schedule(ScheduleError),
    /// The configuration is invalid (e.g. `epsilon` outside `[0, 1)`).
    InvalidConfig(String),
}

impl fmt::Display for WatermarkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WatermarkError::NoDomain {
                attempts,
                best_candidates,
                needed,
            } => write!(
                f,
                "no suitable watermark domain after {attempts} attempt(s): \
                 best had {best_candidates} eligible node(s), {needed} needed"
            ),
            WatermarkError::TooFewEdges { drawn, requested } => {
                write!(f, "only {drawn} of {requested} temporal edge(s) drawable")
            }
            WatermarkError::NoIncomparablePairs {
                domain_size,
                pairs_examined,
            } => write!(
                f,
                "no incomparable slack pairs: {pairs_examined} candidate pair(s) \
                 across localities of up to {domain_size} eligible node(s) were \
                 all comparable or non-overlapping; the design is too serial for \
                 the scheduling watermark (try the template watermark)"
            ),
            WatermarkError::TooFewMatchings {
                enforced,
                requested,
            } => write!(f, "only {enforced} of {requested} matching(s) enforceable"),
            WatermarkError::Graph(e) => write!(f, "graph error: {e}"),
            WatermarkError::Schedule(e) => write!(f, "scheduling error: {e}"),
            WatermarkError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for WatermarkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WatermarkError::Graph(e) => Some(e),
            WatermarkError::Schedule(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdfgError> for WatermarkError {
    fn from(e: CdfgError) -> Self {
        WatermarkError::Graph(e)
    }
}

impl From<ScheduleError> for WatermarkError {
    fn from(e: ScheduleError) -> Self {
        WatermarkError::Schedule(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WatermarkError::NoDomain {
            attempts: 3,
            best_candidates: 1,
            needed: 5,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('1') && s.contains('5'));
    }

    #[test]
    fn conversions_wrap() {
        let ge: WatermarkError = CdfgError::Cyclic.into();
        assert!(matches!(ge, WatermarkError::Graph(_)));
        let se: WatermarkError = ScheduleError::InfeasibleDeadline {
            requested: 1,
            needed: 2,
        }
        .into();
        assert!(matches!(se, WatermarkError::Schedule(_)));
    }
}
