//! Fingerprinting: per-recipient watermarks for leak tracing.
//!
//! Watermarking proves *authorship*; fingerprinting additionally proves
//! *which licensee* leaked a design. Each recipient gets a copy synthesized
//! under a signature derived from the author's signature and the
//! recipient's identity; when a misappropriated solution surfaces, the
//! author re-derives every recipient's constraints and identifies the copy
//! (cf. Lach et al., "Fingerprinting digital circuits on programmable
//! hardware", cited by the paper).

use localwm_cdfg::Cdfg;
use localwm_prng::Signature;
use localwm_sched::Schedule;

use crate::{SchedEmbedding, SchedEvidence, SchedulingWatermarker, WatermarkError};

/// One recipient's fingerprinted copy.
#[derive(Debug, Clone)]
pub struct RecipientCopy {
    /// The recipient's identity label.
    pub recipient: String,
    /// The embedding produced for this recipient.
    pub embedding: SchedEmbedding,
}

/// The outcome of tracing a leaked schedule.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Index of the identified recipient (into the distributed list).
    pub recipient_index: usize,
    /// The matching recipient's label.
    pub recipient: String,
    /// Evidence for the identified recipient.
    pub evidence: SchedEvidence,
}

/// Derives the recipient-specific signature: the author's key material
/// extended with the recipient identity.
pub fn recipient_signature(author: &Signature, recipient: &str) -> Signature {
    let mut bytes = Vec::with_capacity(64 + recipient.len() + 1);
    bytes.extend_from_slice(author.key());
    bytes.push(0x1D);
    bytes.extend_from_slice(recipient.as_bytes());
    Signature::from_bytes(&bytes, &format!("{}:{recipient}", author.label()))
}

/// Distributes fingerprinted copies of a design to `recipients`.
///
/// # Errors
///
/// Propagates embedding errors (all copies must embed for distribution to
/// be meaningful).
pub fn distribute(
    wm: &SchedulingWatermarker,
    g: &Cdfg,
    author: &Signature,
    recipients: &[&str],
) -> Result<Vec<RecipientCopy>, WatermarkError> {
    recipients
        .iter()
        .map(|r| {
            let sig = recipient_signature(author, r);
            Ok(RecipientCopy {
                recipient: (*r).to_owned(),
                embedding: wm.embed(g, &sig)?,
            })
        })
        .collect()
}

/// Traces a leaked schedule to a recipient: re-derives every recipient's
/// constraints and returns the unique full match, if any.
///
/// Returns `Ok(None)` when no recipient (or more than one — an
/// inconclusive result that should never happen with adequately sized
/// marks) verifies fully.
///
/// # Errors
///
/// Propagates derivation errors.
pub fn identify(
    wm: &SchedulingWatermarker,
    schedule: &Schedule,
    g: &Cdfg,
    author: &Signature,
    recipients: &[&str],
) -> Result<Option<TraceResult>, WatermarkError> {
    let mut matches: Vec<TraceResult> = Vec::new();
    for (i, r) in recipients.iter().enumerate() {
        let sig = recipient_signature(author, r);
        let evidence = wm.detect(schedule, g, &sig)?;
        if evidence.is_match() {
            matches.push(TraceResult {
                recipient_index: i,
                recipient: (*r).to_owned(),
                evidence,
            });
        }
    }
    if matches.len() == 1 {
        Ok(matches.pop())
    } else {
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SchedWmConfig;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};

    const RECIPIENTS: [&str; 5] = ["fab-a", "fab-b", "integrator-c", "oem-d", "oem-e"];

    fn setup() -> (Cdfg, SchedulingWatermarker, Signature) {
        let g = mediabench(&mediabench_apps()[0], 0);
        let wm = SchedulingWatermarker::new(SchedWmConfig {
            k: 12,
            ..SchedWmConfig::default()
        });
        (g, wm, Signature::from_author("vendor"))
    }

    #[test]
    fn every_leak_traces_to_its_recipient() {
        let (g, wm, author) = setup();
        let copies = distribute(&wm, &g, &author, &RECIPIENTS).expect("distributes");
        assert_eq!(copies.len(), RECIPIENTS.len());
        for (i, copy) in copies.iter().enumerate() {
            let traced = identify(&wm, &copy.embedding.schedule, &g, &author, &RECIPIENTS)
                .expect("derives")
                .unwrap_or_else(|| panic!("copy {i} did not trace"));
            assert_eq!(traced.recipient_index, i);
            assert_eq!(traced.recipient, RECIPIENTS[i]);
        }
    }

    #[test]
    fn recipient_signatures_are_distinct_and_bound_to_author() {
        let author = Signature::from_author("vendor");
        let other = Signature::from_author("someone-else");
        let a = recipient_signature(&author, "fab-a");
        let b = recipient_signature(&author, "fab-b");
        let c = recipient_signature(&other, "fab-a");
        assert_ne!(a.key(), b.key());
        assert_ne!(a.key(), c.key(), "same recipient under a different author");
    }

    #[test]
    fn unmarked_solution_traces_to_nobody() {
        let (g, wm, author) = setup();
        let plain =
            localwm_sched::list_schedule(&g, &localwm_sched::ResourceSet::unlimited(), None)
                .expect("schedules");
        let traced = identify(&wm, &plain, &g, &author, &RECIPIENTS).expect("derives");
        assert!(traced.is_none());
    }

    #[test]
    fn copies_differ_between_recipients() {
        let (g, wm, author) = setup();
        let copies = distribute(&wm, &g, &author, &RECIPIENTS[..2]).expect("distributes");
        assert_ne!(copies[0].embedding.edges, copies[1].embedding.edges);
    }
}
