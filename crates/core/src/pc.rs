//! Coincidence-probability (`P_c`) estimation.
//!
//! The strength of authorship is `1 − P_c`, where `P_c` is the likelihood
//! that an *unwatermarked* flow accidentally produces a solution satisfying
//! the signature's constraints. Two estimators are provided, mirroring the
//! paper:
//!
//! * [`exact_pc`] — exhaustive schedule enumeration on a subproblem
//!   (the paper's Fig. 3 method, "only for small examples").
//! * [`log10_pc_pairs`] — the scalable approximation
//!   `P_c ≈ Π ψ_W(e_i)/ψ_N(e_i)` with per-edge pair-window counting
//!   (the paper's `O[i]/O[j]` 77-vs-10 example is exactly such a count).

use localwm_cdfg::{Cdfg, NodeId};
use localwm_sched::enumerate::SubProblem;
use localwm_sched::Windows;

/// Probability that `src` lands strictly before `dst` when both are placed
/// uniformly and independently in their mobility windows.
///
/// This is the per-edge `ψ_W(e)/ψ_N(e)` with the window product as the
/// schedule space: the count of `(x, y)` pairs with `x < y` over all
/// window pairs.
pub fn pair_order_probability(windows: &Windows, src: NodeId, dst: NodeId) -> f64 {
    let (a1, b1) = (windows.asap(src), windows.alap(src));
    let (a2, b2) = (windows.asap(dst), windows.alap(dst));
    let mut favorable = 0u64;
    let total = u64::from(b1 - a1 + 1) * u64::from(b2 - a2 + 1);
    for x in a1..=b1 {
        // y in [a2, b2] with y > x.
        let lo = a2.max(x + 1);
        if lo <= b2 {
            favorable += u64::from(b2 - lo + 1);
        }
    }
    if total == 0 {
        return 1.0;
    }
    favorable as f64 / total as f64
}

/// `log₁₀ P_c` for a set of temporal edges under the pair-window
/// approximation: `Σ log₁₀ (ψ_W/ψ_N)`. Sums in log space so hundreds of
/// edges do not underflow (the paper reports exponents down to 10⁻²⁸³).
///
/// Edges whose probability is 0 (structurally impossible without the
/// watermark) contribute `-∞`; callers treating that as "overwhelming
/// proof" should clamp.
pub fn log10_pc_pairs(windows: &Windows, edges: &[(NodeId, NodeId)]) -> f64 {
    edges
        .iter()
        .map(|&(s, d)| pair_order_probability(windows, s, d).log10())
        .sum()
}

/// The Poisson-binomial tail `P(X ≥ at_least)` where `X` counts how many
/// of `K` independent events with probabilities `ps` occur.
///
/// This is the significance test behind tolerant detection: given the
/// per-constraint chance probabilities of an *unmarked* solution, how
/// likely is it to satisfy at least as many constraints as the suspected
/// one did? Exact `O(K²)` dynamic program.
///
/// # Panics
///
/// Panics if any probability is outside `[0, 1]`.
pub fn poisson_binomial_tail(ps: &[f64], at_least: usize) -> f64 {
    assert!(
        ps.iter().all(|p| (0.0..=1.0).contains(p)),
        "probabilities must be in [0, 1]"
    );
    if at_least == 0 {
        return 1.0;
    }
    let k = ps.len();
    if at_least > k {
        return 0.0;
    }
    // dist[j] = P(X == j) after processing a prefix.
    let mut dist = vec![0.0f64; k + 1];
    dist[0] = 1.0;
    for (i, &p) in ps.iter().enumerate() {
        for j in (0..=i + 1).rev() {
            let stay = if j <= i { dist[j] * (1.0 - p) } else { 0.0 };
            let step = if j > 0 { dist[j - 1] * p } else { 0.0 };
            dist[j] = stay + step;
        }
    }
    dist[at_least..].iter().sum()
}

/// Exact `P_c` by exhaustive enumeration: the ratio of schedule counts of
/// the subproblem over `subset` with and without the watermark's edges.
///
/// Returns `None` when the subproblem exceeds `cap` schedules (the paper's
/// "exponential runtimes" caveat) or admits no schedule.
pub fn exact_pc(
    g: &Cdfg,
    windows: &Windows,
    subset: &[NodeId],
    edges: &[(NodeId, NodeId)],
    cap: u128,
) -> Option<f64> {
    let base = SubProblem::from_graph(g, windows, subset);
    let total = base.count_capped(cap)?;
    if total == 0 {
        return None;
    }
    let mut constrained = base;
    for &(s, d) in edges {
        constrained = constrained.with_order(s, d)?;
    }
    let with = constrained.count_capped(cap)?;
    Some(with as f64 / total as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::{Cdfg, OpKind};

    /// Two independent single-step ops over `steps` available steps.
    fn pair(steps: u32) -> (Cdfg, Windows, NodeId, NodeId) {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, b).unwrap();
        let w = Windows::new(&g, steps).unwrap();
        (g, w, a, b)
    }

    #[test]
    fn symmetric_pair_is_under_half() {
        let (_, w, a, b) = pair(4);
        let p = pair_order_probability(&w, a, b);
        // 4x4 grid, strictly-below-diagonal: 6/16.
        assert!((p - 6.0 / 16.0).abs() < 1e-12);
        // Symmetry: before + after + same-step = 1.
        let q = pair_order_probability(&w, b, a);
        assert!((p + q + 4.0 / 16.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn log10_sums_over_edges() {
        let (_, w, a, b) = pair(4);
        let one = log10_pc_pairs(&w, &[(a, b)]);
        let two = log10_pc_pairs(&w, &[(a, b), (a, b)]);
        assert!((two - 2.0 * one).abs() < 1e-12);
        assert!(one < 0.0);
    }

    #[test]
    fn exact_pc_matches_hand_count() {
        let (g, w, a, b) = pair(3);
        // 9 total schedules; a<b in 3.
        let pc = exact_pc(&g, &w, &[a, b], &[(a, b)], 10_000).unwrap();
        assert!((pc - 3.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn poisson_binomial_matches_binomial_for_equal_ps() {
        // 10 fair coins: P(X >= 8) = (45 + 10 + 1) / 1024.
        let ps = [0.5f64; 10];
        let tail = poisson_binomial_tail(&ps, 8);
        assert!((tail - 56.0 / 1024.0).abs() < 1e-12);
        assert_eq!(poisson_binomial_tail(&ps, 0), 1.0);
        assert_eq!(poisson_binomial_tail(&ps, 11), 0.0);
    }

    #[test]
    fn poisson_binomial_handles_mixed_ps() {
        let ps = [1.0, 0.0, 0.5];
        // X >= 2 requires the p=0.5 event (the 1.0 always fires, 0.0 never).
        assert!((poisson_binomial_tail(&ps, 2) - 0.5).abs() < 1e-12);
        assert!((poisson_binomial_tail(&ps, 1) - 1.0).abs() < 1e-12);
        assert_eq!(poisson_binomial_tail(&ps, 3), 0.0);
    }

    #[test]
    fn exact_pc_with_no_edges_is_one() {
        let (g, w, a, b) = pair(3);
        let pc = exact_pc(&g, &w, &[a, b], &[], 10_000).unwrap();
        assert!((pc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_pc_caps_out() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let subset: Vec<NodeId> = (0..10)
            .map(|_| {
                let n = g.add_node(OpKind::Not);
                g.add_data_edge(x, n).unwrap();
                n
            })
            .collect();
        let w = Windows::new(&g, 10).unwrap();
        assert_eq!(exact_pc(&g, &w, &subset, &[], 1000), None);
    }

    #[test]
    fn more_edges_mean_smaller_pc() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let ns: Vec<NodeId> = (0..4)
            .map(|_| {
                let n = g.add_node(OpKind::Not);
                g.add_data_edge(x, n).unwrap();
                n
            })
            .collect();
        let w = Windows::new(&g, 5).unwrap();
        let one = exact_pc(&g, &w, &ns, &[(ns[0], ns[1])], 1_000_000).unwrap();
        let two = exact_pc(&g, &w, &ns, &[(ns[0], ns[1]), (ns[2], ns[3])], 1_000_000).unwrap();
        assert!(two < one);
        assert!(one < 1.0);
    }
}
