//! Local watermarks for behavioral synthesis.
//!
//! This crate is the paper's primary contribution: an intellectual-property
//! protection technique that hides many *small*, independently detectable
//! watermarks in pseudorandomly selected localities of a design, instead of
//! one global error-corrected mark. Each watermark is a set of
//! signature-derived extra constraints; a design synthesized under them
//! carries statistically imperceptible evidence of authorship that survives
//! cutting, embedding into larger systems, and local tampering.
//!
//! Two behavioral-synthesis tasks are protected:
//!
//! * [`SchedulingWatermarker`] — adds *temporal edges* between slack-rich
//!   operations with overlapping ASAP/ALAP windows (paper Fig. 2); any
//!   schedule produced under them betrays the signature through the
//!   execution order of the constrained pairs.
//! * [`TemplateWatermarker`] — forces signature-chosen node-to-module
//!   matchings by promoting the matched region's neighbouring variables to
//!   pseudo-primary outputs (paper Fig. 5).
//!
//! Supporting modules: [`domain`] (locality selection and unique node
//! identification via criteria C1–C3), [`pc`] (coincidence-probability
//! estimation, exact and approximate), [`allocation`] (module allocation
//! behind the Table II metric), [`fingerprint`] (per-recipient marks for
//! leak tracing), and [`attack`] (tampering models and proof-decay
//! measurement).
//!
//! # Quickstart
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};
//!
//! let design = iir4_parallel();
//! let sig = Signature::from_author("alice <alice@example.com>");
//! let wm = SchedulingWatermarker::new(SchedWmConfig::default());
//! let embedded = wm.embed(&design, &sig)?;
//! let evidence = wm.detect(&embedded.schedule, &design, &sig)?;
//! assert!(evidence.is_match());
//!
//! // A different author's signature does not verify.
//! let mallory = Signature::from_author("mallory");
//! let wrong = wm.detect(&embedded.schedule, &design, &mallory)?;
//! assert!(!wrong.is_match());
//! # Ok::<(), localwm_core::WatermarkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod allocation;
pub mod attack;
pub mod audit;
pub mod binding;
pub mod domain;
pub mod fingerprint;
pub mod pc;

mod error;
mod sched_wm;
mod tmatch_wm;

pub use error::WatermarkError;
pub use sched_wm::{SchedEmbedding, SchedEvidence, SchedWmConfig, SchedulingWatermarker};
pub use tmatch_wm::{
    module_instances, module_overhead, TemplateWatermarker, TmatchEmbedding, TmatchEvidence,
    TmatchWmConfig,
};

// Re-export the signature type: it is the crate's user-facing identity.
pub use localwm_prng::Signature;
