//! Execution under a schedule: simulate the design control step by
//! control step, verifying along the way that the schedule never consumes
//! a value before it is produced.

use localwm_cdfg::{Cdfg, NodeId, OpKind};
use localwm_sched::Schedule;

use crate::{eval_op, Inputs, InterpretError, Trace};

/// Executes a scheduled design step by step.
///
/// Unlike [`crate::interpret`] (which walks a topological order), this
/// drives evaluation by **control step**: at step `s`, exactly the
/// operations scheduled at `s` fire, reading whatever their operands hold.
/// If the schedule is valid, the result equals the interpreter's; if an
/// operation is scheduled no later than a producer it depends on, the
/// mismatch surfaces as a wrong value — making this the failure-injection
/// oracle for scheduler bugs.
///
/// Free nodes (inputs, constants, outputs) are evaluated before step 1 and
/// after the last step respectively.
///
/// # Errors
///
/// [`InterpretError::Cyclic`] or [`InterpretError::Arity`].
pub fn execute_scheduled(
    g: &Cdfg,
    schedule: &Schedule,
    inputs: &Inputs,
) -> Result<Trace, InterpretError> {
    execute_scheduled_in(&localwm_engine::DesignContext::from(g), schedule, inputs)
}

/// [`execute_scheduled`] against a shared
/// [`localwm_engine::DesignContext`], reusing its memoized cycle check.
///
/// # Errors
///
/// [`InterpretError::Cyclic`] or [`InterpretError::Arity`].
pub fn execute_scheduled_in(
    ctx: &localwm_engine::DesignContext,
    schedule: &Schedule,
    inputs: &Inputs,
) -> Result<Trace, InterpretError> {
    let g = ctx.graph();
    // Arity/cycle validation up front (reuses the interpreter's checks).
    ctx.try_topo().map_err(|_| InterpretError::Cyclic)?;
    let mut values = vec![0i64; g.node_count()];

    // Sources first.
    for n in g.node_ids() {
        match g.kind(n) {
            OpKind::Input => values[n.index()] = inputs.value_for(n),
            OpKind::Const => {
                let literal = g.node(n).and_then(|x| x.literal());
                values[n.index()] = eval_op(OpKind::Const, literal, &[]);
            }
            _ => {}
        }
    }

    // Bucket operations by step.
    let len = schedule.length();
    let mut by_step: Vec<Vec<NodeId>> = vec![Vec::new(); len as usize + 1];
    for (n, s) in schedule.iter() {
        by_step[s as usize].push(n);
    }
    for bucket in by_step.iter().skip(1) {
        for &n in bucket {
            let kind = g.kind(n);
            let operands: Vec<i64> = g.data_preds(n).map(|p| values[p.index()]).collect();
            if let Some(expected) = kind.arity() {
                if operands.len() != expected {
                    return Err(InterpretError::Arity {
                        node: n,
                        expected,
                        found: operands.len(),
                    });
                }
            }
            let literal = g.node(n).and_then(|x| x.literal());
            values[n.index()] = eval_op(kind, literal, &operands);
        }
    }

    // Outputs last.
    for n in g.node_ids() {
        if g.kind(n) == OpKind::Output {
            let operands: Vec<i64> = g.data_preds(n).map(|p| values[p.index()]).collect();
            if operands.len() != 1 {
                return Err(InterpretError::Arity {
                    node: n,
                    expected: 1,
                    found: operands.len(),
                });
            }
            values[n.index()] = operands[0];
        }
    }
    Ok(Trace::from_values(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{interpret, outputs_match};
    use localwm_cdfg::generators::{layered, LayeredConfig};
    use localwm_sched::{list_schedule, ResourceSet, Schedule};

    #[test]
    fn scheduled_execution_matches_interpretation() {
        let g = layered(&LayeredConfig {
            ops: 150,
            layers: 12,
            seed: 3,
            ..Default::default()
        });
        let inputs = Inputs::seeded(9);
        let reference = interpret(&g, &inputs).unwrap();
        let schedule = list_schedule(&g, &ResourceSet::unlimited(), None).unwrap();
        let executed = execute_scheduled(&g, &schedule, &inputs).unwrap();
        assert!(outputs_match(&g, &reference, &executed));
    }

    #[test]
    fn corrupted_schedule_produces_wrong_values() {
        // in -> a -> b: schedule b *at the same step* as a; b then reads a's
        // stale (zero) value and the output diverges — failure injection.
        let mut g = localwm_cdfg::Cdfg::new();
        let x = g.add_node(localwm_cdfg::OpKind::Input);
        let a = g.add_node(localwm_cdfg::OpKind::Not);
        let b = g.add_node(localwm_cdfg::OpKind::Not);
        let y = g.add_node(localwm_cdfg::OpKind::Output);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(b, y).unwrap();
        let inputs = Inputs::seeded(1);
        let reference = interpret(&g, &inputs).unwrap();

        let mut bad = Schedule::empty(&g);
        bad.set_step(b, 1); // fires before a
        bad.set_step(a, 2);
        assert!(bad.validate(&g).is_err(), "schedule is indeed invalid");
        let executed = execute_scheduled(&g, &bad, &inputs).unwrap();
        assert!(
            !outputs_match(&g, &reference, &executed),
            "an invalid schedule must corrupt the output"
        );
    }
}
