//! Functional simulation of CDFGs.
//!
//! The watermarking flow promises that its constraints are *transparent*:
//! temporal edges (and the unit operations that realize them in compiled
//! code) change scheduling decisions but never the computed values. This
//! crate provides the deterministic interpreter that lets the test suite
//! verify that promise end to end — embed, realize, schedule, execute, and
//! compare every primary output bit-for-bit.
//!
//! # Semantics
//!
//! Values are `i64` with wrapping arithmetic. Every operation kind has a
//! total, documented semantic (see [`eval_op`]); memory operations are
//! modelled as pure hash-like functions of their operands so simulation
//! needs no memory image, and `UnitOp` is the paper's "addition with a
//! variable assigned to zero" — the identity.
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::{Cdfg, OpKind};
//! use localwm_sim::{interpret, Inputs};
//!
//! let mut g = Cdfg::new();
//! let a = g.add_node(OpKind::Input);
//! let b = g.add_node(OpKind::Input);
//! let s = g.add_node(OpKind::Add);
//! let y = g.add_node(OpKind::Output);
//! g.add_data_edge(a, s)?;
//! g.add_data_edge(b, s)?;
//! g.add_data_edge(s, y)?;
//!
//! let mut inputs = Inputs::new();
//! inputs.set(a, 2);
//! inputs.set(b, 40);
//! let out = interpret(&g, &inputs)?;
//! assert_eq!(out.value(y), Some(42));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
mod interp;
mod iterate;
mod value;

pub use exec::{execute_scheduled, execute_scheduled_in};
pub use interp::{interpret, interpret_in, outputs_match, Inputs, InterpretError, Trace};
pub use iterate::iterate;
pub use value::eval_op;
