//! Per-operation semantics.

use localwm_cdfg::OpKind;

/// Evaluates one operation over its operand values.
///
/// Total and deterministic for every kind; `literal` carries a node's
/// attached constant (the value of a `Const`, the coefficient of a
/// `ConstMul`), defaulting to documented values when absent. Arithmetic
/// wraps.
///
/// Semantics of the non-obvious kinds:
///
/// * `Load(a)` — a pure hash of the address: `a ⊕ (a >>> 17) · LOAD_SALT`
///   (simulation needs no memory image; what matters for watermark
///   verification is determinism).
/// * `Store(a, v)` — the stored value `v` (sinks still produce a value so
///   traces can compare them).
/// * `Branch(c)` — the taken bit, `c & 1`.
/// * `Delay(v)` — the identity (the next-iteration state value).
/// * `UnitOp(v)` — the identity: "additions with variables assigned to
///   zero at runtime" (paper §V).
/// * `Mux(s, a, b)` — `a` if `s & 1 == 0` else `b`.
/// * shifts use the low 6 bits of the shift amount.
///
/// # Panics
///
/// Panics if `operands.len()` does not match the kind's arity.
pub fn eval_op(kind: OpKind, literal: Option<i64>, operands: &[i64]) -> i64 {
    const LOAD_SALT: i64 = 0x9E37_79B9_7F4A_7C15u64 as i64;
    let req = |n: usize| {
        assert_eq!(
            operands.len(),
            n,
            "{kind} expects {n} operand(s), got {}",
            operands.len()
        );
    };
    match kind {
        OpKind::Input => {
            req(0);
            literal.unwrap_or(0)
        }
        OpKind::Const => {
            req(0);
            literal.unwrap_or(1)
        }
        OpKind::Output => {
            req(1);
            operands[0]
        }
        OpKind::Add => {
            req(2);
            operands[0].wrapping_add(operands[1])
        }
        OpKind::Sub => {
            req(2);
            operands[0].wrapping_sub(operands[1])
        }
        OpKind::Mul => {
            req(2);
            operands[0].wrapping_mul(operands[1])
        }
        OpKind::ConstMul => {
            req(1);
            operands[0].wrapping_mul(literal.unwrap_or(3))
        }
        OpKind::Div => {
            req(2);
            if operands[1] == 0 {
                0
            } else {
                operands[0].wrapping_div(operands[1])
            }
        }
        OpKind::Shl => {
            req(2);
            operands[0].wrapping_shl((operands[1] & 0x3F) as u32)
        }
        OpKind::Shr => {
            req(2);
            operands[0].wrapping_shr((operands[1] & 0x3F) as u32)
        }
        OpKind::And => {
            req(2);
            operands[0] & operands[1]
        }
        OpKind::Or => {
            req(2);
            operands[0] | operands[1]
        }
        OpKind::Xor => {
            req(2);
            operands[0] ^ operands[1]
        }
        OpKind::Not => {
            req(1);
            !operands[0]
        }
        OpKind::Neg => {
            req(1);
            operands[0].wrapping_neg()
        }
        OpKind::Lt => {
            req(2);
            i64::from(operands[0] < operands[1])
        }
        OpKind::Eq => {
            req(2);
            i64::from(operands[0] == operands[1])
        }
        OpKind::Mux => {
            req(3);
            if operands[0] & 1 == 0 {
                operands[1]
            } else {
                operands[2]
            }
        }
        OpKind::Load => {
            req(1);
            (operands[0] ^ operands[0].rotate_right(17)).wrapping_mul(LOAD_SALT)
        }
        OpKind::Store => {
            req(2);
            operands[1]
        }
        OpKind::Branch => {
            req(1);
            operands[0] & 1
        }
        OpKind::Delay | OpKind::UnitOp => {
            req(1);
            operands[0]
        }
        // `OpKind` is non_exhaustive; any future kind must get semantics.
        other => unreachable!("no semantics defined for {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_wraps() {
        assert_eq!(eval_op(OpKind::Add, None, &[i64::MAX, 1]), i64::MIN);
        assert_eq!(eval_op(OpKind::Neg, None, &[i64::MIN]), i64::MIN);
    }

    #[test]
    fn division_by_zero_is_total() {
        assert_eq!(eval_op(OpKind::Div, None, &[5, 0]), 0);
        assert_eq!(eval_op(OpKind::Div, None, &[7, 2]), 3);
    }

    #[test]
    fn literals_drive_constants() {
        assert_eq!(eval_op(OpKind::Const, Some(9), &[]), 9);
        assert_eq!(eval_op(OpKind::Const, None, &[]), 1);
        assert_eq!(eval_op(OpKind::ConstMul, Some(5), &[7]), 35);
        assert_eq!(eval_op(OpKind::ConstMul, None, &[7]), 21);
    }

    #[test]
    fn unit_op_is_identity() {
        assert_eq!(eval_op(OpKind::UnitOp, None, &[1234]), 1234);
    }

    #[test]
    fn mux_selects_by_parity() {
        assert_eq!(eval_op(OpKind::Mux, None, &[0, 10, 20]), 10);
        assert_eq!(eval_op(OpKind::Mux, None, &[1, 10, 20]), 20);
    }

    #[test]
    fn load_is_deterministic_and_spread() {
        let a = eval_op(OpKind::Load, None, &[1]);
        let b = eval_op(OpKind::Load, None, &[2]);
        assert_ne!(a, b);
        assert_eq!(a, eval_op(OpKind::Load, None, &[1]));
    }

    #[test]
    #[should_panic(expected = "expects 2 operand")]
    fn wrong_arity_panics() {
        let _ = eval_op(OpKind::Add, None, &[1]);
    }
}
