//! Multi-iteration SDF simulation.
//!
//! A CDFG describes one iteration of a synchronous-dataflow computation;
//! `Delay` nodes carry state into the next iteration. [`iterate`] runs `k`
//! iterations by feeding each delay's computed value into the matching
//! state input of the next round — the reference semantics that
//! [`localwm_cdfg::unroll`] must preserve structurally (the cross-check
//! lives in this module's tests).

use localwm_cdfg::{Cdfg, NodeId, OpKind};

use crate::{interpret, Inputs, InterpretError, Trace};

/// Runs `k` iterations of an SDF design.
///
/// `input_value(iteration, name)` supplies every primary input's value per
/// iteration (state inputs consult it only for iteration 0 — afterwards
/// they carry the previous iteration's delay values). Anonymous inputs are
/// addressed as `n<i>`.
///
/// State matching is positional, exactly as in
/// [`localwm_cdfg::unroll`]: the i-th `Delay` (by node id) feeds the i-th
/// state `Input` (name starting with `s`).
///
/// # Errors
///
/// Propagates interpretation errors.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn iterate(
    g: &Cdfg,
    k: usize,
    mut input_value: impl FnMut(usize, &str) -> i64,
) -> Result<Vec<Trace>, InterpretError> {
    assert!(k >= 1, "at least one iteration required");
    let delays: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n) == OpKind::Delay)
        .collect();
    let state_inputs: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| {
            g.kind(n) == OpKind::Input && g.node_name(n).is_some_and(|m| m.starts_with('s'))
        })
        .collect();
    let paired = delays.len().min(state_inputs.len());
    let name_of = |n: NodeId| -> String {
        g.node_name(n)
            .map_or_else(|| format!("n{}", n.index()), str::to_owned)
    };

    let mut traces = Vec::with_capacity(k);
    let mut state: Vec<i64> = Vec::new();
    for j in 0..k {
        let mut inputs = Inputs::new();
        for n in g.node_ids() {
            if g.kind(n) != OpKind::Input {
                continue;
            }
            let pos = state_inputs[..paired].iter().position(|&s| s == n);
            let v = match pos {
                Some(i) if j > 0 => state[i],
                _ => input_value(j, &name_of(n)),
            };
            inputs.set(n, v);
        }
        let trace = interpret(g, &inputs)?;
        state = delays[..paired]
            .iter()
            .map(|&d| trace.value(d).expect("delay evaluated"))
            .collect();
        traces.push(trace);
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::unroll;

    fn stimulus(j: usize, name: &str) -> i64 {
        // Deterministic per (iteration, input-name) stimulus.
        let mut h: i64 = 0x5bd1_e995;
        for b in name.bytes() {
            h = h.wrapping_mul(31).wrapping_add(i64::from(b));
        }
        h.wrapping_add(j as i64 * 1_000_003)
    }

    /// The key validation: iterating the base design k times computes the
    /// same outputs as interpreting the k-fold unrolled design once.
    #[test]
    fn iterate_matches_unroll() {
        let g = iir4_parallel();
        const K: usize = 4;
        let traces = iterate(&g, K, stimulus).unwrap();

        let u = unroll(&g, K).unwrap();
        let mut inputs = Inputs::new();
        for n in u.node_ids() {
            if u.kind(n) != localwm_cdfg::OpKind::Input {
                continue;
            }
            let full = u.node_name(n).expect("named copies");
            let (base, copy) = full.split_once('@').expect("name@copy");
            let j: usize = copy.parse().expect("copy index");
            inputs.set(n, stimulus(j, base));
        }
        let unrolled = interpret(&u, &inputs).unwrap();

        for (j, trace) in traces.iter().enumerate().take(K) {
            let y = g.node_by_name("y").unwrap();
            let yu = u.node_by_name(&format!("y@{j}")).unwrap();
            assert_eq!(
                trace.value(y),
                unrolled.value(yu),
                "iteration {j} output diverged between iterate() and unroll()"
            );
        }
    }

    #[test]
    fn state_actually_propagates() {
        let g = iir4_parallel();
        let traces = iterate(&g, 3, stimulus).unwrap();
        let y = g.node_by_name("y").unwrap();
        // With constant-per-name stimulus but evolving state, the output
        // changes between iterations.
        let t0 = iterate(&g, 3, |_, name| stimulus(0, name)).unwrap();
        assert_ne!(t0[0].value(y), t0[2].value(y), "state must evolve");
        let _ = traces;
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iterations_panics() {
        let g = iir4_parallel();
        let _ = iterate(&g, 0, |_, _| 0);
    }
}
