//! The interpreter.

use std::collections::HashMap;
use std::fmt;

use localwm_cdfg::{Cdfg, NodeId, OpKind};

use crate::eval_op;

/// Input assignment for a simulation run.
///
/// Explicitly set values win; unset inputs fall back to a deterministic
/// per-node default derived from `default_seed` (so whole-design runs
/// don't need to enumerate hundreds of inputs).
#[derive(Debug, Clone, Default)]
pub struct Inputs {
    values: HashMap<NodeId, i64>,
    default_seed: u64,
}

impl Inputs {
    /// Empty assignment with seed 0 defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Empty assignment whose defaults derive from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Inputs {
            values: HashMap::new(),
            default_seed: seed,
        }
    }

    /// Sets one input value.
    pub fn set(&mut self, n: NodeId, value: i64) {
        self.values.insert(n, value);
    }

    /// The value an input node receives.
    pub fn value_for(&self, n: NodeId) -> i64 {
        if let Some(&v) = self.values.get(&n) {
            return v;
        }
        // SplitMix64 over (seed, node index).
        let mut z = self
            .default_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(n.index() as u64 + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) as i64
    }
}

/// Simulation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterpretError {
    /// The graph is cyclic.
    Cyclic,
    /// A node's data-operand count does not match its kind's arity.
    Arity {
        /// The offending node.
        node: NodeId,
        /// Expected operand count.
        expected: usize,
        /// Actual operand count.
        found: usize,
    },
}

impl fmt::Display for InterpretError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpretError::Cyclic => write!(f, "graph is cyclic"),
            InterpretError::Arity {
                node,
                expected,
                found,
            } => write!(
                f,
                "node {node} expects {expected} operand(s), found {found}"
            ),
        }
    }
}

impl std::error::Error for InterpretError {}

/// A completed simulation: every node's value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    values: Vec<i64>,
}

impl Trace {
    pub(crate) fn from_values(values: Vec<i64>) -> Self {
        Trace { values }
    }

    /// The computed value of a node (`None` for out-of-range ids).
    pub fn value(&self, n: NodeId) -> Option<i64> {
        self.values.get(n.index()).copied()
    }

    /// The values of all `Output` nodes of `g`, in node-id order.
    pub fn outputs(&self, g: &Cdfg) -> Vec<(NodeId, i64)> {
        g.node_ids()
            .filter(|&n| g.kind(n) == OpKind::Output)
            .map(|n| (n, self.values[n.index()]))
            .collect()
    }
}

/// Interprets a CDFG: evaluates every node in topological order.
///
/// Operand order is the data-edge insertion order — the graph builder's
/// argument order — which matters for non-commutative kinds.
///
/// # Errors
///
/// [`InterpretError::Cyclic`] or [`InterpretError::Arity`].
pub fn interpret(g: &Cdfg, inputs: &Inputs) -> Result<Trace, InterpretError> {
    interpret_in(&localwm_engine::DesignContext::from(g), inputs)
}

/// [`interpret`] against a shared [`localwm_engine::DesignContext`],
/// reusing its memoized topological order — the fast path when many input
/// vectors are simulated against one design.
///
/// # Errors
///
/// [`InterpretError::Cyclic`] or [`InterpretError::Arity`].
pub fn interpret_in(
    ctx: &localwm_engine::DesignContext,
    inputs: &Inputs,
) -> Result<Trace, InterpretError> {
    let g = ctx.graph();
    let order = ctx.try_topo().map_err(|_| InterpretError::Cyclic)?;
    let mut values = vec![0i64; g.node_count()];
    for &n in order {
        let kind = g.kind(n);
        if kind == OpKind::Input {
            values[n.index()] = inputs.value_for(n);
            continue;
        }
        let operands: Vec<i64> = g.data_preds(n).map(|p| values[p.index()]).collect();
        if let Some(expected) = kind.arity() {
            if operands.len() != expected {
                return Err(InterpretError::Arity {
                    node: n,
                    expected,
                    found: operands.len(),
                });
            }
        }
        let literal = g.node(n).and_then(|x| x.literal());
        values[n.index()] = eval_op(kind, literal, &operands);
    }
    Ok(Trace { values })
}

/// Whether two traces agree on every `Output` node of `base` — the
/// semantic-preservation check for watermark realizations, which only
/// append nodes and thus keep the base graph's output ids valid.
pub fn outputs_match(base: &Cdfg, a: &Trace, b: &Trace) -> bool {
    base.node_ids()
        .filter(|&n| base.kind(n) == OpKind::Output)
        .all(|n| a.value(n) == b.value(n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::CdfgBuilder;

    fn small() -> (Cdfg, NodeId, NodeId, NodeId) {
        let g = CdfgBuilder::new()
            .node("a", OpKind::Input)
            .node("b", OpKind::Input)
            .node("d", OpKind::Sub)
            .node("y", OpKind::Output)
            .data("a", "d")
            .data("b", "d")
            .data("d", "y")
            .build()
            .expect("valid");
        let a = g.node_by_name("a").unwrap();
        let b = g.node_by_name("b").unwrap();
        let y = g.node_by_name("y").unwrap();
        (g, a, b, y)
    }

    #[test]
    fn operand_order_follows_edge_insertion() {
        let (g, a, b, y) = small();
        let mut inputs = Inputs::new();
        inputs.set(a, 10);
        inputs.set(b, 3);
        let t = interpret(&g, &inputs).unwrap();
        assert_eq!(t.value(y), Some(7), "a - b, not b - a");
    }

    #[test]
    fn defaults_are_deterministic_and_seed_dependent() {
        let (g, _, _, y) = small();
        let t1 = interpret(&g, &Inputs::seeded(1)).unwrap();
        let t2 = interpret(&g, &Inputs::seeded(1)).unwrap();
        let t3 = interpret(&g, &Inputs::seeded(2)).unwrap();
        assert_eq!(t1.value(y), t2.value(y));
        assert_ne!(t1.value(y), t3.value(y));
    }

    #[test]
    fn literals_flow_through() {
        let mut g = Cdfg::new();
        let c = g.add_node(OpKind::Const);
        g.set_literal(c, 21);
        let m = g.add_node(OpKind::ConstMul);
        g.set_literal(m, 2);
        g.add_data_edge(c, m).unwrap();
        let y = g.add_node(OpKind::Output);
        g.add_data_edge(m, y).unwrap();
        let t = interpret(&g, &Inputs::new()).unwrap();
        assert_eq!(t.value(y), Some(42));
    }

    #[test]
    fn arity_error_reported() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let s = g.add_node(OpKind::Add);
        g.add_data_edge(a, s).unwrap();
        assert!(matches!(
            interpret(&g, &Inputs::new()),
            Err(InterpretError::Arity {
                expected: 2,
                found: 1,
                ..
            })
        ));
    }

    #[test]
    fn temporal_edges_do_not_change_values() {
        let (mut g, a, b, y) = small();
        let base = interpret(&g, &Inputs::seeded(5)).unwrap();
        g.add_temporal_edge(a, b).unwrap();
        let marked = interpret(&g, &Inputs::seeded(5)).unwrap();
        assert_eq!(base.value(y), marked.value(y));
        assert!(outputs_match(&g, &base, &marked));
    }

    #[test]
    fn outputs_lists_all_output_nodes() {
        let (g, ..) = small();
        let t = interpret(&g, &Inputs::new()).unwrap();
        assert_eq!(t.outputs(&g).len(), 1);
    }
}
