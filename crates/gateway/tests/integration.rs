//! Gateway end-to-end tests: real `localwm-serve` backends on loopback,
//! a gateway routing over them, a [`Client`] driving the gateway.

use std::time::Duration;

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_gateway::{BackendSpec, GatewayConfig, GatewayHandle};
use localwm_serve::{Client, ErrorCode, Request, RequestKind, ServeConfig, ServerHandle};
use serde::Value;

fn start_backend() -> ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        cache_cap: 8,
        ..ServeConfig::default()
    })
    .expect("bind backend")
}

/// A gateway config tuned for tests: no prober, no backoff sleeps.
fn fast_config(backends: Vec<BackendSpec>, replicas: usize) -> GatewayConfig {
    GatewayConfig {
        addr: "127.0.0.1:0".to_owned(),
        backends,
        replicas,
        max_retries: 1,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        recv_timeout_ms: 10_000,
        health_interval_ms: None,
        record_routes: true,
    }
}

fn spec(name: &str, backend: &ServerHandle) -> BackendSpec {
    BackendSpec {
        name: name.to_owned(),
        addr: backend.addr().to_string(),
    }
}

fn connect(gw: &GatewayHandle) -> Client {
    Client::connect_within(&gw.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn timing_request(id: u64, design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.id = Some(id);
    r.design = Some(design.to_owned());
    r
}

fn designs() -> Vec<String> {
    let apps = mediabench_apps();
    vec![
        write_cdfg(&iir4_parallel()),
        write_cdfg(&mediabench(&apps[0], 0)),
        write_cdfg(&mediabench(&apps[1], 0)),
        write_cdfg(&mediabench(&apps[0], 7)),
    ]
}

#[test]
fn gateway_responses_are_byte_identical_to_direct_backend() {
    let b0 = start_backend();
    let b1 = start_backend();
    // The reference backend answers the same requests directly.
    let reference = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");

    let mut via_gw = connect(&gw);
    let mut direct =
        Client::connect_within(&reference.addr().to_string(), Duration::from_secs(5)).unwrap();
    for (i, design) in designs().iter().enumerate() {
        let req = timing_request(i as u64, design);
        via_gw.send(&req).unwrap();
        let routed = via_gw.recv_line().unwrap();
        direct.send(&req).unwrap();
        let reference_line = direct.recv_line().unwrap();
        assert_eq!(routed, reference_line, "design {i} bytes diverged");
    }

    // Both backends should have seen work across 4 distinct designs
    // (rendezvous spreads shards), and every route is recorded.
    let trace = gw.routing_trace();
    assert_eq!(trace.len(), 4);
    assert!(trace.iter().all(|r| r.failovers == 0 && r.attempts == 1));

    gw.shutdown();
    b0.shutdown();
    b1.shutdown();
    reference.shutdown();
}

#[test]
fn same_design_routes_to_the_same_backend_every_time() {
    let b0 = start_backend();
    let b1 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let mut c = connect(&gw);
    let design = write_cdfg(&iir4_parallel());
    for i in 0..6u64 {
        let resp = c.call(&timing_request(i, &design)).unwrap();
        assert!(resp.ok);
    }
    let trace = gw.routing_trace();
    assert_eq!(trace.len(), 6);
    let first = trace[0].backend.clone().expect("served");
    assert!(
        trace.iter().all(|r| r.backend.as_deref() == Some(&*first)),
        "one design = one shard = one backend: {trace:?}"
    );
    // All six hits share one shard key (the memoized content hash).
    assert!(trace.iter().all(|r| r.key == trace[0].key));

    gw.shutdown();
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn failover_to_replica_when_primary_dies() {
    let b0 = start_backend();
    let b1 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let mut c = connect(&gw);
    let design = write_cdfg(&iir4_parallel());

    let first = c.call(&timing_request(1, &design)).unwrap();
    assert!(first.ok);
    let primary = gw.routing_trace()[0].backend.clone().unwrap();

    // Kill the backend that owns this shard; its replica must take over
    // with the same response bytes.
    if primary == "b0" {
        b0.shutdown();
        c.send(&timing_request(2, &design)).unwrap();
        let after = c.recv_line().unwrap();
        let resp = localwm_serve::Response::from_line(&after).unwrap();
        assert!(resp.ok, "replica served after primary death: {after}");
        let trace = gw.routing_trace();
        assert_eq!(trace[1].backend.as_deref(), Some("b1"));
        assert_eq!(trace[1].failovers, 1);
        b1.shutdown();
    } else {
        b1.shutdown();
        c.send(&timing_request(2, &design)).unwrap();
        let after = c.recv_line().unwrap();
        let resp = localwm_serve::Response::from_line(&after).unwrap();
        assert!(resp.ok, "replica served after primary death: {after}");
        let trace = gw.routing_trace();
        assert_eq!(trace[1].backend.as_deref(), Some("b0"));
        assert_eq!(trace[1].failovers, 1);
        b0.shutdown();
    }
    gw.shutdown();
}

#[test]
fn exhausted_replicas_yield_typed_upstream_unavailable() {
    let b0 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0)], 1)).expect("start gateway");
    let mut c = connect(&gw);
    b0.shutdown();

    let resp = c
        .call(&timing_request(9, &write_cdfg(&iir4_parallel())))
        .unwrap();
    assert!(!resp.ok);
    let err = resp.error.expect("typed error");
    assert_eq!(err.code, ErrorCode::UpstreamUnavailable);
    let tried = err
        .details
        .iter()
        .find(|(k, _)| k == "backends_tried")
        .map(|(_, v)| v.clone());
    assert_eq!(
        tried,
        Some(Value::Array(vec![Value::Str("b0".to_owned())])),
        "error names the exhausted backends"
    );
    let trace = gw.routing_trace();
    assert_eq!(trace[0].backend, None);
    assert_eq!(trace[0].attempts, 2, "1 try + 1 retry");

    gw.shutdown();
}

#[test]
fn update_backend_addr_reroutes_to_restarted_backend() {
    let b0 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0)], 1)).expect("start gateway");
    let mut c = connect(&gw);
    let design = write_cdfg(&iir4_parallel());
    assert!(c.call(&timing_request(1, &design)).unwrap().ok);

    // "Restart" the backend: kill it, start a fresh one on a new port, and
    // point the gateway's `b0` entry at the new address. The shard identity
    // (the name) is unchanged, so routing is identical.
    b0.shutdown();
    let b0v2 = start_backend();
    assert!(gw.update_backend_addr("b0", &b0v2.addr().to_string()));
    assert!(!gw.update_backend_addr("nope", "127.0.0.1:1"));

    let resp = c.call(&timing_request(2, &design)).unwrap();
    assert!(resp.ok, "restarted backend serves the same shard");
    let trace = gw.routing_trace();
    assert_eq!(trace[0].key, trace[1].key);
    assert_eq!(trace[1].backend.as_deref(), Some("b0"));

    gw.shutdown();
    b0v2.shutdown();
}

fn session_request(kind: RequestKind, id: u64, session: &str) -> Request {
    let mut r = Request::new(kind);
    r.id = Some(id);
    r.session = Some(session.to_owned());
    r
}

#[test]
fn sessions_stick_to_one_backend_and_match_from_scratch() {
    let b0 = start_backend();
    let b1 = start_backend();
    let reference = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let mut c = connect(&gw);

    let mut open = session_request(RequestKind::Open, 1, "gw-s1");
    open.design = Some(write_cdfg(&iir4_parallel()));
    assert!(c.call(&open).unwrap().ok);
    let mut m = session_request(RequestKind::Mutate, 2, "gw-s1");
    m.edits = Some("add-node t9 not\nadd-edge data A9 t9\n".to_owned());
    assert!(c.call(&m).unwrap().ok);
    let mut q = session_request(RequestKind::Analyze, 3, "gw-s1");
    q.samples = Some(50);
    q.seed = Some(4);
    c.send(&q).unwrap();
    let via_session = c.recv_line().unwrap();
    assert!(
        c.call(&session_request(RequestKind::Close, 4, "gw-s1"))
            .unwrap()
            .ok
    );

    // Every session request hashed the session id, so one backend (and one
    // shard key) served the whole conversation.
    let trace = gw.routing_trace();
    assert_eq!(trace.len(), 4);
    let owner = trace[0].backend.clone().expect("served");
    assert!(
        trace
            .iter()
            .all(|r| r.backend.as_deref() == Some(&*owner) && r.key == trace[0].key),
        "session must stick to one backend: {trace:?}"
    );

    // The held analysis is byte-identical to a from-scratch analyze of the
    // mutated design against an untouched backend.
    let mut g = iir4_parallel();
    let t9 = g.add_named_node(localwm_cdfg::OpKind::Not, "t9");
    let a9 = g.node_by_name("A9").unwrap();
    g.add_data_edge(a9, t9).unwrap();
    let mut scratch = Request::new(RequestKind::Analyze);
    scratch.id = Some(3);
    scratch.design = Some(write_cdfg(&g));
    scratch.samples = Some(50);
    scratch.seed = Some(4);
    let mut direct =
        Client::connect_within(&reference.addr().to_string(), Duration::from_secs(5)).unwrap();
    direct.send(&scratch).unwrap();
    assert_eq!(via_session, direct.recv_line().unwrap());

    gw.shutdown();
    b0.shutdown();
    b1.shutdown();
    reference.shutdown();
}

#[test]
fn session_failover_is_a_typed_session_expired_never_silent() {
    let b0 = start_backend();
    let b1 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let mut c = connect(&gw);

    let mut open = session_request(RequestKind::Open, 1, "gw-s2");
    open.design = Some(write_cdfg(&iir4_parallel()));
    assert!(c.call(&open).unwrap().ok);
    let owner = gw.routing_trace()[0].backend.clone().expect("served");

    // Kill the backend holding the session. The replica that takes the
    // shard over has no such session: the client gets a typed
    // `session_expired` telling it to re-open — never a silent success
    // against stale state, never a dropped request.
    let survivor = if owner == "b0" {
        b0.shutdown();
        b1
    } else {
        b1.shutdown();
        b0
    };
    let resp = c
        .call(&session_request(RequestKind::Timing, 2, "gw-s2"))
        .unwrap();
    assert!(!resp.ok);
    assert_eq!(
        resp.error.expect("typed error").code,
        ErrorCode::SessionExpired
    );
    let trace = gw.routing_trace();
    assert_eq!(
        trace[1].failovers, 1,
        "replica answered after the owner died"
    );

    // Re-opening on the survivor works: same id, fresh state.
    let mut reopen = session_request(RequestKind::Open, 3, "gw-s2");
    reopen.design = Some(write_cdfg(&iir4_parallel()));
    assert!(c.call(&reopen).unwrap().ok);

    gw.shutdown();
    survivor.shutdown();
}

#[test]
fn cluster_stats_aggregates_backend_gauges() {
    let b0 = start_backend();
    let b1 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let mut c = connect(&gw);
    for (i, design) in designs().iter().enumerate() {
        assert!(c.call(&timing_request(i as u64, design)).unwrap().ok);
    }

    let resp = c.call(&Request::new(RequestKind::ClusterStats)).unwrap();
    assert!(resp.ok);
    assert_eq!(resp.kind, "cluster_stats");
    let agg = resp.result_field("aggregate").expect("aggregate");
    assert_eq!(agg.field("backends"), Some(&Value::Int(2)));
    assert_eq!(agg.field("healthy"), Some(&Value::Int(2)));
    assert_eq!(
        agg.field("workers"),
        Some(&Value::Int(4)),
        "2 workers per backend, summed"
    );
    assert_eq!(agg.field("queue_depth"), Some(&Value::Int(0)));
    // Fleet-wide sharded-cache and work-stealing-pool aggregates: each
    // backend's timing requests were cache misses, summed here.
    let cache = agg.field("cache").expect("aggregate cache block");
    let misses = match cache.field("misses") {
        Some(Value::Int(n)) => *n,
        other => panic!("cache misses should be an int, got {other:?}"),
    };
    assert!(misses >= 2, "both backends parsed at least one design");
    let pool = agg.field("pool").expect("aggregate pool block");
    assert!(
        pool.field("steals").is_some() && pool.field("cross_batch_steals").is_some(),
        "pool aggregate carries the work-stealing counters"
    );
    let backends = match resp.result_field("backends") {
        Some(Value::Array(a)) => a.clone(),
        other => panic!("expected backend array, got {other:?}"),
    };
    assert_eq!(backends.len(), 2);
    let total_served: i64 = backends
        .iter()
        .map(|b| match b.field("served") {
            Some(Value::Int(n)) => *n,
            _ => 0,
        })
        .sum();
    assert_eq!(total_served, 4, "every routed request counted once");
    for b in &backends {
        assert!(
            !matches!(b.field("upstream"), Some(Value::Null) | None),
            "healthy backend carries its upstream stats snapshot"
        );
    }
    let gwstats = resp.result_field("gateway").expect("gateway section");
    assert_eq!(gwstats.field("routed"), Some(&Value::Int(4)));
    assert_eq!(gwstats.field("upstream_errors"), Some(&Value::Int(0)));

    // The gateway's own `stats` answers with the routing view.
    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    assert!(stats.ok);
    assert_eq!(
        stats.result_field("role"),
        Some(&Value::Str("gateway".to_owned()))
    );

    gw.shutdown();
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn gateway_shutdown_request_drains_but_leaves_backends_running() {
    let b0 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0)], 1)).expect("start gateway");
    let mut c = connect(&gw);
    let resp = c.call(&Request::new(RequestKind::Shutdown)).unwrap();
    assert!(resp.ok);
    gw.join();

    // The backend is untouched: still answers directly.
    let mut direct =
        Client::connect_within(&b0.addr().to_string(), Duration::from_secs(5)).unwrap();
    let resp = direct
        .call(&timing_request(1, &write_cdfg(&iir4_parallel())))
        .unwrap();
    assert!(resp.ok, "backend survives gateway shutdown");
    b0.shutdown();
}

#[test]
fn malformed_lines_get_the_same_typed_error_as_a_backend() {
    let b0 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0)], 1)).expect("start gateway");

    let mut via_gw = connect(&gw);
    let mut direct =
        Client::connect_within(&b0.addr().to_string(), Duration::from_secs(5)).unwrap();
    for bad in ["not json", r#"{"id":1}"#, r#"{"kind":"explode"}"#] {
        via_gw.send_line(bad).unwrap();
        direct.send_line(bad).unwrap();
        assert_eq!(
            via_gw.recv_line().unwrap(),
            direct.recv_line().unwrap(),
            "malformed `{bad}` diverged"
        );
    }

    gw.shutdown();
    b0.shutdown();
}

#[test]
fn binary_clients_relay_through_the_gateway_byte_identically() {
    let b0 = start_backend();
    let b1 = start_backend();
    let gw = localwm_gateway::start(fast_config(vec![spec("b0", &b0), spec("b1", &b1)], 2))
        .expect("start gateway");
    let addr = gw.addr().to_string();

    let mut json = connect(&gw);
    let mut bin =
        Client::connect_binary_within(&addr, Duration::from_secs(5)).expect("binary connect");
    for (i, design) in designs().iter().enumerate() {
        let req = timing_request(i as u64, design);
        json.send(&req).unwrap();
        let reference = json.recv_line().unwrap();
        bin.send(&req).unwrap();
        assert_eq!(
            bin.recv_line().unwrap(),
            reference,
            "design {i}: gateway binary relay diverged from JSON"
        );
    }
    // A typed error relays byte-identically too.
    let mut bad = Request::new(RequestKind::Timing);
    bad.id = Some(99);
    bad.design = Some("not a cdfg".to_owned());
    json.send(&bad).unwrap();
    let reference = json.recv_line().unwrap();
    assert!(reference.contains("\"ok\":false"));
    bin.send(&bad).unwrap();
    assert_eq!(bin.recv_line().unwrap(), reference);

    // cluster_stats aggregates the fleet's store and protocol blocks, and
    // the gateway's own stats count this client edge's encoding split.
    let cluster = bin.call(&Request::new(RequestKind::ClusterStats)).unwrap();
    assert!(cluster.ok);
    let aggregate = cluster.result_field("aggregate").expect("aggregate");
    let store = aggregate.field("store").expect("aggregate store block");
    assert_eq!(
        store.field("mounted"),
        Some(&Value::Int(0)),
        "these backends run memory-only"
    );
    let protocol = aggregate.field("protocol").expect("aggregate protocol");
    assert!(matches!(protocol.field("json_requests"), Some(&Value::Int(n)) if n > 0));
    let gw_stats = cluster
        .result_field("gateway")
        .expect("gateway stats")
        .field("protocol")
        .expect("gateway protocol block")
        .clone();
    assert_eq!(gw_stats.field("json_conns"), Some(&Value::Int(1)));
    assert_eq!(gw_stats.field("binary_conns"), Some(&Value::Int(1)));
    assert_eq!(gw_stats.field("json_requests"), Some(&Value::Int(5)));
    assert_eq!(
        gw_stats.field("binary_requests"),
        Some(&Value::Int(6)),
        "4 timing + bad request + this cluster_stats call"
    );

    gw.shutdown();
    b0.shutdown();
    b1.shutdown();
}

#[test]
fn store_backed_fleet_aggregates_store_stats_through_cluster_stats() {
    let dir = std::env::temp_dir().join(format!("localwm-gw-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let backend = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 32,
        cache_cap: 8,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
        ..ServeConfig::default()
    })
    .expect("bind store-backed backend");
    let gw =
        localwm_gateway::start(fast_config(vec![spec("b0", &backend)], 1)).expect("start gateway");

    let mut c = connect(&gw);
    let design = write_cdfg(&iir4_parallel());
    assert!(c.call(&timing_request(1, &design)).unwrap().ok);

    let cluster = c.call(&Request::new(RequestKind::ClusterStats)).unwrap();
    let store = cluster
        .result_field("aggregate")
        .expect("aggregate")
        .field("store")
        .expect("store block")
        .clone();
    assert_eq!(store.field("mounted"), Some(&Value::Int(1)));
    assert_eq!(
        store.field("records"),
        Some(&Value::Int(2)),
        "design + alias written through on the parse miss"
    );
    assert!(matches!(store.field("bytes"), Some(&Value::Int(n)) if n > 0));

    gw.shutdown();
    backend.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
