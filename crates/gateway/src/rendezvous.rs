//! Rendezvous (highest-random-weight) hashing.
//!
//! Every `(shard key, backend name)` pair gets a deterministic score;
//! a key's backends are ranked by descending score. The property that
//! matters operationally: **membership changes are minimal**. Removing a
//! backend only remaps the keys that ranked it first (they fall through to
//! their second-ranked backend, which was already their failover target);
//! adding one only claims the keys on which the newcomer scores highest.
//! There is no ring to rebalance and no token table to persist — the
//! ranking is a pure function of the key and the backend *names*, so it is
//! stable across gateway restarts and independent of backend addresses
//! (which may change when a backend is restarted elsewhere).

/// FNV-1a over raw bytes — the same hash family the serve cache uses for
/// its text aliases, kept dependency-free here.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// One SplitMix64 draw: decorrelates the combined key/backend hash so
/// neighboring keys don't produce correlated rankings.
fn mix(z: u64) -> u64 {
    localwm_prng::SplitMix64::new(z).next_u64()
}

/// The HRW score of `backend` for `key`. Higher wins.
pub fn score(key: u64, backend: &str) -> u64 {
    mix(key ^ fnv1a(backend.as_bytes()).rotate_left(32))
}

/// Backend indices ranked for `key`: highest score first, ties broken by
/// name so the ranking is total and platform-independent.
pub fn rank(key: u64, names: &[String]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..names.len()).collect();
    order.sort_by(|&a, &b| {
        score(key, &names[b])
            .cmp(&score(key, &names[a]))
            .then_with(|| names[a].cmp(&names[b]))
    });
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn names(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("backend-{i}")).collect()
    }

    #[test]
    fn ranking_is_deterministic_and_total() {
        let ns = names(5);
        for key in 0..64u64 {
            let a = rank(key, &ns);
            let b = rank(key, &ns);
            assert_eq!(a, b);
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..5).collect::<Vec<_>>(), "a permutation");
        }
    }

    #[test]
    fn removing_a_backend_only_remaps_its_own_keys() {
        let full = names(4);
        // Drop backend-2; survivors keep their names.
        let reduced: Vec<String> = full.iter().filter(|n| *n != "backend-2").cloned().collect();
        let mut moved = 0;
        for key in 0..512u64 {
            let before = rank(key, &full);
            let after = rank(key, &reduced);
            let before_primary = &full[before[0]];
            let after_primary = &reduced[after[0]];
            if before_primary == "backend-2" {
                moved += 1;
                // Keys that lose their primary fall through to their old
                // second choice — exactly the failover target.
                assert_eq!(after_primary, &full[before[1]]);
            } else {
                assert_eq!(before_primary, after_primary, "key {key} moved needlessly");
            }
        }
        assert!(moved > 0, "some keys must have mapped to the removed node");
    }

    #[test]
    fn distribution_is_roughly_balanced() {
        let ns = names(4);
        let mut counts = [0usize; 4];
        for key in 0..4000u64 {
            counts[rank(mix(key), &ns)[0]] += 1;
        }
        for &c in &counts {
            assert!(
                (600..=1400).contains(&c),
                "primary counts badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn score_depends_on_both_key_and_backend() {
        assert_ne!(score(1, "a"), score(2, "a"));
        assert_ne!(score(1, "a"), score(1, "b"));
    }
}
