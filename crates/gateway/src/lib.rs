//! `localwm-gateway`: a sharded, replicated routing tier over multiple
//! `localwm-serve` backends.
//!
//! The gateway speaks the same JSON-lines protocol as a single backend and
//! is byte-transparent for data requests: the client's request line is
//! forwarded verbatim to one backend, and the backend's response line is
//! relayed verbatim back — so a gateway in front of N backends produces
//! responses byte-identical to a direct single-backend connection (the
//! differential oracle in `localwm-testkit` asserts exactly that).
//!
//! The moving parts:
//!
//! * [`rendezvous`] — highest-random-weight (HRW) hashing: each request is
//!   keyed by its design's
//!   [`DesignContext::content_hash`](localwm_engine::DesignContext), and
//!   backends are ranked per key by a deterministic score. Adding or
//!   removing a backend only remaps the keys that scored it highest —
//!   every other shard assignment is untouched.
//! * [`pool`] — one persistent connection pool per backend (keep-alive
//!   [`Client`](localwm_serve::Client)s), plus health state and
//!   per-backend counters and latency histograms.
//! * [`server`] — the accept loop, the routing/failover state machine
//!   (capped exponential backoff retries per backend, then failover to the
//!   next-ranked replica, then a typed `upstream_unavailable` error once
//!   every replica is exhausted), periodic health probes, the
//!   `cluster_stats` aggregation, and graceful drain-on-shutdown.
//!
//! Admin kinds are answered by the gateway itself: `stats` reports
//! gateway-local routing counters, `cluster_stats` fans out to every
//! backend and aggregates their histograms and gauges (queue depth, busy
//! workers), and `shutdown` drains in-flight routing before acking. The
//! backends' own lifecycles are *not* coupled to the gateway's: shutting
//! the gateway down leaves every backend running.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod rendezvous;
pub mod server;

pub use pool::{BackendSpec, PoolStats};
pub use server::{start, GatewayConfig, GatewayHandle, RouteRecord};
