//! Per-backend state: the persistent connection pool, health tracking,
//! and per-backend routing counters and latency histograms.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use localwm_serve::{Client, Metrics, Outcome, RequestKind};
use serde::{Serialize, Value};

/// One backend's identity: a stable shard `name` (the rendezvous-hash key
/// — survives restarts and address changes) and its current socket `addr`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendSpec {
    /// Stable shard identity; what rendezvous hashing ranks.
    pub name: String,
    /// Current socket address, e.g. `127.0.0.1:7172`.
    pub addr: String,
}

impl BackendSpec {
    /// Parses one `--backends` element: `name=host:port` or a bare
    /// `host:port` (the address doubles as the shard name).
    ///
    /// # Errors
    ///
    /// Rejects empty names/addresses.
    pub fn parse(raw: &str) -> Result<Self, String> {
        let (name, addr) = match raw.split_once('=') {
            Some((n, a)) => (n, a),
            None => (raw, raw),
        };
        if name.trim().is_empty() || addr.trim().is_empty() {
            return Err(format!("bad backend spec `{raw}` (want [name=]host:port)"));
        }
        Ok(BackendSpec {
            name: name.trim().to_owned(),
            addr: addr.trim().to_owned(),
        })
    }
}

/// A pool-state snapshot for `cluster_stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Idle keep-alive connections currently parked.
    pub idle: usize,
    /// Connections dialed over the backend's lifetime.
    pub created: u64,
}

/// How many idle keep-alive connections a backend pool parks; beyond this
/// returned connections are simply dropped (closed).
const MAX_IDLE: usize = 8;

/// One backend as the gateway sees it: address, pool, health, counters.
pub struct Backend {
    /// Stable shard name (immutable; rendezvous identity).
    pub name: String,
    addr: Mutex<String>,
    idle: Mutex<Vec<Client>>,
    created: AtomicU64,
    healthy: AtomicBool,
    probe_failures: AtomicU64,
    /// Responses this backend served through the gateway.
    pub served: AtomicU64,
    /// Upstream call attempts (first tries + retries).
    pub attempts: AtomicU64,
    /// Attempts that failed with an I/O error.
    pub io_errors: AtomicU64,
    /// Same-backend re-attempts after a failed try.
    pub retries: AtomicU64,
    /// Per-kind latency histograms of calls served by this backend.
    pub latency: Metrics,
}

impl Backend {
    /// A healthy backend with an empty pool.
    pub fn new(spec: BackendSpec) -> Self {
        Backend {
            name: spec.name,
            addr: Mutex::new(spec.addr),
            idle: Mutex::new(Vec::new()),
            created: AtomicU64::new(0),
            healthy: AtomicBool::new(true),
            probe_failures: AtomicU64::new(0),
            served: AtomicU64::new(0),
            attempts: AtomicU64::new(0),
            io_errors: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            latency: Metrics::new(),
        }
    }

    /// The current upstream address.
    pub fn addr(&self) -> String {
        self.addr.lock().expect("addr lock").clone()
    }

    /// Points the backend at a new address (a restart elsewhere / service
    /// discovery update). The stale pool is dropped; health resets to
    /// healthy so the next request or probe re-validates the new address.
    /// Shard assignments do not move: rendezvous ranks by `name`.
    pub fn set_addr(&self, addr: &str) {
        *self.addr.lock().expect("addr lock") = addr.to_owned();
        self.idle.lock().expect("pool lock").clear();
        self.healthy.store(true, Ordering::SeqCst);
        self.probe_failures.store(0, Ordering::SeqCst);
    }

    /// Whether the last contact (probe or request) succeeded.
    pub fn is_healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Health-probe failures observed so far.
    pub fn probe_failures(&self) -> u64 {
        self.probe_failures.load(Ordering::SeqCst)
    }

    /// Pool snapshot for `cluster_stats`.
    pub fn pool_stats(&self) -> PoolStats {
        PoolStats {
            idle: self.idle.lock().expect("pool lock").len(),
            created: self.created.load(Ordering::SeqCst),
        }
    }

    /// A pooled connection, or a fresh dial on an empty pool.
    fn checkout(&self, recv_timeout: Duration) -> io::Result<Client> {
        if let Some(c) = self.idle.lock().expect("pool lock").pop() {
            return Ok(c);
        }
        let c = Client::connect(&self.addr())?;
        c.set_read_timeout(Some(recv_timeout))?;
        self.created.fetch_add(1, Ordering::SeqCst);
        Ok(c)
    }

    /// Parks a healthy connection for reuse (dropped when the pool is at
    /// [`MAX_IDLE`]).
    fn checkin(&self, client: Client) {
        let mut idle = self.idle.lock().expect("pool lock");
        if idle.len() < MAX_IDLE {
            idle.push(client);
        }
    }

    /// One upstream exchange: checkout (or dial), forward `line` verbatim,
    /// read one response line, park the connection. The counters are the
    /// caller's job — this is just the wire hop.
    ///
    /// # Errors
    ///
    /// Any socket failure; the connection involved is discarded, never
    /// re-pooled.
    pub fn exchange(&self, line: &str, recv_timeout: Duration) -> io::Result<String> {
        let mut client = self.checkout(recv_timeout)?;
        client.send_line(line)?;
        let resp = client.recv_line()?;
        self.checkin(client);
        Ok(resp)
    }

    /// A pipelined upstream exchange: checkout (or dial), forward every
    /// line verbatim in one buffered write, read the response lines back
    /// in request order, park the connection. One round trip for the whole
    /// burst — the serve side's ordered writer guarantees response `i`
    /// answers line `i`. Like [`Backend::exchange`], counters are the
    /// caller's job.
    ///
    /// # Errors
    ///
    /// Any socket failure; the connection involved is discarded, never
    /// re-pooled, and responses already read are lost — the caller falls
    /// back to routing each line individually.
    pub fn exchange_many(&self, lines: &[&str], recv_timeout: Duration) -> io::Result<Vec<String>> {
        let mut client = self.checkout(recv_timeout)?;
        let responses = client.pipeline_lines(lines)?;
        self.checkin(client);
        Ok(responses)
    }

    /// Marks the outcome of upstream contact for health bookkeeping.
    pub fn mark(&self, reachable: bool, probe: bool) {
        self.healthy.store(reachable, Ordering::SeqCst);
        if probe && !reachable {
            self.probe_failures.fetch_add(1, Ordering::SeqCst);
        }
    }

    /// Records one served response's latency under its request kind.
    pub fn record_served(&self, kind: RequestKind, latency: Duration, ok: bool) {
        self.served.fetch_add(1, Ordering::SeqCst);
        self.latency
            .record(kind, latency, if ok { Outcome::Ok } else { Outcome::Error });
    }

    /// The backend's `cluster_stats` entry (upstream snapshot added by the
    /// caller, which owns the fan-out).
    pub fn stats_value(&self) -> Vec<(String, Value)> {
        let pool = self.pool_stats();
        vec![
            ("name".to_owned(), Value::Str(self.name.clone())),
            ("addr".to_owned(), Value::Str(self.addr())),
            ("healthy".to_owned(), Value::Bool(self.is_healthy())),
            (
                "served".to_owned(),
                self.served.load(Ordering::SeqCst).to_value(),
            ),
            (
                "attempts".to_owned(),
                self.attempts.load(Ordering::SeqCst).to_value(),
            ),
            (
                "io_errors".to_owned(),
                self.io_errors.load(Ordering::SeqCst).to_value(),
            ),
            (
                "retries".to_owned(),
                self.retries.load(Ordering::SeqCst).to_value(),
            ),
            (
                "probe_failures".to_owned(),
                self.probe_failures().to_value(),
            ),
            (
                "pool".to_owned(),
                Value::Object(vec![
                    ("idle".to_owned(), pool.idle.to_value()),
                    ("created".to_owned(), pool.created.to_value()),
                ]),
            ),
            ("latency".to_owned(), self.latency.to_value()),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_spec_parses_both_forms() {
        let named = BackendSpec::parse("b0=127.0.0.1:7172").unwrap();
        assert_eq!(named.name, "b0");
        assert_eq!(named.addr, "127.0.0.1:7172");
        let bare = BackendSpec::parse("127.0.0.1:7173").unwrap();
        assert_eq!(bare.name, "127.0.0.1:7173");
        assert_eq!(bare.addr, "127.0.0.1:7173");
        assert!(BackendSpec::parse("=x").is_err());
        assert!(BackendSpec::parse("x=").is_err());
    }

    #[test]
    fn set_addr_clears_pool_and_resets_health() {
        let b = Backend::new(BackendSpec::parse("b0=127.0.0.1:1").unwrap());
        b.mark(false, true);
        assert!(!b.is_healthy());
        assert_eq!(b.probe_failures(), 1);
        b.set_addr("127.0.0.1:2");
        assert!(b.is_healthy());
        assert_eq!(b.addr(), "127.0.0.1:2");
        assert_eq!(b.probe_failures(), 0);
        assert_eq!(b.pool_stats().idle, 0);
    }

    #[test]
    fn exchange_against_a_dead_port_is_an_io_error() {
        // Port 1 on loopback: nothing listens there.
        let b = Backend::new(BackendSpec::parse("dead=127.0.0.1:1").unwrap());
        let err = b.exchange("{}", Duration::from_millis(200));
        assert!(err.is_err());
        assert_eq!(b.pool_stats().created, 0, "failed dial creates nothing");
    }
}
