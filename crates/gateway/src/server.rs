//! The gateway server: accept loop, routing/failover state machine,
//! health probes, `cluster_stats` aggregation, and graceful drain.
//!
//! Failover state machine, per data request:
//!
//! 1. Compute the shard key (the design's content hash; see
//!    [`shard_key`](Shared::shard_key)) and rank all backends with
//!    [`rendezvous::rank`]. The first `replicas` of that ranking are the
//!    request's candidate set — a stable per-shard replica group.
//! 2. Candidates currently marked healthy are tried first (the unhealthy
//!    ones stay in the set as a last resort; ordering within each class
//!    keeps rendezvous rank, so retries are deterministic).
//! 3. Each candidate gets `1 + max_retries` attempts; between attempts the
//!    gateway sleeps a capped exponential backoff
//!    (`min(backoff_base_ms << attempt, backoff_cap_ms)`).
//! 4. A candidate that exhausts its attempts is marked unhealthy and the
//!    request **fails over** to the next candidate.
//! 5. Only when every candidate is exhausted does the client get a typed
//!    `upstream_unavailable` error listing the backends tried — an
//!    accepted request is always answered, never silently dropped.
//!
//! A pipelining client gets the **burst relay**: complete request lines
//! the client already buffered join the current line as one burst (capped
//! at [`MAX_BURST`], never blocking), and consecutive data requests in the
//! burst that rank the same primary backend go upstream as a single
//! pipelined exchange — one round trip for the whole run. The fast path is
//! strictly opportunistic: any line it cannot serve (upstream I/O error,
//! drain refusal) re-enters the per-request failover state machine above,
//! and responses are always written back in request order. A lockstep
//! client degenerates to bursts of one, taking the classic path bytes-
//! for-bytes.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use localwm_cdfg::parse_cdfg;
use localwm_engine::DesignContext;
use localwm_serve::{
    ErrorCode, Metrics, Outcome, Request, RequestKind, Response, ServiceError, BINARY_MAGIC,
};
use localwm_store::binval::{decode_value, read_frame, value_to_bytes, write_frame};
use serde::{Serialize, Value};

use crate::pool::{Backend, BackendSpec};
use crate::rendezvous;

/// Gateway configuration (the CLI's `localwm gateway` flags).
#[derive(Debug, Clone)]
pub struct GatewayConfig {
    /// Bind address, e.g. `127.0.0.1:7272` (`:0` picks a free port).
    pub addr: String,
    /// The backend fleet this gateway routes over.
    pub backends: Vec<BackendSpec>,
    /// Replica-group size per shard: how many rendezvous-ranked backends a
    /// request may fail over across (clamped to the fleet size).
    pub replicas: usize,
    /// Same-backend retries after a failed attempt (so each candidate gets
    /// `1 + max_retries` attempts).
    pub max_retries: u32,
    /// First retry backoff in milliseconds; doubles per attempt.
    pub backoff_base_ms: u64,
    /// Backoff ceiling in milliseconds.
    pub backoff_cap_ms: u64,
    /// Read timeout applied to upstream calls.
    pub recv_timeout_ms: u64,
    /// Health-probe period; `None` disables the prober (the deterministic
    /// chaos harness does this so retry counts depend only on routing).
    pub health_interval_ms: Option<u64>,
    /// Keep a [`RouteRecord`] per routed request. Off by default (the
    /// trace grows without bound); the testkit turns it on to assert
    /// routing determinism and build golden transcripts.
    pub record_routes: bool,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            addr: "127.0.0.1:0".to_owned(),
            backends: Vec::new(),
            replicas: 2,
            max_retries: 2,
            backoff_base_ms: 10,
            backoff_cap_ms: 200,
            recv_timeout_ms: 30_000,
            health_interval_ms: Some(500),
            record_routes: false,
        }
    }
}

/// One routed request, as remembered when
/// [`GatewayConfig::record_routes`] is on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteRecord {
    /// Gateway-wide routing sequence number (0-based).
    pub index: u64,
    /// The request's correlation id, if it carried one.
    pub id: Option<u64>,
    /// The request kind's wire name.
    pub kind: String,
    /// The rendezvous shard key the request hashed to.
    pub key: u64,
    /// The backend that served it; `None` when every replica was exhausted
    /// and the client got `upstream_unavailable`.
    pub backend: Option<String>,
    /// Total upstream attempts spent on this request.
    pub attempts: u64,
    /// Candidates abandoned before the serving one (0 = primary served).
    pub failovers: u64,
}

impl RouteRecord {
    /// The record as a JSON object (what `localwm chaos --gateway` and the
    /// golden gateway transcript serialize).
    pub fn to_value(&self) -> Value {
        let mut fields = vec![("index".to_owned(), self.index.to_value())];
        if let Some(id) = self.id {
            fields.push(("id".to_owned(), id.to_value()));
        }
        fields.push(("kind".to_owned(), Value::Str(self.kind.clone())));
        fields.push(("key".to_owned(), self.key.to_value()));
        fields.push((
            "backend".to_owned(),
            match &self.backend {
                Some(b) => Value::Str(b.clone()),
                None => Value::Null,
            },
        ));
        fields.push(("attempts".to_owned(), self.attempts.to_value()));
        fields.push(("failovers".to_owned(), self.failovers.to_value()));
        Value::Object(fields)
    }
}

/// Shard-key memo size cap; past it the map is cleared (the memo is a pure
/// cache — losing it costs a re-parse, never correctness).
const KEY_MEMO_CAP: usize = 512;

struct Shared {
    cfg: GatewayConfig,
    backends: Vec<Arc<Backend>>,
    names: Vec<String>,
    /// text-FNV → content-hash shard-key memo, so repeated designs skip
    /// the parse on the routing path.
    key_memo: Mutex<HashMap<u64, u64>>,
    /// Gateway-side per-kind latency (client-observed, includes failover).
    metrics: Metrics,
    routed: AtomicU64,
    retries: AtomicU64,
    failovers: AtomicU64,
    upstream_errors: AtomicU64,
    inflight: AtomicU64,
    /// Client-side encoding counters. The gateway relays each client in
    /// its negotiated encoding; backend pools always speak JSON lines, so
    /// these count the client edge only.
    json_conns: AtomicU64,
    binary_conns: AtomicU64,
    json_requests: AtomicU64,
    binary_requests: AtomicU64,
    shutting_down: AtomicBool,
    stopped: AtomicBool,
    routes: Mutex<Vec<RouteRecord>>,
}

impl Shared {
    /// The rendezvous shard key for a request.
    ///
    /// Requests carrying a design hash to that design's
    /// [`DesignContext::content_hash`] — the *canonical* hash, so two
    /// spellings of the same design land on the same shard and hit the
    /// same backend's context cache. A raw text FNV memoizes the mapping;
    /// unparseable designs fall back to the text FNV (the backend will
    /// produce the error either way, deterministically). Design-free
    /// requests spread by kind and id.
    ///
    /// Session-scoped requests override all of that: they hash the session
    /// id alone, so `open`, every `mutate`/`timing`/`analyze` carrying the
    /// id, and `close` all land on the backend holding the session state.
    /// If that backend dies, the standard failover machinery retargets the
    /// shard's next replica — which does not hold the session and answers
    /// with a typed `session_expired`, telling the client to re-open; a
    /// session is never silently rebound to stale state.
    fn shard_key(&self, req: &Request) -> u64 {
        if let Some(session) = &req.session {
            return rendezvous::fnv1a(session.as_bytes());
        }
        let Some(text) = &req.design else {
            return rendezvous::fnv1a(req.kind.as_str().as_bytes()) ^ req.id.unwrap_or(0);
        };
        let alias = rendezvous::fnv1a(text.as_bytes());
        if let Some(&key) = self.key_memo.lock().expect("memo lock").get(&alias) {
            return key;
        }
        let key = match parse_cdfg(text) {
            Ok(graph) => DesignContext::new(graph).content_hash(),
            Err(_) => alias,
        };
        let mut memo = self.key_memo.lock().expect("memo lock");
        if memo.len() >= KEY_MEMO_CAP {
            memo.clear();
        }
        memo.insert(alias, key);
        key
    }

    /// The per-request candidate set: the first `replicas` backends of the
    /// rendezvous ranking, healthy ones first (rank order preserved within
    /// each class).
    fn candidates(&self, key: u64) -> Vec<usize> {
        let replicas = self.cfg.replicas.clamp(1, self.backends.len());
        let ranked = rendezvous::rank(key, &self.names);
        let group = &ranked[..replicas];
        let mut ordered: Vec<usize> = group
            .iter()
            .copied()
            .filter(|&i| self.backends[i].is_healthy())
            .collect();
        ordered.extend(
            group
                .iter()
                .copied()
                .filter(|&i| !self.backends[i].is_healthy()),
        );
        ordered
    }

    /// Routes one data request: forwards `raw` verbatim through the
    /// failover state machine and returns the raw response line to relay
    /// (upstream bytes untouched, or a locally-built typed error once
    /// every replica is exhausted).
    fn route(&self, raw: &str, req: &Request) -> String {
        let started = Instant::now();
        let key = self.shard_key(req);
        let candidates = self.candidates(key);
        let timeout = Duration::from_millis(self.cfg.recv_timeout_ms);
        let mut attempts_total: u64 = 0;
        let mut failovers: u64 = 0;
        let mut tried: Vec<String> = Vec::new();
        let index = self.routed.fetch_add(1, Ordering::SeqCst);

        for (rank_pos, &bi) in candidates.iter().enumerate() {
            let backend = &self.backends[bi];
            if rank_pos > 0 {
                failovers += 1;
                self.failovers.fetch_add(1, Ordering::SeqCst);
            }
            for attempt in 0..=self.cfg.max_retries {
                attempts_total += 1;
                backend.attempts.fetch_add(1, Ordering::SeqCst);
                match backend.exchange(raw, timeout) {
                    // A draining backend answers `shutting_down` on its
                    // still-open pooled connections: it is *declining* the
                    // work, so same-backend retries cannot help — fail over
                    // to the next replica immediately.
                    Ok(line) if is_drain_refusal(&line) => break,
                    Ok(line) => {
                        backend.mark(true, false);
                        // Sound shape check, not a parse: serve emits compact
                        // JSON, so the bytes `"ok":true` (unescaped quotes)
                        // can only be the top-level status field — any quote
                        // inside a string value is escaped to `\"`.
                        let ok = line.contains("\"ok\":true");
                        backend.record_served(req.kind, started.elapsed(), ok);
                        self.metrics.record(
                            req.kind,
                            started.elapsed(),
                            if ok { Outcome::Ok } else { Outcome::Error },
                        );
                        self.push_route(RouteRecord {
                            index,
                            id: req.id,
                            kind: req.kind.as_str().to_owned(),
                            key,
                            backend: Some(backend.name.clone()),
                            attempts: attempts_total,
                            failovers,
                        });
                        return line;
                    }
                    Err(_) => {
                        backend.io_errors.fetch_add(1, Ordering::SeqCst);
                        if attempt < self.cfg.max_retries {
                            backend.retries.fetch_add(1, Ordering::SeqCst);
                            self.retries.fetch_add(1, Ordering::SeqCst);
                            let ms = self
                                .cfg
                                .backoff_base_ms
                                .saturating_shl(attempt)
                                .min(self.cfg.backoff_cap_ms);
                            if ms > 0 {
                                std::thread::sleep(Duration::from_millis(ms));
                            }
                        }
                    }
                }
            }
            backend.mark(false, false);
            tried.push(backend.name.clone());
        }

        // Every replica exhausted: the one place the gateway speaks for a
        // data request, with the typed error the protocol reserves for it.
        self.upstream_errors.fetch_add(1, Ordering::SeqCst);
        self.metrics
            .record(req.kind, started.elapsed(), Outcome::Error);
        self.push_route(RouteRecord {
            index,
            id: req.id,
            kind: req.kind.as_str().to_owned(),
            key,
            backend: None,
            attempts: attempts_total,
            failovers,
        });
        let err = ServiceError::new(
            ErrorCode::UpstreamUnavailable,
            "all replicas for this shard are unreachable",
        )
        .with_detail(
            "backends_tried",
            Value::Array(tried.into_iter().map(Value::Str).collect()),
        )
        .with_detail("attempts", attempts_total.to_value());
        Response::failure(req.id, req.kind.as_str(), err).to_line()
    }

    /// Routes a read-ahead burst of data requests that all rank the same
    /// `primary` backend: one pipelined upstream exchange for the whole
    /// group, falling back to the per-request failover state machine
    /// ([`Shared::route`]) for any line the fast path could not serve.
    ///
    /// The burst attempt is strictly opportunistic — no same-backend
    /// retries at burst granularity, and a failed or drain-refused line
    /// re-enters `route` with its own candidate set — so the gateway's
    /// invariant (an accepted request is always answered, in order) is
    /// unchanged.
    fn route_group(&self, primary: usize, items: &[(&str, Request, u64)]) -> Vec<String> {
        let started = Instant::now();
        let backend = &self.backends[primary];
        let timeout = Duration::from_millis(self.cfg.recv_timeout_ms);
        let lines: Vec<&str> = items.iter().map(|(line, _, _)| *line).collect();
        backend
            .attempts
            .fetch_add(items.len() as u64, Ordering::SeqCst);
        match backend.exchange_many(&lines, timeout) {
            Ok(responses) => {
                backend.mark(true, false);
                items
                    .iter()
                    .zip(responses)
                    .map(|((line, req, key), resp)| {
                        if is_drain_refusal(&resp) {
                            // The backend declined the work; the per-request
                            // machinery fails over past it.
                            return self.route(line, req);
                        }
                        let ok = resp.contains("\"ok\":true");
                        backend.record_served(req.kind, started.elapsed(), ok);
                        self.metrics.record(
                            req.kind,
                            started.elapsed(),
                            if ok { Outcome::Ok } else { Outcome::Error },
                        );
                        let index = self.routed.fetch_add(1, Ordering::SeqCst);
                        self.push_route(RouteRecord {
                            index,
                            id: req.id,
                            kind: req.kind.as_str().to_owned(),
                            key: *key,
                            backend: Some(backend.name.clone()),
                            attempts: 1,
                            failovers: 0,
                        });
                        resp
                    })
                    .collect()
            }
            Err(_) => {
                backend
                    .io_errors
                    .fetch_add(items.len() as u64, Ordering::SeqCst);
                items
                    .iter()
                    .map(|(line, req, _)| self.route(line, req))
                    .collect()
            }
        }
    }

    fn push_route(&self, record: RouteRecord) {
        if self.cfg.record_routes {
            self.routes.lock().expect("routes lock").push(record);
        }
    }

    /// The gateway's own `stats` body (routing counters; backend detail
    /// lives under `cluster_stats`).
    fn stats_value(&self) -> Value {
        Value::Object(vec![
            ("role".to_owned(), Value::Str("gateway".to_owned())),
            ("uptime_ms".to_owned(), self.metrics.uptime_ms().to_value()),
            (
                "backends".to_owned(),
                (self.backends.len() as u64).to_value(),
            ),
            ("replicas".to_owned(), self.cfg.replicas.to_value()),
            (
                "routed".to_owned(),
                self.routed.load(Ordering::SeqCst).to_value(),
            ),
            (
                "retries".to_owned(),
                self.retries.load(Ordering::SeqCst).to_value(),
            ),
            (
                "failovers".to_owned(),
                self.failovers.load(Ordering::SeqCst).to_value(),
            ),
            (
                "upstream_errors".to_owned(),
                self.upstream_errors.load(Ordering::SeqCst).to_value(),
            ),
            (
                "inflight".to_owned(),
                self.inflight.load(Ordering::SeqCst).to_value(),
            ),
            (
                "protocol".to_owned(),
                Value::Object(vec![
                    (
                        "json_conns".to_owned(),
                        self.json_conns.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "binary_conns".to_owned(),
                        self.binary_conns.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "json_requests".to_owned(),
                        self.json_requests.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "binary_requests".to_owned(),
                        self.binary_requests.load(Ordering::SeqCst).to_value(),
                    ),
                ]),
            ),
            ("requests".to_owned(), self.metrics.to_value()),
        ])
    }

    /// The `cluster_stats` body: the gateway's routing view plus a live
    /// fan-out to every backend's `stats`, with fleet-wide gauge
    /// aggregates (queue depth, busy workers) summed across the backends
    /// that answered.
    fn cluster_stats_value(&self) -> Value {
        let probe = Request::new(RequestKind::Stats).to_line();
        let timeout = Duration::from_millis(self.cfg.recv_timeout_ms);
        let mut healthy: u64 = 0;
        let mut queue_depth: u64 = 0;
        let mut busy_workers: u64 = 0;
        let mut workers: u64 = 0;
        // Fleet-wide store aggregation: counters summed over the backends
        // that mounted a store, plus how many did.
        let mut stores_mounted: u64 = 0;
        let mut store_sums = [0u64; 6];
        const STORE_FIELDS: [&str; 6] = [
            "segments",
            "bytes",
            "records",
            "hits",
            "misses",
            "dropped_tail",
        ];
        // Fleet-wide encoding split, summed over the backends that
        // answered. The gateway's own client-edge counters live under
        // `gateway.protocol`; this block is the backends' view (which is
        // all-JSON today: backend pools relay in JSON lines regardless of
        // what the client negotiated).
        let mut protocol_sums = [0u64; 4];
        const PROTOCOL_FIELDS: [&str; 4] = [
            "json_conns",
            "binary_conns",
            "json_requests",
            "binary_requests",
        ];
        // Fleet-wide engine-pool activity (work-stealing counters) and
        // sharded-cache counters, summed over the backends that answered.
        // Cache sums are over each backend's aggregate view — the shard
        // breakdown stays per-backend under `backends[i].upstream.cache`.
        let mut pool_sums = [0u64; 5];
        const POOL_FIELDS: [&str; 5] = [
            "threads",
            "jobs",
            "steals",
            "cross_batch_steals",
            "park_wakeups",
        ];
        let mut cache_sums = [0u64; 5];
        const CACHE_FIELDS: [&str; 5] = ["hits", "misses", "evictions", "entries", "capacity"];
        let mut entries = Vec::with_capacity(self.backends.len());
        for backend in &self.backends {
            let upstream = match backend.exchange(&probe, timeout) {
                Ok(line) => {
                    backend.mark(true, false);
                    Response::from_line(&line).ok().and_then(|r| r.result)
                }
                Err(_) => {
                    backend.mark(false, false);
                    None
                }
            };
            if let Some(stats) = &upstream {
                healthy += 1;
                busy_workers += uint_field(stats.field("busy_workers"));
                workers += uint_field(stats.field("workers"));
                queue_depth += uint_field(stats.field("queue").and_then(|q| q.field("depth")));
                if let Some(store) = stats.field("store") {
                    stores_mounted += 1;
                    for (sum, name) in store_sums.iter_mut().zip(STORE_FIELDS) {
                        *sum += uint_field(store.field(name));
                    }
                }
                if let Some(protocol) = stats.field("protocol") {
                    for (sum, name) in protocol_sums.iter_mut().zip(PROTOCOL_FIELDS) {
                        *sum += uint_field(protocol.field(name));
                    }
                }
                if let Some(pool) = stats.field("pool") {
                    for (sum, name) in pool_sums.iter_mut().zip(POOL_FIELDS) {
                        *sum += uint_field(pool.field(name));
                    }
                }
                if let Some(cache) = stats.field("cache") {
                    for (sum, name) in cache_sums.iter_mut().zip(CACHE_FIELDS) {
                        *sum += uint_field(cache.field(name));
                    }
                }
            }
            let mut fields = backend.stats_value();
            fields.push(("upstream".to_owned(), upstream.unwrap_or(Value::Null)));
            entries.push(Value::Object(fields));
        }
        let mut store_fields = vec![("mounted".to_owned(), stores_mounted.to_value())];
        store_fields.extend(
            STORE_FIELDS
                .iter()
                .zip(store_sums)
                .map(|(name, sum)| ((*name).to_owned(), sum.to_value())),
        );
        let protocol_fields: Vec<(String, Value)> = PROTOCOL_FIELDS
            .iter()
            .zip(protocol_sums)
            .map(|(name, sum)| ((*name).to_owned(), sum.to_value()))
            .collect();
        let pool_fields: Vec<(String, Value)> = POOL_FIELDS
            .iter()
            .zip(pool_sums)
            .map(|(name, sum)| ((*name).to_owned(), sum.to_value()))
            .collect();
        let cache_fields: Vec<(String, Value)> = CACHE_FIELDS
            .iter()
            .zip(cache_sums)
            .map(|(name, sum)| ((*name).to_owned(), sum.to_value()))
            .collect();
        Value::Object(vec![
            ("gateway".to_owned(), self.stats_value()),
            (
                "aggregate".to_owned(),
                Value::Object(vec![
                    (
                        "backends".to_owned(),
                        (self.backends.len() as u64).to_value(),
                    ),
                    ("healthy".to_owned(), healthy.to_value()),
                    ("queue_depth".to_owned(), queue_depth.to_value()),
                    ("busy_workers".to_owned(), busy_workers.to_value()),
                    ("workers".to_owned(), workers.to_value()),
                    ("store".to_owned(), Value::Object(store_fields)),
                    ("protocol".to_owned(), Value::Object(protocol_fields)),
                    ("pool".to_owned(), Value::Object(pool_fields)),
                    ("cache".to_owned(), Value::Object(cache_fields)),
                ]),
            ),
            ("backends".to_owned(), Value::Array(entries)),
        ])
    }
}

/// Whether a relayed response line is a backend refusing work because it
/// is draining. Substring checks are sound here for the same reason as the
/// `"ok":true` probe: serve emits compact JSON, and any quote inside a
/// string value is escaped, so these byte patterns only occur as structure.
fn is_drain_refusal(line: &str) -> bool {
    line.contains("\"ok\":false") && line.contains("\"code\":\"shutting_down\"")
}

/// Reads an integer stats field defensively (absent → 0).
fn uint_field(v: Option<&Value>) -> u64 {
    match v {
        Some(Value::UInt(n)) => *n,
        Some(Value::Int(n)) => u64::try_from(*n).unwrap_or(0),
        _ => 0,
    }
}

/// Backoff shift that saturates instead of overflowing on large attempt
/// counts.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        self.checked_shl(shift).unwrap_or(u64::MAX)
    }
}

/// A running gateway; dropping the handle does **not** stop it — call
/// [`GatewayHandle::join`] (wait for a `shutdown` request) or
/// [`GatewayHandle::shutdown`]. Stopping the gateway never touches the
/// backends' lifecycles.
pub struct GatewayHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl GatewayHandle {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the gateway stops (a `shutdown` request arrives or
    /// [`GatewayHandle::shutdown`] is called from another thread).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Programmatic graceful shutdown: refuses new work, waits for
    /// in-flight routing to finish, stops every thread.
    pub fn shutdown(self) {
        drain(&self.shared);
        self.shared.stopped.store(true, Ordering::SeqCst);
        self.join();
    }

    /// The recorded routing trace (empty unless
    /// [`GatewayConfig::record_routes`] is on).
    pub fn routing_trace(&self) -> Vec<RouteRecord> {
        self.shared.routes.lock().expect("routes lock").clone()
    }

    /// Points the named backend at a new address (a backend restarted on a
    /// different port). Returns `false` for an unknown name. Shard
    /// assignments are untouched: rendezvous ranks by name, not address.
    pub fn update_backend_addr(&self, name: &str, addr: &str) -> bool {
        match self.shared.backends.iter().find(|b| b.name == name) {
            Some(b) => {
                b.set_addr(addr);
                true
            }
            None => false,
        }
    }

    /// Current health flags by backend name (probe/routing view).
    pub fn backend_health(&self) -> Vec<(String, bool)> {
        self.shared
            .backends
            .iter()
            .map(|b| (b.name.clone(), b.is_healthy()))
            .collect()
    }
}

/// Starts a gateway; returns once the listener is bound and threads run.
///
/// # Errors
///
/// Fails on bind errors, an empty backend list, or duplicate backend
/// names (names are the rendezvous identity — duplicates would alias
/// shards).
pub fn start(cfg: GatewayConfig) -> io::Result<GatewayHandle> {
    if cfg.backends.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "gateway needs at least one backend",
        ));
    }
    let mut seen = std::collections::HashSet::new();
    for b in &cfg.backends {
        if !seen.insert(b.name.clone()) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("duplicate backend name `{}`", b.name),
            ));
        }
    }
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let backends: Vec<Arc<Backend>> = cfg
        .backends
        .iter()
        .map(|s| Arc::new(Backend::new(s.clone())))
        .collect();
    let names = backends.iter().map(|b| b.name.clone()).collect();
    let shared = Arc::new(Shared {
        backends,
        names,
        key_memo: Mutex::new(HashMap::new()),
        metrics: Metrics::new(),
        routed: AtomicU64::new(0),
        retries: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
        upstream_errors: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        json_conns: AtomicU64::new(0),
        binary_conns: AtomicU64::new(0),
        json_requests: AtomicU64::new(0),
        binary_requests: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        routes: Mutex::new(Vec::new()),
        cfg,
    });

    let mut threads = Vec::with_capacity(2);
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("localwm-gw-acceptor".to_owned())
                .spawn(move || acceptor_loop(&shared, &listener))
                .expect("spawn gateway acceptor"),
        );
    }
    if let Some(interval) = shared.cfg.health_interval_ms {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("localwm-gw-prober".to_owned())
                .spawn(move || prober_loop(&shared, Duration::from_millis(interval.max(10))))
                .expect("spawn gateway prober"),
        );
    }
    Ok(GatewayHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // Detached, like serve's readers: a conn thread exits on
                // client disconnect; the drain waits on the inflight
                // counter, not on threads.
                let _ = std::thread::Builder::new()
                    .name("localwm-gw-conn".to_owned())
                    .spawn(move || conn_loop(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Writes one response line re-encoded as a binary frame. Response lines
/// are our own (or a backend's) serializer output, so the re-parse cannot
/// fail; the frame carries the identical value tree.
fn send_frame(stream: &mut TcpStream, line: &str) {
    let value =
        serde_json::from_str_value(line).expect("response lines are valid JSON by construction");
    let _ = write_frame(stream, &value_to_bytes(&value));
}

/// Answers one decoded request line: the response line to relay, plus
/// whether the gateway should stop (a `shutdown` was acknowledged).
fn answer_line(shared: &Arc<Shared>, line: &str) -> (String, bool) {
    match Request::from_line(line) {
        Ok(req) => answer_parsed(shared, line, &req),
        Err(msg) => (bad_request_line(msg), false),
    }
}

/// The typed `bad_request` response line for an unparseable request —
/// same parser, same message, same shape a backend would produce, so
/// unparseable lines stay byte-identical too.
fn bad_request_line(msg: String) -> String {
    Response::failure(
        None,
        "invalid",
        ServiceError::new(ErrorCode::BadRequest, msg),
    )
    .to_line()
}

/// [`answer_line`] past the parse: answers an already-decoded request.
fn answer_parsed(shared: &Arc<Shared>, line: &str, req: &Request) -> (String, bool) {
    match req.kind {
        RequestKind::Stats => {
            let resp = Response::success(req.id, "stats", shared.stats_value());
            (resp.to_line(), false)
        }
        RequestKind::ClusterStats => {
            let resp = Response::success(req.id, "cluster_stats", shared.cluster_stats_value());
            (resp.to_line(), false)
        }
        RequestKind::Shutdown => {
            let drained = drain(shared);
            let body = Value::Object(vec![
                ("routed".to_owned(), drained.to_value()),
                (
                    "uptime_ms".to_owned(),
                    shared.metrics.uptime_ms().to_value(),
                ),
            ]);
            (Response::success(req.id, "shutdown", body).to_line(), true)
        }
        _ => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                let resp = Response::failure(
                    req.id,
                    req.kind.as_str(),
                    ServiceError::new(ErrorCode::ShuttingDown, "gateway is draining"),
                );
                return (resp.to_line(), false);
            }
            shared.inflight.fetch_add(1, Ordering::SeqCst);
            let resp_line = shared.route(line, req);
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            (resp_line, false)
        }
    }
}

/// How many read-ahead requests one burst may carry — the gateway-side
/// mirror of serve's pipeline window.
const MAX_BURST: usize = 8;

/// Whether a request takes the routed data path (as opposed to a control
/// kind the gateway answers itself).
fn is_data_kind(kind: RequestKind) -> bool {
    !matches!(
        kind,
        RequestKind::Stats | RequestKind::ClusterStats | RequestKind::Shutdown
    )
}

/// Answers a read-ahead burst of decoded lines in order: consecutive data
/// requests that rank the same primary backend are relayed upstream as
/// one pipelined exchange via [`Shared::route_group`]; everything else
/// (control kinds, parse errors, drain mode, singleton runs) takes the
/// per-line path unchanged. Returns the response lines in request order
/// plus the stop flag; lines after an acknowledged `shutdown` are
/// dropped, exactly as the lockstep loop never reads past one.
fn answer_burst(shared: &Arc<Shared>, burst: &[String]) -> (Vec<String>, bool) {
    let mut out = Vec::with_capacity(burst.len());
    let mut i = 0;
    while i < burst.len() {
        let req = match Request::from_line(&burst[i]) {
            Ok(req) => req,
            Err(msg) => {
                out.push(bad_request_line(msg));
                i += 1;
                continue;
            }
        };
        if !is_data_kind(req.kind) || shared.shutting_down.load(Ordering::SeqCst) {
            let (resp, stop) = answer_parsed(shared, &burst[i], &req);
            out.push(resp);
            if stop {
                return (out, true);
            }
            i += 1;
            continue;
        }
        // The maximal run of data requests sharing this request's primary
        // backend; each keeps its own shard key for records and fallback.
        let key = shared.shard_key(&req);
        let primary = shared.candidates(key)[0];
        let mut items: Vec<(&str, Request, u64)> = vec![(burst[i].as_str(), req, key)];
        let mut j = i + 1;
        while j < burst.len() {
            let Ok(next) = Request::from_line(&burst[j]) else {
                break;
            };
            if !is_data_kind(next.kind) {
                break;
            }
            let next_key = shared.shard_key(&next);
            if shared.candidates(next_key)[0] != primary {
                break;
            }
            items.push((burst[j].as_str(), next, next_key));
            j += 1;
        }
        shared
            .inflight
            .fetch_add(items.len() as u64, Ordering::SeqCst);
        if let [(line, req, _)] = items.as_slice() {
            out.push(shared.route(line, req));
        } else {
            out.extend(shared.route_group(primary, &items));
        }
        shared
            .inflight
            .fetch_sub(items.len() as u64, Ordering::SeqCst);
        i = j;
    }
    (out, false)
}

fn conn_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut write_half = stream;
    let mut reader = io::BufReader::new(read_half);
    // Encoding negotiation, mirroring the backends': a first line equal to
    // the magic switches this client to binary frames. The conversion
    // happens entirely at this edge — backend pools keep speaking JSON
    // lines, and both envelopes carry the same value trees.
    let mut first_line = String::new();
    let binary = match reader.read_line(&mut first_line) {
        Ok(n) if n > 0 => first_line.trim() == BINARY_MAGIC,
        _ => return,
    };
    if binary {
        shared.binary_conns.fetch_add(1, Ordering::SeqCst);
        binary_conn_loop(shared, &mut reader, &mut write_half);
        return;
    }
    shared.json_conns.fetch_add(1, Ordering::SeqCst);
    // The burst relay: each blocking read yields the head of a burst, and
    // complete lines the client already pipelined into our buffer join it
    // (capped at MAX_BURST, never blocking on a partial line). The whole
    // burst is answered in order and written back in one buffered write. A
    // lockstep client degenerates to bursts of one — same bytes, same
    // order, same per-line state machine.
    let mut head = Some(first_line.trim_end_matches(['\r', '\n']).to_owned());
    let mut burst: Vec<String> = Vec::new();
    let mut out_buf: Vec<u8> = Vec::new();
    loop {
        let line = match head.take() {
            Some(line) => line,
            None => {
                let mut line = String::new();
                match reader.read_line(&mut line) {
                    Ok(n) if n > 0 => {}
                    _ => break,
                }
                while line.ends_with('\n') || line.ends_with('\r') {
                    line.pop();
                }
                line
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        burst.clear();
        burst.push(line);
        while burst.len() < MAX_BURST && reader.buffer().contains(&b'\n') {
            let mut line = String::new();
            if reader.read_line(&mut line).is_err() {
                break;
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            if !line.trim().is_empty() {
                burst.push(line);
            }
        }
        shared
            .json_requests
            .fetch_add(burst.len() as u64, Ordering::SeqCst);
        let (responses, stop) = answer_burst(shared, &burst);
        out_buf.clear();
        for resp in &responses {
            out_buf.extend_from_slice(resp.as_bytes());
            out_buf.push(b'\n');
        }
        // A dead peer is the client's problem.
        let _ = write_half
            .write_all(&out_buf)
            .and_then(|()| write_half.flush());
        if stop {
            shared.stopped.store(true, Ordering::SeqCst);
            break;
        }
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
    }
}

/// The binary client edge: frames in, frames out, with each frame's value
/// tree re-rendered to a JSON line for the (JSON-speaking) routing path.
fn binary_conn_loop(
    shared: &Arc<Shared>,
    reader: &mut io::BufReader<TcpStream>,
    write_half: &mut TcpStream,
) {
    loop {
        let body = match read_frame(reader) {
            Ok(body) => body,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => {
                let resp = Response::failure(
                    None,
                    "invalid",
                    ServiceError::new(ErrorCode::BadRequest, format!("undecodable frame: {e}")),
                );
                send_frame(write_half, &resp.to_line());
                break;
            }
        };
        shared.binary_requests.fetch_add(1, Ordering::SeqCst);
        let line = match decode_value(&body) {
            Ok(value) => serde_json::to_string(&value).expect("value serialization is infallible"),
            Err(msg) => {
                let resp = Response::failure(
                    None,
                    "invalid",
                    ServiceError::new(ErrorCode::BadRequest, msg),
                );
                send_frame(write_half, &resp.to_line());
                continue;
            }
        };
        let (resp_line, stop) = answer_line(shared, &line);
        send_frame(write_half, &resp_line);
        if stop {
            shared.stopped.store(true, Ordering::SeqCst);
            break;
        }
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn prober_loop(shared: &Arc<Shared>, interval: Duration) {
    let probe = Request::new(RequestKind::Stats).to_line();
    let timeout = Duration::from_millis(shared.cfg.recv_timeout_ms);
    while !shared.stopped.load(Ordering::SeqCst) {
        for backend in &shared.backends {
            if shared.stopped.load(Ordering::SeqCst) {
                return;
            }
            let up = backend.exchange(&probe, timeout).is_ok();
            backend.mark(up, true);
        }
        std::thread::sleep(interval);
    }
}

/// Flips the draining flag, waits for in-flight routing to finish, and
/// returns the total requests routed. Never contacts the backends: a
/// gateway drain leaves the fleet running.
fn drain(shared: &Arc<Shared>) -> u64 {
    shared.shutting_down.store(true, Ordering::SeqCst);
    while shared.inflight.load(Ordering::SeqCst) > 0 {
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.routed.load(Ordering::SeqCst)
}
