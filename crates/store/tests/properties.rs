//! Property-based tests for the design store and the binary codec.
//!
//! Three invariants from the issue:
//!
//! * put/get over random CDFGs is identity (through the binary `Value`
//!   encoding used by the serve tier),
//! * reopening after truncating a segment at an *arbitrary* byte offset
//!   never panics and serves exactly the records before the cut,
//! * `compact` preserves the live key set byte-identically.

use std::fs;
use std::path::PathBuf;

use localwm_cdfg::generators::{layered, random_dag, LayeredConfig};
use localwm_cdfg::{write_cdfg, Cdfg};
use localwm_store::binval::{decode_value, value_to_bytes};
use localwm_store::segment::segment_file_name;
use localwm_store::{DesignStore, RecordKind, StoreConfig};
use proptest::prelude::*;
use serde::{Deserialize, Serialize};

fn tmp_dir(tag: &str, case: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "localwm-store-prop-{tag}-{}-{case}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A random design stored as its binary `Value` encoding comes back as
    /// the identical graph: same canonical text, same structure.
    #[test]
    fn put_get_over_random_cdfgs_is_identity(ops in 2usize..48, seed in 0u64..5000) {
        let g = layered(&LayeredConfig {
            ops,
            layers: (ops / 5).max(1),
            seed,
            ..Default::default()
        });
        let text = write_cdfg(&g);
        let key = fnv1a(text.as_bytes());
        let payload = value_to_bytes(&g.to_value());

        let dir = tmp_dir("identity", seed ^ ops as u64);
        let store = DesignStore::open(&dir).unwrap();
        prop_assert!(store.put(RecordKind::Design, key, &payload).unwrap());
        let back = store.get(RecordKind::Design, key).unwrap().unwrap();
        prop_assert_eq!(&back, &payload, "stored bytes are served verbatim");
        let decoded = Cdfg::from_value(&decode_value(&back).unwrap()).unwrap();
        prop_assert_eq!(write_cdfg(&decoded), text, "decoded graph is the same design");
        // And the identity survives a reopen from disk.
        drop(store);
        let store = DesignStore::open(&dir).unwrap();
        prop_assert_eq!(store.get(RecordKind::Design, key).unwrap().unwrap(), payload);
        fs::remove_dir_all(&dir).unwrap();
    }

    /// The binary codec round-trips arbitrary DAG serializations exactly,
    /// and re-rendering the decoded tree as JSON reproduces the original
    /// JSON byte-for-byte (the decode-equivalence the wire lane relies on).
    #[test]
    fn binary_value_codec_is_a_bijection(n in 2usize..40, p in 0.0f64..0.5, seed in 0u64..2000) {
        let g = random_dag(n, p, seed);
        let v = g.to_value();
        let back = decode_value(&value_to_bytes(&v)).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(serde_json::to_string(&back), serde_json::to_string(&v));
    }

    /// Truncating the one segment at *any* byte offset, then reopening,
    /// never panics: every record wholly before the cut is served, and the
    /// tear (when the cut is inside a record) is reported.
    #[test]
    fn reopen_after_arbitrary_truncation_never_panics(
        n_records in 1usize..12,
        cut_frac in 0.0f64..1.0,
        seed in 0u64..1000,
    ) {
        let dir = tmp_dir("truncate", seed ^ (n_records as u64) << 32);
        let mut payloads = Vec::new();
        {
            let store = DesignStore::open(&dir).unwrap();
            for k in 0..n_records as u64 {
                let payload = write_cdfg(&random_dag(2 + (k as usize % 6), 0.3, seed ^ k));
                store.put(RecordKind::Design, k, payload.as_bytes()).unwrap();
                payloads.push(payload);
            }
        }
        let path = dir.join(segment_file_name(0));
        let full = fs::read(&path).unwrap();
        let cut = (cut_frac * full.len() as f64) as usize;
        fs::write(&path, &full[..cut.min(full.len())]).unwrap();

        match DesignStore::open(&dir) {
            Ok(store) => {
                let s = store.stats();
                prop_assert!(s.records <= n_records as u64);
                prop_assert!(s.recovered == s.records);
                // Recovery is a prefix: record k is served iff k < records.
                for k in 0..n_records as u64 {
                    match store.get(RecordKind::Design, k).unwrap() {
                        Some(bytes) => {
                            prop_assert!(k < s.records);
                            prop_assert_eq!(&bytes, payloads[k as usize].as_bytes());
                        }
                        None => prop_assert!(k >= s.records),
                    }
                }
                // The cut either landed on a record boundary (clean) or
                // inside a record (reported as a dropped tail).
                let clean_end = cut >= full.len();
                if !clean_end && s.records < n_records as u64 {
                    prop_assert!(s.dropped_tail <= 1);
                }
            }
            // Cuts inside the 8-byte magic legitimately fail to open; the
            // invariant is only that nothing panics.
            Err(_) => prop_assert!(cut < 8),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    /// `compact` preserves the live key set and the exact payload bytes of
    /// every key, across multiple segments and a follow-up reopen.
    #[test]
    fn compact_preserves_live_keys_byte_identically(
        n_records in 1usize..30,
        seed in 0u64..1000,
    ) {
        let dir = tmp_dir("compact", seed ^ (n_records as u64) << 40);
        let store = DesignStore::open_with(&dir, StoreConfig { segment_max_bytes: 300 }).unwrap();
        let mut expect = Vec::new();
        for k in 0..n_records as u64 {
            let payload = write_cdfg(&random_dag(2 + (k as usize % 8), 0.25, seed ^ k));
            store.put(RecordKind::Design, k, payload.as_bytes()).unwrap();
            store.put(RecordKind::Alias, !k, &k.to_le_bytes()).unwrap();
            expect.push((k, payload));
        }
        let before = store.stats();
        let report = store.compact().unwrap();
        prop_assert_eq!(report.records, before.records);
        prop_assert_eq!(store.stats().records, before.records);
        for (k, payload) in &expect {
            prop_assert_eq!(
                store.get(RecordKind::Design, *k).unwrap().unwrap(),
                payload.as_bytes()
            );
            prop_assert_eq!(
                store.get(RecordKind::Alias, !*k).unwrap().unwrap(),
                k.to_le_bytes()
            );
        }
        prop_assert!(store.verify().unwrap().ok());
        drop(store);
        let store = DesignStore::open(&dir).unwrap();
        prop_assert_eq!(store.stats().records, before.records);
        for (k, payload) in &expect {
            prop_assert_eq!(
                store.get(RecordKind::Design, *k).unwrap().unwrap(),
                payload.as_bytes()
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
