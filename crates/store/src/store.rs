//! The durable, content-addressed design store.
//!
//! A [`DesignStore`] is a directory of append-only [segment](crate::segment)
//! files plus an in-memory index rebuilt by scanning every segment on open.
//! Keys are 64-bit content hashes; payloads are opaque bytes (the serve
//! tier stores binary-encoded designs and text-alias records). The store
//! is *content-addressed*: putting a key that is already present is a
//! no-op, so concurrent replicas converge on one record per design.
//!
//! Crash tolerance is the open-time scan: a torn or checksum-failing tail
//! record is dropped, counted in [`StoreStats::dropped_tail`], and the
//! segment is truncated back to its intact prefix before appends resume.

use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::segment::{
    parse_segment_file_name, scan_segment, segment_file_name, Segment, RECORD_HEADER_LEN,
};

#[cfg(feature = "fault-inject")]
use crate::fault::{StoreFaultAction, StoreFaultInjector, StoreFaultPlan, StorePoint};

/// The record kinds the serve tier stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// A design record: key = canonical content hash, payload = the
    /// binary-encoded design (see [`crate::binval`]).
    Design,
    /// An alias record: key = FNV-1a of the raw request text, payload =
    /// the 8-byte little-endian content hash it resolves to. Aliases let
    /// a byte-identical resend reach its design record without parsing.
    Alias,
}

impl RecordKind {
    /// Every kind, in tag order.
    pub const ALL: [RecordKind; 2] = [RecordKind::Design, RecordKind::Alias];

    /// The on-disk tag byte.
    pub fn tag(self) -> u8 {
        self as u8
    }

    /// Parses an on-disk tag byte.
    pub fn parse(tag: u8) -> Option<Self> {
        Self::ALL.into_iter().find(|k| k.tag() == tag)
    }

    /// A human-readable name (CLI `ls` output).
    pub fn as_str(self) -> &'static str {
        match self {
            RecordKind::Design => "design",
            RecordKind::Alias => "alias",
        }
    }
}

/// Store tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Roll to a fresh segment once the active one reaches this size.
    pub segment_max_bytes: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig {
            // Small enough that the corpus spans a handful of segments in
            // tests, large enough that production designs amortize the
            // per-file cost.
            segment_max_bytes: 8 * 1024 * 1024,
        }
    }
}

/// A counters snapshot for the `stats` request and the CLI.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Segment files on disk.
    pub segments: u64,
    /// Total segment bytes on disk.
    pub bytes: u64,
    /// Live indexed records.
    pub records: u64,
    /// Records appended since open.
    pub puts: u64,
    /// Gets that found their record.
    pub hits: u64,
    /// Gets that found nothing.
    pub misses: u64,
    /// Intact records recovered by the open-time scan.
    pub recovered: u64,
    /// Torn or checksum-failing tails dropped by the open-time scan.
    pub dropped_tail: u64,
    /// Reads that failed checksum or framing verification after open.
    pub checksum_failures: u64,
}

/// What [`DesignStore::verify`] found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VerifyReport {
    /// Segments walked.
    pub segments: u64,
    /// Intact records seen.
    pub records: u64,
    /// One message per segment whose scan hit corruption.
    pub corrupt: Vec<String>,
}

impl VerifyReport {
    /// True when every record in every segment verified.
    pub fn ok(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// What [`DesignStore::compact`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactReport {
    /// Live records carried over.
    pub records: u64,
    /// Segment count before / after.
    pub segments_before: u64,
    /// Segment count after compaction.
    pub segments_after: u64,
    /// Bytes on disk before compaction.
    pub bytes_before: u64,
    /// Bytes on disk after compaction.
    pub bytes_after: u64,
}

#[derive(Debug, Clone, Copy)]
struct Location {
    segment: u32,
    offset: u64,
    payload_len: u32,
}

struct Inner {
    dir: PathBuf,
    /// Every open segment by id; `active` names the one appends go to.
    segments: HashMap<u32, Segment>,
    active: u32,
    index: HashMap<(u8, u64), Location>,
}

/// The store; see the module docs.
pub struct DesignStore {
    inner: Mutex<Inner>,
    cfg: StoreConfig,
    puts: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    recovered: AtomicU64,
    dropped_tail: AtomicU64,
    checksum_failures: AtomicU64,
    #[cfg(feature = "fault-inject")]
    injector: Option<StoreFaultInjector>,
}

fn list_segment_ids(dir: &Path) -> io::Result<Vec<u32>> {
    let mut ids = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(id) = entry.file_name().to_str().and_then(parse_segment_file_name) {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    Ok(ids)
}

impl DesignStore {
    /// Opens (creating if needed) the store at `dir`, scanning every
    /// segment to rebuild the index. Torn tails are dropped, counted, and
    /// truncated away; they are not errors.
    ///
    /// # Errors
    ///
    /// Propagates directory and file I/O errors, and rejects files with a
    /// foreign magic header.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<DesignStore> {
        Self::open_with(dir, StoreConfig::default())
    }

    /// [`DesignStore::open`] with explicit tuning knobs.
    ///
    /// # Errors
    ///
    /// As [`DesignStore::open`].
    pub fn open_with(dir: impl AsRef<Path>, cfg: StoreConfig) -> io::Result<DesignStore> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let ids = list_segment_ids(&dir)?;
        let mut segments = HashMap::new();
        let mut index = HashMap::new();
        let mut recovered = 0u64;
        let mut dropped_tail = 0u64;
        for id in &ids {
            let path = dir.join(segment_file_name(*id));
            let (records, report) = scan_segment(&path)?;
            recovered += report.recovered;
            dropped_tail += report.dropped_tail;
            for r in records {
                // Later segments win on key collisions (content-addressed
                // keys make collisions identical payloads anyway).
                index.insert(
                    (r.kind, r.key),
                    Location {
                        segment: *id,
                        offset: r.offset,
                        payload_len: r.payload_len,
                    },
                );
            }
            // Reopening truncates the segment back to its intact prefix,
            // so dropped garbage can never interleave with fresh appends.
            segments.insert(*id, Segment::reopen(&dir, *id, report.good_len)?);
        }
        let active = match ids.last() {
            Some(&id) => id,
            None => {
                segments.insert(0, Segment::create(&dir, 0)?);
                0
            }
        };
        Ok(DesignStore {
            inner: Mutex::new(Inner {
                dir,
                segments,
                active,
                index,
            }),
            cfg,
            puts: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            recovered: AtomicU64::new(recovered),
            dropped_tail: AtomicU64::new(dropped_tail),
            checksum_failures: AtomicU64::new(0),
            #[cfg(feature = "fault-inject")]
            injector: None,
        })
    }

    /// [`DesignStore::open_with`] plus an armed storage fault plan. Only
    /// available with the `fault-inject` feature.
    ///
    /// # Errors
    ///
    /// As [`DesignStore::open`].
    #[cfg(feature = "fault-inject")]
    pub fn open_with_faults(
        dir: impl AsRef<Path>,
        cfg: StoreConfig,
        plan: &StoreFaultPlan,
    ) -> io::Result<DesignStore> {
        let mut store = Self::open_with(dir, cfg)?;
        store.injector = Some(StoreFaultInjector::from_plan(plan));
        Ok(store)
    }

    /// Appends one record unless `key` is already present (content
    /// addressing makes re-puts no-ops). Returns whether a record was
    /// actually written.
    ///
    /// # Errors
    ///
    /// Propagates write errors; the index is only updated on success.
    pub fn put(&self, kind: RecordKind, key: u64, payload: &[u8]) -> io::Result<bool> {
        let mut inner = self.inner.lock().expect("store lock");
        if inner.index.contains_key(&(kind.tag(), key)) {
            return Ok(false);
        }
        let record = Segment::encode_record(kind.tag(), key, payload);
        // Roll to a fresh segment when the active one is full (never roll
        // an empty segment: oversized records land alone instead).
        let roll = {
            let active = inner.segments.get(&inner.active).expect("active segment");
            active.len > RECORD_HEADER_LEN
                && active.len + record.len() as u64 > self.cfg.segment_max_bytes
        };
        if roll {
            let next = inner.active + 1;
            let seg = Segment::create(&inner.dir, next)?;
            inner.segments.insert(next, seg);
            inner.active = next;
        }
        let active_id = inner.active;
        let active = inner.segments.get_mut(&active_id).expect("active segment");
        #[cfg(feature = "fault-inject")]
        let offset = match self
            .injector
            .as_ref()
            .and_then(|i| i.check(StorePoint::Append))
        {
            Some(StoreFaultAction::ShortWrite) => {
                // A torn write: only a prefix of the record persists, but
                // the writer believes it succeeded — exactly what a crash
                // between page-cache write and flush looks like. The truth
                // surfaces on the next open as a dropped tail.
                active.append_bytes(&record[..record.len() / 2])?
            }
            Some(StoreFaultAction::ChecksumFlip) => {
                // Silent media corruption: one payload byte flips after
                // the checksum was computed.
                let mut bad = record.clone();
                let last = bad.len() - 1;
                bad[last] ^= 0x01;
                active.append_bytes(&bad)?
            }
            _ => active.append_bytes(&record)?,
        };
        #[cfg(not(feature = "fault-inject"))]
        let offset = active.append_bytes(&record)?;
        inner.index.insert(
            (kind.tag(), key),
            Location {
                segment: active_id,
                offset,
                payload_len: payload.len() as u32,
            },
        );
        self.puts.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Reads and checksum-verifies the record for `key`, if present.
    ///
    /// # Errors
    ///
    /// Read and verification failures are errors (and counted in
    /// [`StoreStats::checksum_failures`] when they are corruption, not
    /// plumbing); an absent key is `Ok(None)`.
    pub fn get(&self, kind: RecordKind, key: u64) -> io::Result<Option<Vec<u8>>> {
        let mut inner = self.inner.lock().expect("store lock");
        let Some(loc) = inner.index.get(&(kind.tag(), key)).copied() else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(None);
        };
        #[cfg(feature = "fault-inject")]
        if let Some(StoreFaultAction::ReadError) = self
            .injector
            .as_ref()
            .and_then(|i| i.check(StorePoint::Read))
        {
            return Err(io::Error::other("injected storage read error"));
        }
        let seg = inner
            .segments
            .get_mut(&loc.segment)
            .expect("indexed segment is open");
        match seg.read_record(loc.offset, loc.payload_len) {
            Ok(payload) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Ok(Some(payload))
            }
            Err(e) => {
                if matches!(
                    e.kind(),
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof
                ) {
                    self.checksum_failures.fetch_add(1, Ordering::Relaxed);
                }
                Err(e)
            }
        }
    }

    /// Whether `key` is indexed (no disk read).
    pub fn contains(&self, kind: RecordKind, key: u64) -> bool {
        self.inner
            .lock()
            .expect("store lock")
            .index
            .contains_key(&(kind.tag(), key))
    }

    /// Every indexed key of `kind`, sorted.
    pub fn keys(&self, kind: RecordKind) -> Vec<u64> {
        let inner = self.inner.lock().expect("store lock");
        let mut keys: Vec<u64> = inner
            .index
            .keys()
            .filter(|(t, _)| *t == kind.tag())
            .map(|(_, k)| *k)
            .collect();
        keys.sort_unstable();
        keys
    }

    /// Every live record as `(kind, key, payload_len)`, sorted — the CLI
    /// `ls` listing.
    pub fn records(&self) -> Vec<(RecordKind, u64, u32)> {
        let inner = self.inner.lock().expect("store lock");
        let mut out: Vec<(RecordKind, u64, u32)> = inner
            .index
            .iter()
            .filter_map(|(&(tag, key), loc)| {
                RecordKind::parse(tag).map(|k| (k, key, loc.payload_len))
            })
            .collect();
        out.sort_unstable();
        out
    }

    /// A counters snapshot.
    pub fn stats(&self) -> StoreStats {
        let inner = self.inner.lock().expect("store lock");
        StoreStats {
            segments: inner.segments.len() as u64,
            bytes: inner.segments.values().map(|s| s.len).sum(),
            records: inner.index.len() as u64,
            puts: self.puts.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            dropped_tail: self.dropped_tail.load(Ordering::Relaxed),
            checksum_failures: self.checksum_failures.load(Ordering::Relaxed),
        }
    }

    /// Scans every segment file in `dir` without opening the store — the
    /// non-destructive integrity walk behind `localwm store verify`.
    /// [`DesignStore::open`] *repairs*: it truncates a torn or
    /// checksum-failing tail back to the intact prefix, which would hide
    /// the damage from a post-open rescan. This walk never writes, so the
    /// corruption the next open would silently drop is reported instead.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is reported in the `Ok` report,
    /// not as an error.
    pub fn verify_dir(dir: impl AsRef<Path>) -> io::Result<VerifyReport> {
        let dir = dir.as_ref();
        let mut report = VerifyReport::default();
        for id in list_segment_ids(dir)? {
            let path = dir.join(segment_file_name(id));
            let (records, scan) = scan_segment(&path)?;
            report.segments += 1;
            report.records += records.len() as u64;
            if let Some(reason) = scan.drop_reason {
                report
                    .corrupt
                    .push(format!("{}: {reason}", segment_file_name(id)));
            }
        }
        Ok(report)
    }

    /// Re-scans every segment file from disk, verifying every record's
    /// checksum — the CLI `verify` walk. The in-memory index is not
    /// consulted, so this catches corruption behind already-indexed
    /// records too. (Corruption that predates this store's open was
    /// already truncated away by recovery; use [`DesignStore::verify_dir`]
    /// to audit a directory without repairing it.)
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; corruption is reported in the `Ok` report,
    /// not as an error.
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let inner = self.inner.lock().expect("store lock");
        let mut report = VerifyReport::default();
        let mut ids: Vec<u32> = inner.segments.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let path = inner.dir.join(segment_file_name(id));
            let (records, scan) = scan_segment(&path)?;
            report.segments += 1;
            report.records += records.len() as u64;
            if let Some(reason) = scan.drop_reason {
                report
                    .corrupt
                    .push(format!("{}: {reason}", segment_file_name(id)));
            }
        }
        Ok(report)
    }

    /// Rewrites every live record into fresh, densely packed segments and
    /// removes the old files. Records land sorted by `(kind, key)`, so a
    /// compacted store is a canonical function of its live key set; the
    /// bytes served for every key are unchanged.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors. The old segments are only removed after the
    /// replacement files are fully written.
    pub fn compact(&self) -> io::Result<CompactReport> {
        let mut inner = self.inner.lock().expect("store lock");
        let mut report = CompactReport {
            segments_before: inner.segments.len() as u64,
            bytes_before: inner.segments.values().map(|s| s.len).sum(),
            ..CompactReport::default()
        };
        // Read every live record while the old segments are still open.
        let mut keys: Vec<(u8, u64)> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        let mut live = Vec::with_capacity(keys.len());
        for (tag, key) in keys {
            let loc = inner.index[&(tag, key)];
            let seg = inner
                .segments
                .get_mut(&loc.segment)
                .expect("indexed segment is open");
            let payload = seg.read_record(loc.offset, loc.payload_len)?;
            live.push((tag, key, payload));
        }
        // Write the replacements under temporary names first.
        let dir = inner.dir.clone();
        let tmp_dir = dir.join("compact.tmp");
        let _ = fs::remove_dir_all(&tmp_dir);
        fs::create_dir_all(&tmp_dir)?;
        let mut new_id: u32 = 0;
        let mut seg = Segment::create(&tmp_dir, new_id)?;
        for (tag, key, payload) in &live {
            let record = Segment::encode_record(*tag, *key, payload);
            if seg.len > RECORD_HEADER_LEN
                && seg.len + record.len() as u64 > self.cfg.segment_max_bytes
            {
                new_id += 1;
                seg = Segment::create(&tmp_dir, new_id)?;
            }
            seg.append_bytes(&record)?;
        }
        drop(seg);
        // Swap: drop old handles, remove old files, move replacements in.
        let old_ids: Vec<u32> = inner.segments.keys().copied().collect();
        inner.segments.clear();
        inner.index.clear();
        for id in old_ids {
            fs::remove_file(dir.join(segment_file_name(id)))?;
        }
        for id in 0..=new_id {
            fs::rename(
                tmp_dir.join(segment_file_name(id)),
                dir.join(segment_file_name(id)),
            )?;
        }
        fs::remove_dir_all(&tmp_dir)?;
        // Rebuild the index by scanning what was just written.
        for id in 0..=new_id {
            let path = dir.join(segment_file_name(id));
            let (records, scan) = scan_segment(&path)?;
            for r in &records {
                inner.index.insert(
                    (r.kind, r.key),
                    Location {
                        segment: id,
                        offset: r.offset,
                        payload_len: r.payload_len,
                    },
                );
            }
            inner
                .segments
                .insert(id, Segment::reopen(&dir, id, scan.good_len)?);
        }
        inner.active = new_id;
        report.records = inner.index.len() as u64;
        report.segments_after = inner.segments.len() as u64;
        report.bytes_after = inner.segments.values().map(|s| s.len).sum();
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("localwm-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_round_trip_and_reput_is_a_noop() {
        let dir = tmp_dir("putget");
        let store = DesignStore::open(&dir).unwrap();
        assert!(store.put(RecordKind::Design, 7, b"payload-7").unwrap());
        assert!(!store.put(RecordKind::Design, 7, b"ignored").unwrap());
        assert!(
            store.put(RecordKind::Alias, 7, b"alias-7").unwrap(),
            "kinds have separate key spaces"
        );
        assert_eq!(
            store.get(RecordKind::Design, 7).unwrap().unwrap(),
            b"payload-7"
        );
        assert_eq!(
            store.get(RecordKind::Alias, 7).unwrap().unwrap(),
            b"alias-7"
        );
        assert_eq!(store.get(RecordKind::Design, 8).unwrap(), None);
        let s = store.stats();
        assert_eq!((s.puts, s.hits, s.misses, s.records), (2, 2, 1, 2));
        assert!(store.contains(RecordKind::Design, 7));
        assert!(!store.contains(RecordKind::Design, 8));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_rebuilds_the_index_from_disk() {
        let dir = tmp_dir("reopen");
        {
            let store = DesignStore::open(&dir).unwrap();
            for k in 0..20u64 {
                store
                    .put(RecordKind::Design, k, format!("payload-{k}").as_bytes())
                    .unwrap();
            }
        }
        let store = DesignStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.records, 20);
        assert_eq!(s.recovered, 20);
        assert_eq!(s.dropped_tail, 0);
        for k in 0..20u64 {
            assert_eq!(
                store.get(RecordKind::Design, k).unwrap().unwrap(),
                format!("payload-{k}").as_bytes()
            );
        }
        assert_eq!(store.keys(RecordKind::Design), (0..20).collect::<Vec<_>>());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_roll_at_the_size_threshold() {
        let dir = tmp_dir("roll");
        let store = DesignStore::open_with(
            &dir,
            StoreConfig {
                segment_max_bytes: 256,
            },
        )
        .unwrap();
        for k in 0..32u64 {
            store.put(RecordKind::Design, k, &[0xAB; 64]).unwrap();
        }
        let s = store.stats();
        assert!(
            s.segments > 1,
            "expected a roll, got {} segment(s)",
            s.segments
        );
        assert_eq!(s.records, 32);
        // Every record still readable across the roll.
        for k in 0..32u64 {
            assert_eq!(
                store.get(RecordKind::Design, k).unwrap().unwrap(),
                vec![0xAB; 64]
            );
        }
        // And across a reopen.
        drop(store);
        let store = DesignStore::open(&dir).unwrap();
        assert_eq!(store.stats().records, 32);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_on_disk_is_dropped_counted_and_overwritten() {
        let dir = tmp_dir("torn");
        {
            let store = DesignStore::open(&dir).unwrap();
            for k in 0..5u64 {
                store.put(RecordKind::Design, k, b"intact").unwrap();
            }
        }
        // Tear the last record by hand.
        let path = dir.join(segment_file_name(0));
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        let store = DesignStore::open(&dir).unwrap();
        let s = store.stats();
        assert_eq!(s.records, 4, "intact records survive");
        assert_eq!(s.recovered, 4);
        assert_eq!(s.dropped_tail, 1, "the tear is surfaced");
        for k in 0..4u64 {
            assert_eq!(
                store.get(RecordKind::Design, k).unwrap().unwrap(),
                b"intact"
            );
        }
        assert_eq!(store.get(RecordKind::Design, 4).unwrap(), None);
        // A fresh put of the dropped key lands cleanly.
        assert!(store.put(RecordKind::Design, 4, b"intact").unwrap());
        assert_eq!(
            store.get(RecordKind::Design, 4).unwrap().unwrap(),
            b"intact"
        );
        assert!(store.verify().unwrap().ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_reports_corruption_behind_indexed_records() {
        let dir = tmp_dir("verify");
        let store = DesignStore::open(&dir).unwrap();
        store.put(RecordKind::Design, 1, b"first-record").unwrap();
        store.put(RecordKind::Design, 2, b"second-record").unwrap();
        assert!(store.verify().unwrap().ok());
        // Flip a byte in the *first* record's payload on disk.
        let path = dir.join(segment_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let first_payload = 8 + RECORD_HEADER_LEN as usize;
        bytes[first_payload] ^= 0x10;
        fs::write(&path, &bytes).unwrap();
        let report = store.verify().unwrap();
        assert!(!report.ok());
        assert!(report.corrupt[0].contains("checksum"));
        // A get of the corrupted record fails loudly and is counted.
        assert!(store.get(RecordKind::Design, 1).is_err());
        assert_eq!(store.stats().checksum_failures, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_dir_reports_the_tail_corruption_that_open_would_repair() {
        let dir = tmp_dir("verify-dir");
        {
            let store = DesignStore::open(&dir).unwrap();
            store.put(RecordKind::Design, 1, b"first-record").unwrap();
            store.put(RecordKind::Design, 2, b"second-record").unwrap();
        }
        assert!(DesignStore::verify_dir(&dir).unwrap().ok());
        // Flip the last payload byte: the tail record's checksum breaks.
        let path = dir.join(segment_file_name(0));
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let len_before = fs::metadata(&path).unwrap().len();
        // The audit walk sees the corruption and leaves the file alone.
        let report = DesignStore::verify_dir(&dir).unwrap();
        assert_eq!(report.records, 1);
        assert!(!report.ok());
        assert!(report.corrupt[0].contains("checksum"));
        assert_eq!(fs::metadata(&path).unwrap().len(), len_before);
        // Opening the store repairs: the tail is truncated away, after
        // which a post-open rescan (instance verify) reports clean — the
        // reason the CLI audit must use `verify_dir`.
        let store = DesignStore::open(&dir).unwrap();
        assert_eq!(store.stats().dropped_tail, 1);
        assert!(store.verify().unwrap().ok());
        assert!(DesignStore::verify_dir(&dir).unwrap().ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_preserves_the_live_key_set_byte_identically() {
        let dir = tmp_dir("compact");
        let store = DesignStore::open_with(
            &dir,
            StoreConfig {
                segment_max_bytes: 200,
            },
        )
        .unwrap();
        let mut expect = Vec::new();
        for k in 0..24u64 {
            let payload = vec![k as u8; 16 + (k as usize % 7)];
            store.put(RecordKind::Design, k, &payload).unwrap();
            expect.push((k, payload));
        }
        store
            .put(RecordKind::Alias, 99, &7u64.to_le_bytes())
            .unwrap();
        let before = store.stats();
        let report = store.compact().unwrap();
        assert_eq!(report.records, before.records);
        assert_eq!(report.segments_before, before.segments);
        assert!(report.segments_after <= report.segments_before);
        for (k, payload) in &expect {
            assert_eq!(
                store.get(RecordKind::Design, *k).unwrap().unwrap(),
                *payload
            );
        }
        assert_eq!(
            store.get(RecordKind::Alias, 99).unwrap().unwrap(),
            7u64.to_le_bytes()
        );
        assert!(store.verify().unwrap().ok());
        // The compacted layout survives a reopen.
        drop(store);
        let store = DesignStore::open(&dir).unwrap();
        assert_eq!(store.stats().records, 25);
        for (k, payload) in &expect {
            assert_eq!(
                store.get(RecordKind::Design, *k).unwrap().unwrap(),
                *payload
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(feature = "fault-inject")]
    mod faults {
        use super::*;
        use crate::fault::{StoreFaultAction, StoreFaultPlan, StorePoint};

        #[test]
        fn injected_short_write_surfaces_as_a_dropped_tail_on_reopen() {
            let dir = tmp_dir("fault-short");
            {
                let plan =
                    StoreFaultPlan::single(StorePoint::Append, 4, StoreFaultAction::ShortWrite);
                let store =
                    DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).unwrap();
                for k in 0..5u64 {
                    store
                        .put(RecordKind::Design, k, format!("record-{k}").as_bytes())
                        .unwrap();
                }
            }
            let store = DesignStore::open(&dir).unwrap();
            let s = store.stats();
            assert_eq!(s.recovered, 4, "every intact record is served");
            assert_eq!(s.dropped_tail, 1, "the torn append is reported");
            for k in 0..4u64 {
                assert_eq!(
                    store.get(RecordKind::Design, k).unwrap().unwrap(),
                    format!("record-{k}").as_bytes()
                );
            }
            assert_eq!(store.get(RecordKind::Design, 4).unwrap(), None);
            fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn injected_checksum_flip_is_caught_by_get_and_verify() {
            let dir = tmp_dir("fault-flip");
            let plan =
                StoreFaultPlan::single(StorePoint::Append, 1, StoreFaultAction::ChecksumFlip);
            let store = DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).unwrap();
            store.put(RecordKind::Design, 1, b"clean").unwrap();
            store.put(RecordKind::Design, 2, b"flipped").unwrap();
            assert_eq!(store.get(RecordKind::Design, 1).unwrap().unwrap(), b"clean");
            assert!(store.get(RecordKind::Design, 2).is_err());
            assert_eq!(store.stats().checksum_failures, 1);
            assert!(!store.verify().unwrap().ok());
            fs::remove_dir_all(&dir).unwrap();
        }

        #[test]
        fn injected_read_error_fails_the_get_but_not_the_store() {
            let dir = tmp_dir("fault-read");
            let plan = StoreFaultPlan::single(StorePoint::Read, 0, StoreFaultAction::ReadError);
            let store = DesignStore::open_with_faults(&dir, StoreConfig::default(), &plan).unwrap();
            store.put(RecordKind::Design, 1, b"payload").unwrap();
            assert!(store.get(RecordKind::Design, 1).is_err());
            // The next read of the same record succeeds: the fault was
            // transient, the record is intact.
            assert_eq!(
                store.get(RecordKind::Design, 1).unwrap().unwrap(),
                b"payload"
            );
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}
