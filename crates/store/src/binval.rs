//! The deterministic binary [`Value`] codec and length-prefixed frame
//! format shared by segment payloads and the `LWMB1` wire protocol.
//!
//! Encoding (all integers little-endian):
//!
//! ```text
//! value  = tag payload
//! tag    = 0x00 null | 0x01 false | 0x02 true | 0x03 int | 0x04 uint |
//!          0x05 float | 0x06 str | 0x07 array | 0x08 object
//! int    = i64           (8 bytes)
//! uint   = u64           (8 bytes)
//! float  = f64 bits      (8 bytes; bit-exact, NaN payloads included)
//! str    = u32 len, utf-8 bytes
//! array  = u32 count, count * value
//! object = u32 count, count * (str value)    (field order preserved)
//! ```
//!
//! The codec is a *bijection* on the vendored `Value` tree: every variant
//! keeps its identity (`Int(5)` never comes back as `UInt(5)`, float bits
//! are preserved exactly, object field order survives). That bijectivity is
//! what makes the binary wire protocol decode-equivalent to JSON-lines —
//! both encodings are projections of the same `Value`, so re-rendering a
//! decoded frame with `serde_json::to_string` reproduces the JSON line
//! byte-for-byte.
//!
//! Frames wrap an encoded buffer for the wire: `u32` length, `u64` FNV-1a
//! checksum of the body, body bytes. [`read_frame`] verifies the checksum
//! and bounds the length, so a corrupt or hostile peer produces a typed
//! `InvalidData` error instead of a huge allocation or a garbage decode.

use std::io::{self, Read, Write};

use serde::Value;

/// Hard cap on a single frame body; anything larger is rejected before
/// allocation. Generous: the largest corpus design encodes to well under
/// a megabyte.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

const TAG_NULL: u8 = 0x00;
const TAG_FALSE: u8 = 0x01;
const TAG_TRUE: u8 = 0x02;
const TAG_INT: u8 = 0x03;
const TAG_UINT: u8 = 0x04;
const TAG_FLOAT: u8 = 0x05;
const TAG_STR: u8 = 0x06;
const TAG_ARRAY: u8 = 0x07;
const TAG_OBJECT: u8 = 0x08;

/// FNV-1a over `bytes` — the checksum used by frames and segment records.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Appends the binary encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::UInt(u) => {
            out.push(TAG_UINT);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Array(items) => {
            out.push(TAG_ARRAY);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(fields) => {
            out.push(TAG_OBJECT);
            out.extend_from_slice(&(fields.len() as u32).to_le_bytes());
            for (name, val) in fields {
                put_str(out, name);
                encode_value(val, out);
            }
        }
    }
}

/// The binary encoding of `v` as a fresh buffer.
pub fn value_to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_value(v, &mut out);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("truncated value: wanted {n} bytes at offset {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn str(&mut self) -> Result<String, String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| format!("invalid utf-8 in string: {e}"))
    }

    fn value(&mut self, depth: u32) -> Result<Value, String> {
        // Bound recursion so a hostile frame cannot overflow the stack.
        if depth > 128 {
            return Err("value nesting exceeds 128 levels".to_owned());
        }
        match self.u8()? {
            TAG_NULL => Ok(Value::Null),
            TAG_FALSE => Ok(Value::Bool(false)),
            TAG_TRUE => Ok(Value::Bool(true)),
            TAG_INT => Ok(Value::Int(self.u64()? as i64)),
            TAG_UINT => Ok(Value::UInt(self.u64()?)),
            TAG_FLOAT => Ok(Value::Float(f64::from_bits(self.u64()?))),
            TAG_STR => Ok(Value::Str(self.str()?)),
            TAG_ARRAY => {
                let n = self.u32()? as usize;
                // Cap the pre-allocation by what the buffer could possibly
                // hold (1 byte per element minimum).
                let mut items = Vec::with_capacity(n.min(self.buf.len() - self.pos));
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(Value::Array(items))
            }
            TAG_OBJECT => {
                let n = self.u32()? as usize;
                let mut fields = Vec::with_capacity(n.min(self.buf.len() - self.pos));
                for _ in 0..n {
                    let name = self.str()?;
                    let val = self.value(depth + 1)?;
                    fields.push((name, val));
                }
                Ok(Value::Object(fields))
            }
            tag => Err(format!("unknown value tag 0x{tag:02x}")),
        }
    }
}

/// Decodes one binary value, requiring the buffer to be fully consumed.
///
/// # Errors
///
/// Returns a message for truncation, trailing garbage, unknown tags,
/// invalid UTF-8, or excessive nesting.
pub fn decode_value(buf: &[u8]) -> Result<Value, String> {
    let mut c = Cursor { buf, pos: 0 };
    let v = c.value(0)?;
    if c.pos != buf.len() {
        return Err(format!(
            "trailing garbage: {} of {} bytes unconsumed",
            buf.len() - c.pos,
            buf.len()
        ));
    }
    Ok(v)
}

/// Writes one frame: `u32` body length, `u64` FNV-1a of the body, body.
///
/// # Errors
///
/// Propagates write errors; rejects bodies over [`MAX_FRAME_LEN`].
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    let header = frame_header(body)?;
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()
}

/// The 12-byte header ([`write_frame`]'s length + checksum prefix) for
/// `body`, computed separately so writers can put header and body on the
/// wire as two vectored slices instead of copying them into one buffer.
///
/// # Errors
///
/// Rejects bodies over [`MAX_FRAME_LEN`].
pub fn frame_header(body: &[u8]) -> io::Result<[u8; 12]> {
    let len = u32::try_from(body.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("frame body of {} bytes exceeds the cap", body.len()),
            )
        })?;
    let mut header = [0u8; 12];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&fnv1a(body).to_le_bytes());
    Ok(header)
}

/// Reads one frame body, verifying length bound and checksum.
///
/// # Errors
///
/// `UnexpectedEof` on a cleanly closed peer (zero bytes read),
/// `InvalidData` on oversized frames or checksum mismatches, and any
/// underlying read error otherwise.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Vec<u8>> {
    let mut body = Vec::new();
    read_frame_into(r, &mut body)?;
    Ok(body)
}

/// [`read_frame`] into a caller-owned buffer (cleared first), so a
/// connection loop reads every frame into one recycled allocation.
///
/// # Errors
///
/// Same conditions as [`read_frame`]; on error the buffer contents are
/// unspecified.
pub fn read_frame_into<R: Read>(r: &mut R, body: &mut Vec<u8>) -> io::Result<()> {
    let mut header = [0u8; 12];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let want = u64::from_le_bytes(header[4..].try_into().expect("8 header bytes"));
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        ));
    }
    body.clear();
    body.resize(len as usize, 0);
    r.read_exact(body)?;
    let got = fnv1a(body);
    if got != want {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame checksum mismatch: stored {want:016x}, computed {got:016x}"),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("id".to_owned(), Value::UInt(u64::MAX)),
            ("n".to_owned(), Value::Int(-42)),
            ("ok".to_owned(), Value::Bool(true)),
            ("x".to_owned(), Value::Float(0.1 + 0.2)),
            ("none".to_owned(), Value::Null),
            (
                "items".to_owned(),
                Value::Array(vec![
                    Value::Str("naïve".to_owned()),
                    Value::Bool(false),
                    Value::Object(vec![("k".to_owned(), Value::Int(i64::MIN))]),
                ]),
            ),
        ])
    }

    #[test]
    fn value_round_trips_exactly() {
        let v = sample();
        let bytes = value_to_bytes(&v);
        let back = decode_value(&bytes).unwrap();
        assert_eq!(back, v);
        // Variant identity is preserved, not just numeric equality.
        assert!(matches!(back.field("id"), Some(Value::UInt(_))));
        assert!(matches!(back.field("n"), Some(Value::Int(_))));
    }

    #[test]
    fn json_rendering_of_decoded_value_matches_the_original() {
        let v = sample();
        let back = decode_value(&value_to_bytes(&v)).unwrap();
        assert_eq!(serde_json::to_string(&back), serde_json::to_string(&v));
    }

    #[test]
    fn float_bits_survive_including_nan() {
        for f in [0.0, -0.0, 1.5e300, f64::NAN, f64::INFINITY, -1.0e-7] {
            let v = Value::Float(f);
            let back = decode_value(&value_to_bytes(&v)).unwrap();
            match back {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits()),
                other => panic!("decoded {other:?}"),
            }
        }
    }

    #[test]
    fn truncation_and_garbage_are_errors_not_panics() {
        let bytes = value_to_bytes(&sample());
        for cut in 0..bytes.len() {
            assert!(decode_value(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(decode_value(&padded).is_err(), "trailing byte accepted");
        assert!(decode_value(&[0xFF]).is_err(), "unknown tag accepted");
    }

    #[test]
    fn frames_round_trip_and_catch_corruption() {
        let body = value_to_bytes(&sample());
        let mut wire = Vec::new();
        write_frame(&mut wire, &body).unwrap();
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, body);
        // Flip one body byte: checksum must catch it.
        let mut bad = wire.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        let err = read_frame(&mut bad.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // Oversized length is rejected before allocation.
        let mut huge = wire;
        huge[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = read_frame(&mut huge.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn nesting_bound_rejects_hostile_frames() {
        let mut deep = Value::Null;
        for _ in 0..200 {
            deep = Value::Array(vec![deep]);
        }
        let bytes = value_to_bytes(&deep);
        assert!(decode_value(&bytes)
            .unwrap_err()
            .contains("nesting exceeds"));
    }
}
