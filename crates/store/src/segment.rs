//! Append-only segment files: the on-disk unit of the design store.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! segment  = header record*
//! header   = "LWMSEG1\n"                        (8 bytes)
//! record   = u32 payload_len                    (4 bytes)
//!            u8  kind                           (1 byte)
//!            u64 key                            (8 bytes)
//!            u64 checksum                       (8 bytes; FNV-1a over
//!                                               kind, key-LE, payload)
//!            payload                            (payload_len bytes)
//! ```
//!
//! Records are never rewritten in place; the only mutation is appending.
//! Crash tolerance comes from the open-time scan: a record whose header or
//! payload is cut short (a torn tail after power loss) or whose checksum
//! does not verify ends the scan for that segment. Everything before the
//! bad record is served; the bad record and anything after it are dropped
//! and counted, and the file is truncated back to the last good byte so
//! the next append cannot interleave with garbage.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::binval::fnv1a;

/// Magic bytes opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"LWMSEG1\n";

/// Bytes of record framing before the payload.
pub const RECORD_HEADER_LEN: u64 = 4 + 1 + 8 + 8;

/// Hard cap on one record payload (matches the frame cap).
pub const MAX_PAYLOAD_LEN: u32 = crate::binval::MAX_FRAME_LEN;

/// The file name of segment `id`.
pub fn segment_file_name(id: u32) -> String {
    format!("seg-{id:06}.lwm")
}

/// Parses a segment id out of a file name produced by
/// [`segment_file_name`].
pub fn parse_segment_file_name(name: &str) -> Option<u32> {
    let digits = name.strip_prefix("seg-")?.strip_suffix(".lwm")?;
    if digits.len() != 6 || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// The checksum a record carries: FNV-1a over kind, key and payload.
pub fn record_checksum(kind: u8, key: u64, payload: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(9 + payload.len());
    buf.push(kind);
    buf.extend_from_slice(&key.to_le_bytes());
    buf.extend_from_slice(payload);
    fnv1a(&buf)
}

/// Where one live record sits on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordMeta {
    /// Record kind byte.
    pub kind: u8,
    /// Record key.
    pub key: u64,
    /// Byte offset of the record header inside its segment.
    pub offset: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
}

/// What the open-time scan of one segment found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanReport {
    /// Intact records recovered from this segment.
    pub recovered: u64,
    /// 1 when a torn or checksum-failing tail was detected and dropped.
    pub dropped_tail: u64,
    /// Human-readable reason for the drop, when one happened.
    pub drop_reason: Option<String>,
    /// Byte length of the intact prefix (header included).
    pub good_len: u64,
}

/// Scans `path`, returning every intact record and the scan report.
///
/// # Errors
///
/// Propagates open/read errors and rejects a missing or foreign magic
/// header; torn tails are *not* errors — they are reported and dropped.
pub fn scan_segment(path: &Path) -> io::Result<(Vec<RecordMeta>, ScanReport)> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut magic = [0u8; 8];
    match file.read_exact(&mut magic) {
        Ok(()) if &magic == SEGMENT_MAGIC => {}
        Ok(()) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a localwm segment (bad magic)", path.display()),
            ));
        }
        Err(_) => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: shorter than the segment header", path.display()),
            ));
        }
    }
    let mut records = Vec::new();
    let mut report = ScanReport {
        good_len: SEGMENT_MAGIC.len() as u64,
        ..ScanReport::default()
    };
    let mut offset = SEGMENT_MAGIC.len() as u64;
    let mut header = [0u8; RECORD_HEADER_LEN as usize];
    loop {
        if offset == file_len {
            break; // clean end of segment
        }
        let drop = |reason: String, report: &mut ScanReport| {
            report.dropped_tail = 1;
            report.drop_reason = Some(reason);
        };
        if file_len - offset < RECORD_HEADER_LEN {
            drop(
                format!(
                    "torn record header at offset {offset}: {} of {RECORD_HEADER_LEN} bytes",
                    file_len - offset
                ),
                &mut report,
            );
            break;
        }
        file.read_exact(&mut header)?;
        let payload_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let kind = header[4];
        let key = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        let stored = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
        if payload_len > MAX_PAYLOAD_LEN {
            drop(
                format!("implausible payload length {payload_len} at offset {offset}"),
                &mut report,
            );
            break;
        }
        if file_len - offset - RECORD_HEADER_LEN < u64::from(payload_len) {
            drop(
                format!(
                    "torn payload at offset {offset}: {} of {payload_len} bytes",
                    file_len - offset - RECORD_HEADER_LEN
                ),
                &mut report,
            );
            break;
        }
        let mut payload = vec![0u8; payload_len as usize];
        file.read_exact(&mut payload)?;
        if record_checksum(kind, key, &payload) != stored {
            drop(
                format!("checksum mismatch at offset {offset} (kind {kind}, key {key:016x})"),
                &mut report,
            );
            break;
        }
        records.push(RecordMeta {
            kind,
            key,
            offset,
            payload_len,
        });
        report.recovered += 1;
        offset += RECORD_HEADER_LEN + u64::from(payload_len);
        report.good_len = offset;
    }
    Ok((records, report))
}

/// One segment open for appending (and reading records back).
pub struct Segment {
    /// Segment id (the number in the file name).
    pub id: u32,
    path: PathBuf,
    file: File,
    /// Current byte length (header plus every intact record).
    pub len: u64,
}

impl Segment {
    /// Creates a fresh segment file `id` in `dir`, writing the header.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write errors.
    pub fn create(dir: &Path, id: u32) -> io::Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let mut file = OpenOptions::new()
            .create_new(true)
            .read(true)
            .write(true)
            .open(&path)?;
        file.write_all(SEGMENT_MAGIC)?;
        file.flush()?;
        Ok(Segment {
            id,
            path,
            file,
            len: SEGMENT_MAGIC.len() as u64,
        })
    }

    /// Reopens an existing segment for appending, truncating it back to
    /// `good_len` (the intact prefix reported by [`scan_segment`]) so a
    /// torn tail can never interleave with fresh appends.
    ///
    /// # Errors
    ///
    /// Propagates open/truncate errors.
    pub fn reopen(dir: &Path, id: u32, good_len: u64) -> io::Result<Segment> {
        let path = dir.join(segment_file_name(id));
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        file.set_len(good_len)?;
        Ok(Segment {
            id,
            path,
            file,
            len: good_len,
        })
    }

    /// The segment's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Serializes one record into its on-disk byte form.
    pub fn encode_record(kind: u8, key: u64, payload: &[u8]) -> Vec<u8> {
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        buf.push(kind);
        buf.extend_from_slice(&key.to_le_bytes());
        buf.extend_from_slice(&record_checksum(kind, key, payload).to_le_bytes());
        buf.extend_from_slice(payload);
        buf
    }

    /// Appends `bytes` (an encoded record) verbatim, returning the record's
    /// offset. Callers build `bytes` with [`Segment::encode_record`]; the
    /// indirection exists so fault injection can truncate or corrupt the
    /// byte image exactly as a failing disk would.
    ///
    /// # Errors
    ///
    /// Propagates write errors.
    pub fn append_bytes(&mut self, bytes: &[u8]) -> io::Result<u64> {
        let offset = self.len;
        self.file.seek(SeekFrom::Start(offset))?;
        self.file.write_all(bytes)?;
        self.file.flush()?;
        self.len += bytes.len() as u64;
        Ok(offset)
    }

    /// Reads and checksum-verifies the record at `offset`.
    ///
    /// # Errors
    ///
    /// `InvalidData` on checksum or framing mismatch; read errors
    /// propagate.
    pub fn read_record(&mut self, offset: u64, payload_len: u32) -> io::Result<Vec<u8>> {
        self.file.seek(SeekFrom::Start(offset))?;
        let mut header = [0u8; RECORD_HEADER_LEN as usize];
        self.file.read_exact(&mut header)?;
        let stored_len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let kind = header[4];
        let key = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        let stored_sum = u64::from_le_bytes(header[13..21].try_into().expect("8 bytes"));
        if stored_len != payload_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record at offset {offset}: index says {payload_len} payload bytes, disk says {stored_len}"
                ),
            ));
        }
        let mut payload = vec![0u8; payload_len as usize];
        self.file.read_exact(&mut payload)?;
        if record_checksum(kind, key, &payload) != stored_sum {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("record at offset {offset}: checksum mismatch on read"),
            ));
        }
        Ok(payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("localwm-segment-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn file_names_round_trip() {
        assert_eq!(segment_file_name(7), "seg-000007.lwm");
        assert_eq!(parse_segment_file_name("seg-000007.lwm"), Some(7));
        assert_eq!(parse_segment_file_name("seg-7.lwm"), None);
        assert_eq!(parse_segment_file_name("seg-000007.tmp"), None);
        assert_eq!(parse_segment_file_name("other.lwm"), None);
    }

    #[test]
    fn append_scan_read_round_trip() {
        let dir = tmp_dir("roundtrip");
        let mut seg = Segment::create(&dir, 0).unwrap();
        let a = Segment::encode_record(0, 0xAAAA, b"alpha");
        let b = Segment::encode_record(1, 0xBBBB, b"beta-payload");
        let off_a = seg.append_bytes(&a).unwrap();
        let off_b = seg.append_bytes(&b).unwrap();
        assert_eq!(seg.read_record(off_a, 5).unwrap(), b"alpha");
        assert_eq!(seg.read_record(off_b, 12).unwrap(), b"beta-payload");

        let (records, report) = scan_segment(&dir.join(segment_file_name(0))).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].key, 0xAAAA);
        assert_eq!(records[1].kind, 1);
        assert_eq!(report.recovered, 2);
        assert_eq!(report.dropped_tail, 0);
        assert_eq!(report.good_len, seg.len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_dropped_and_reported_at_every_cut() {
        let dir = tmp_dir("torn");
        let mut seg = Segment::create(&dir, 0).unwrap();
        seg.append_bytes(&Segment::encode_record(0, 1, b"first"))
            .unwrap();
        let keep = seg.len;
        seg.append_bytes(&Segment::encode_record(0, 2, b"second"))
            .unwrap();
        let path = dir.join(segment_file_name(0));
        let full = std::fs::read(&path).unwrap();
        // A cut exactly at the record boundary is a clean end, not a tear.
        std::fs::write(&path, &full[..keep as usize]).unwrap();
        let (records, report) = scan_segment(&path).unwrap();
        assert_eq!((records.len(), report.dropped_tail), (1, 0));
        // Cut the second record anywhere inside: the first must survive
        // and the tear must be reported.
        for cut in keep as usize + 1..full.len() - 1 {
            std::fs::write(&path, &full[..cut]).unwrap();
            let (records, report) = scan_segment(&path).unwrap();
            assert_eq!(records.len(), 1, "cut at {cut}");
            assert_eq!(records[0].key, 1);
            assert_eq!(report.dropped_tail, 1, "cut at {cut}");
            assert_eq!(report.good_len, keep, "cut at {cut}");
            assert!(report.drop_reason.is_some());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checksum_ends_the_scan() {
        let dir = tmp_dir("corrupt");
        let mut seg = Segment::create(&dir, 0).unwrap();
        seg.append_bytes(&Segment::encode_record(0, 1, b"first"))
            .unwrap();
        let tail_off = seg.len;
        seg.append_bytes(&Segment::encode_record(0, 2, b"second"))
            .unwrap();
        let path = dir.join(segment_file_name(0));
        let mut bytes = std::fs::read(&path).unwrap();
        let flip = tail_off as usize + RECORD_HEADER_LEN as usize; // first payload byte of record 2
        bytes[flip] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let (records, report) = scan_segment(&path).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(report.dropped_tail, 1);
        assert!(report.drop_reason.unwrap().contains("checksum"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_rejected() {
        let dir = tmp_dir("foreign");
        let path = dir.join(segment_file_name(0));
        std::fs::write(&path, b"not a segment at all").unwrap();
        assert!(scan_segment(&path).is_err());
        std::fs::write(&path, b"abc").unwrap();
        assert!(scan_segment(&path).is_err(), "shorter than header");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_truncates_back_to_the_intact_prefix() {
        let dir = tmp_dir("reopen");
        let mut seg = Segment::create(&dir, 3).unwrap();
        seg.append_bytes(&Segment::encode_record(0, 1, b"keep"))
            .unwrap();
        let keep = seg.len;
        // Simulate a torn append: half a record lands.
        let torn = Segment::encode_record(0, 2, b"torn-record");
        seg.append_bytes(&torn[..torn.len() / 2]).unwrap();
        drop(seg);
        let path = dir.join(segment_file_name(3));
        let (_, report) = scan_segment(&path).unwrap();
        assert_eq!(report.good_len, keep);
        let mut seg = Segment::reopen(&dir, 3, report.good_len).unwrap();
        assert_eq!(seg.len, keep);
        // A fresh append lands cleanly where the torn bytes were.
        let off = seg
            .append_bytes(&Segment::encode_record(0, 9, b"fresh"))
            .unwrap();
        assert_eq!(off, keep);
        let (records, report) = scan_segment(&path).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(report.dropped_tail, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
