//! `localwm-store`: the durable, content-addressed design store and the
//! binary codec behind the `LWMB1` wire protocol.
//!
//! Two halves, one framing discipline:
//!
//! * [`DesignStore`] — a directory of append-only, checksummed
//!   [segment](segment) files keyed by 64-bit content hashes, with an
//!   in-memory index rebuilt by scanning the segments on open. Torn or
//!   corrupt tail records (crashes, flipped bits) are detected by
//!   per-record FNV-1a checksums, dropped cleanly, and surfaced in
//!   [`StoreStats`]. `localwm-serve` mounts this as a write-through tier
//!   under its context LRU (`--store-dir`), so a restarted replica
//!   warm-starts from disk instead of re-parsing every design from text.
//! * [`binval`] — a bijective binary encoding of the vendored `serde`
//!   `Value` tree plus a length-prefixed, checksummed frame format. The
//!   same encoding serves as segment payload (stored designs) and as the
//!   per-connection binary wire protocol a client negotiates by opening
//!   with the `LWMB1` magic line.
//!
//! Storage fault injection ([`fault`]) mirrors the serve-side seams: a
//! seeded plan of short writes, read errors and checksum flips, active
//! only when the crate is built with the `fault-inject` feature.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binval;
pub mod fault;
pub mod segment;
mod store;

pub use store::{CompactReport, DesignStore, RecordKind, StoreConfig, StoreStats, VerifyReport};
