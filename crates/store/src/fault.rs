//! Deterministic storage fault injection, mirroring the serve-side seams.
//!
//! Three storage faults real disks exhibit:
//!
//! * **Short write** — an append persists only a prefix of the record (a
//!   torn tail after power loss). The store believes the write succeeded;
//!   the truth surfaces on the next open as a recovered/dropped tail.
//! * **Read error** — a `get` fails with an I/O error even though the
//!   record is intact on disk.
//! * **Checksum flip** — one payload byte is corrupted in flight, so the
//!   record lands with a checksum that cannot verify (silent media
//!   corruption; caught by `get`, `verify` and the open-time scan).
//!
//! Plans are seeded with the same splitmix64 construction as the serve
//! fault plans: identical seeds produce identical schedules, and the
//! injector fires on deterministic per-point operation counters. The seams
//! in [`store`](crate::store) are only compiled with the `fault-inject`
//! feature; without it no injector can be installed.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Where in the store a fault can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StorePoint {
    /// A record append (faults: short write, checksum flip).
    Append,
    /// A record read (fault: injected I/O error).
    Read,
}

impl StorePoint {
    /// Every point, in order; indexes match [`StorePoint::index`].
    pub const ALL: [StorePoint; 2] = [StorePoint::Append, StorePoint::Read];

    /// A dense index for per-point tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            StorePoint::Append => "append",
            StorePoint::Read => "read",
        }
    }
}

/// What an injected storage fault does.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreFaultAction {
    /// Persist only this fraction (numerator of 1/2, 1/4, …) of the record
    /// bytes, then report success — a torn tail ([`StorePoint::Append`]).
    ShortWrite,
    /// Corrupt one payload byte after the checksum was computed
    /// ([`StorePoint::Append`]).
    ChecksumFlip,
    /// Fail the read with an injected I/O error ([`StorePoint::Read`]).
    ReadError,
}

impl StoreFaultAction {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            StoreFaultAction::ShortWrite => "short_write",
            StoreFaultAction::ChecksumFlip => "checksum_flip",
            StoreFaultAction::ReadError => "read_error",
        }
    }
}

/// One planned storage fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreFaultSpec {
    /// Which point this fault arms.
    pub point: StorePoint,
    /// Zero-based operation index at that point.
    pub at_index: u64,
    /// What happens when it fires.
    pub action: StoreFaultAction,
}

/// A deterministic, seeded schedule of storage faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreFaultPlan {
    /// The generating seed (0 for hand-built plans).
    pub seed: u64,
    /// The armed faults, sorted by `(point, at_index)`.
    pub faults: Vec<StoreFaultSpec>,
}

/// Splitmix64, byte-identical to the serve-side generator.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StoreFaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn empty() -> Self {
        StoreFaultPlan {
            seed: 0,
            faults: Vec::new(),
        }
    }

    /// A plan with a single armed fault.
    pub fn single(point: StorePoint, at_index: u64, action: StoreFaultAction) -> Self {
        StoreFaultPlan {
            seed: 0,
            faults: vec![StoreFaultSpec {
                point,
                at_index,
                action,
            }],
        }
    }

    /// Generates a plan from `seed`: up to `per_point` faults per point
    /// with indices drawn from `[0, horizon)`. Identical arguments always
    /// produce the identical plan.
    pub fn generate(seed: u64, horizon: u64, per_point: usize) -> Self {
        let mut state = seed ^ 0x5E6D_E27F_AB17_5EED;
        let mut faults = Vec::new();
        for point in StorePoint::ALL {
            let mut used = Vec::new();
            for _ in 0..per_point {
                let at_index = splitmix(&mut state) % horizon.max(1);
                let roll = splitmix(&mut state);
                if used.contains(&at_index) {
                    continue; // collisions are dropped, deterministically
                }
                used.push(at_index);
                let action = match point {
                    StorePoint::Append => {
                        if roll & 1 == 0 {
                            StoreFaultAction::ShortWrite
                        } else {
                            StoreFaultAction::ChecksumFlip
                        }
                    }
                    StorePoint::Read => StoreFaultAction::ReadError,
                };
                faults.push(StoreFaultSpec {
                    point,
                    at_index,
                    action,
                });
            }
        }
        faults.sort_by_key(|f| (f.point, f.at_index));
        StoreFaultPlan { seed, faults }
    }
}

/// One storage fault that actually fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredStoreFault {
    /// The point that fired.
    pub point: StorePoint,
    /// The operation index at which it fired.
    pub index: u64,
    /// The action performed.
    pub action: StoreFaultAction,
}

/// The runtime side of a [`StoreFaultPlan`]: per-point counters, the armed
/// table, and a trace of everything that fired.
pub struct StoreFaultInjector {
    armed: [HashMap<u64, StoreFaultAction>; 2],
    counters: [AtomicU64; 2],
    trace: Mutex<Vec<FiredStoreFault>>,
}

impl StoreFaultInjector {
    /// An injector armed with `plan`.
    pub fn from_plan(plan: &StoreFaultPlan) -> Self {
        let mut armed: [HashMap<u64, StoreFaultAction>; 2] = Default::default();
        for f in &plan.faults {
            armed[f.point.index()].insert(f.at_index, f.action);
        }
        StoreFaultInjector {
            armed,
            counters: Default::default(),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Ticks `point`'s counter and returns the armed fault at this index,
    /// if any; fired faults are appended to the trace.
    pub fn check(&self, point: StorePoint) -> Option<StoreFaultAction> {
        let index = self.counters[point.index()].fetch_add(1, Ordering::SeqCst);
        let action = self.armed[point.index()].get(&index).copied();
        if let Some(action) = action {
            self.trace
                .lock()
                .expect("trace lock")
                .push(FiredStoreFault {
                    point,
                    index,
                    action,
                });
        }
        action
    }

    /// Everything that fired, in firing order.
    pub fn trace(&self) -> Vec<FiredStoreFault> {
        self.trace.lock().expect("trace lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_the_identical_plan() {
        let a = StoreFaultPlan::generate(11, 32, 3);
        let b = StoreFaultPlan::generate(11, 32, 3);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        assert_ne!(a, StoreFaultPlan::generate(12, 32, 3));
    }

    #[test]
    fn injector_fires_exactly_at_armed_indices() {
        let plan = StoreFaultPlan::single(StorePoint::Append, 1, StoreFaultAction::ShortWrite);
        let inj = StoreFaultInjector::from_plan(&plan);
        assert_eq!(inj.check(StorePoint::Append), None);
        assert_eq!(
            inj.check(StorePoint::Append),
            Some(StoreFaultAction::ShortWrite)
        );
        assert_eq!(inj.check(StorePoint::Append), None);
        assert_eq!(inj.check(StorePoint::Read), None);
        assert_eq!(inj.trace().len(), 1);
    }
}
