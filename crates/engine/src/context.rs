//! The memoized analysis context shared by every pass.

use std::collections::{BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use localwm_cdfg::{analysis, Cdfg, CdfgError, Csr, EdgeId, NodeId, TopoError};

use crate::bounded::{bounded_arrival_with_csr, possibly_critical_with_csr, BoundedArrival};
use crate::delay::{DelayBounds, DelayInterval};
use crate::editor::{DesignEditor, EditLog, EditRecord};
use crate::probe::{NoopProbe, Probe};
use crate::unit::{cone_positions, UnitTiming};

/// Error from a fallible context query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The graph is not a DAG.
    Cyclic(TopoError),
    /// A deadline is tighter than the graph's critical path.
    InfeasibleDeadline {
        /// The requested number of control steps.
        deadline: u32,
        /// The critical path that does not fit in them.
        critical_path: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Cyclic(e) => write!(f, "{e}"),
            EngineError::InfeasibleDeadline {
                deadline,
                critical_path,
            } => write!(
                f,
                "deadline of {deadline} step(s) is infeasible: critical path is {critical_path}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Materialized ASAP/ALAP windows of every node under one deadline.
///
/// Produced (and memoized per deadline) by [`DesignContext::windows`]; all
/// queries are O(1) array reads.
#[derive(Debug, Clone)]
pub struct WindowTable {
    deadline: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
}

impl WindowTable {
    /// The deadline (available control steps) this table was built for.
    pub fn deadline(&self) -> u32 {
        self.deadline
    }

    /// Earliest control step of `n` (1-based; 0 for free sources).
    pub fn asap(&self, n: NodeId) -> u32 {
        self.asap[n.index()]
    }

    /// Latest control step of `n` under the deadline.
    pub fn alap(&self, n: NodeId) -> u32 {
        self.alap[n.index()]
    }

    /// Scheduling freedom of `n`: `alap - asap`.
    pub fn mobility(&self, n: NodeId) -> u32 {
        self.alap[n.index()] - self.asap[n.index()]
    }

    /// Whether the mobility windows of two nodes overlap — the pairing
    /// precondition for temporal-edge endpoints.
    pub fn overlap(&self, a: NodeId, b: NodeId) -> bool {
        self.asap[a.index()] <= self.alap[b.index()] && self.asap[b.index()] <= self.alap[a.index()]
    }
}

/// Fanin-cone cache keyed by `(root, max_dist)`.
type FaninCache = HashMap<(NodeId, u32), Arc<Vec<NodeId>>>;

/// A bounded-arrival result displaced by a mutation but kept for
/// dirty-cone patching: still exact for every node whose fan-in cone the
/// mutations since `generation` did not touch.
struct StaleArrival {
    /// [`fingerprint`] of the bounds vector it was built from.
    key: u64,
    /// Node count at build time (bounds are in node-id order and node ids
    /// are append-only, so `fingerprint(&bounds[..len]) == key` proves the
    /// surviving nodes' bounds are unchanged).
    len: usize,
    /// Generation the result was valid at; [`DesignContext::dirty_since`]
    /// from here gives the touched set.
    generation: u64,
    arr: Arc<BoundedArrival>,
}

/// Mutations remembered for [`DesignContext::dirty_since`] before the
/// history is pruned (each event is one `mutate` batch's touched set).
const DIRTY_HISTORY_CAP: usize = 64;

/// Displaced bounded-arrival results kept for patching (newest win).
const STALE_BOUNDED_CAP: usize = 8;

/// The touched-node set of one `mutate` batch.
struct DirtyEvent {
    /// Generation *after* the batch applied.
    generation: u64,
    nodes: Vec<NodeId>,
}

/// Ring of per-mutation dirty sets, with a floor below which history was
/// pruned (or a full invalidation erased it).
#[derive(Default)]
struct DirtyHistory {
    floor: u64,
    events: VecDeque<DirtyEvent>,
}

impl DirtyHistory {
    fn record(&mut self, generation: u64, nodes: Vec<NodeId>) {
        self.events.push_back(DirtyEvent { generation, nodes });
        if self.events.len() > DIRTY_HISTORY_CAP {
            if let Some(ev) = self.events.pop_front() {
                self.floor = ev.generation;
            }
        }
    }

    fn reset(&mut self, generation: u64) {
        self.floor = generation;
        self.events.clear();
    }
}

#[derive(Default)]
struct Caches {
    topo: OnceLock<Result<Vec<NodeId>, TopoError>>,
    csr: OnceLock<(Csr, Csr)>,
    unit: OnceLock<UnitTiming>,
    windows: Mutex<HashMap<u32, Arc<WindowTable>>>,
    levels: Mutex<HashMap<NodeId, Arc<Vec<Option<u32>>>>>,
    fanin: Mutex<FaninCache>,
    bounded: Mutex<HashMap<u64, Arc<BoundedArrival>>>,
    stale_bounded: Mutex<Vec<StaleArrival>>,
    possibly: Mutex<HashMap<u64, Arc<Vec<NodeId>>>>,
    content: OnceLock<u64>,
}

/// A CDFG bundled with lazily computed, memoized analyses: topological
/// order, unit-delay timing (ASAP/ALAP/laxity), per-deadline window tables,
/// per-root levels, fanin cones, and bounded-delay critical paths.
///
/// This is the **single source of truth** for those analyses: timing,
/// scheduling, watermarking, matching and simulation passes all query one
/// context instead of re-deriving graph facts. Every cache is interior
/// (`OnceLock`/`Mutex`), so a `&DesignContext` can be shared across scoped
/// worker threads; queries fill caches on first use and are O(1) after.
///
/// Mutation goes through [`DesignContext::mutate`] (or the incremental
/// [`DesignContext::add_temporal_edge`]), which bumps a generation counter
/// and invalidates the caches, so stale analyses are unrepresentable.
///
/// The context [`Deref`]s to [`Cdfg`], so plain graph accessors
/// (`node_count`, `succs`, `kind`, …) work directly on it.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_engine::DesignContext;
///
/// let ctx = DesignContext::new(iir4_parallel());
/// assert_eq!(ctx.critical_path(), 6);
/// let w = ctx.windows(8).unwrap();
/// let a9 = ctx.node_by_name("A9").unwrap();
/// assert_eq!(w.asap(a9), 6);
/// ```
pub struct DesignContext {
    graph: Cdfg,
    generation: u64,
    probe: Arc<dyn Probe>,
    caches: Caches,
    dirty: DirtyHistory,
    cone_limit: Option<usize>,
}

impl fmt::Debug for DesignContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DesignContext")
            .field("nodes", &self.graph.node_count())
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl DesignContext {
    /// Wraps a graph. No analysis runs until queried.
    pub fn new(graph: Cdfg) -> Self {
        DesignContext {
            graph,
            generation: 0,
            probe: Arc::new(NoopProbe),
            caches: Caches::default(),
            dirty: DirtyHistory::default(),
            cone_limit: None,
        }
    }

    /// Wraps a graph rehydrated from a content-addressed store, seeding
    /// the memoized content hash with the key it was stored under. The
    /// caller asserts `content_hash` is the FNV-1a of the graph's
    /// canonical text — for store-loaded designs that holds by
    /// construction, because the store keys design records by exactly
    /// that hash. Seeding skips the serialize-and-hash pass a fresh
    /// context would pay on its first cache insertion, which is part of
    /// the warm-start win.
    pub fn from_stored(graph: Cdfg, content_hash: u64) -> Self {
        let ctx = DesignContext::new(graph);
        let _ = ctx.caches.content.set(content_hash);
        ctx
    }

    /// Replaces the instrumentation probe (default: no-op).
    #[must_use]
    pub fn with_probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// The instrumentation probe observing this context's passes.
    pub fn probe(&self) -> &dyn Probe {
        self.probe.as_ref()
    }

    /// A shareable handle to the probe, for worker threads.
    pub fn probe_arc(&self) -> Arc<dyn Probe> {
        Arc::clone(&self.probe)
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Cdfg {
        &self.graph
    }

    /// Unwraps the graph, dropping all caches.
    pub fn into_graph(self) -> Cdfg {
        self.graph
    }

    /// Monotone counter bumped by every mutation; two equal generations on
    /// the same context mean the graph (and all cached analyses) are
    /// unchanged.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The nodes touched by every mutation after generation `since`
    /// (deduplicated, in id order; empty when `since` is the current
    /// generation). Returns `None` when the history cannot answer — `since`
    /// predates the retained window, an untracked mutation intervened, or
    /// `since` is from the future — in which case a consumer must treat
    /// everything as dirty.
    ///
    /// This is the contract external incremental layers (the Monte-Carlo
    /// criticality cache in `localwm-timing`, for one) build on: a result
    /// computed at `since` stays exact for every node whose recompute cone
    /// avoids this set.
    pub fn dirty_since(&self, since: u64) -> Option<Vec<NodeId>> {
        if since > self.generation || since < self.dirty.floor {
            return None;
        }
        let mut set = BTreeSet::new();
        for ev in &self.dirty.events {
            if ev.generation > since {
                set.extend(ev.nodes.iter().copied());
            }
        }
        Some(set.into_iter().collect())
    }

    /// The dirty-cone size threshold: patches recompute at most this many
    /// nodes before falling back to a full rebuild. Defaults to
    /// `max(64, V / 2)` — past half the graph, a cone sweep stops paying
    /// for its bookkeeping.
    pub fn cone_limit(&self) -> usize {
        self.cone_limit
            .unwrap_or_else(|| (self.graph.node_count() / 2).max(64))
    }

    /// Overrides the dirty-cone threshold (`None` restores the default).
    /// Tests use tiny limits to force the full-rebuild fallback.
    pub fn set_cone_limit(&mut self, limit: Option<usize>) {
        self.cone_limit = limit;
    }

    /// The forward (fan-out) cone of `seeds` as row positions in the
    /// memoized topological order, ascending; `None` if the cone exceeds
    /// `limit` nodes or the graph is cyclic.
    pub fn forward_cone_within(&self, seeds: &[NodeId], limit: usize) -> Option<Vec<usize>> {
        self.try_topo().ok()?;
        let (preds, succs) = self.csr_pair();
        cone_positions(preds, succs, seeds, limit, false)
    }

    /// The backward (fan-in) cone of `seeds` as row positions in the
    /// memoized topological order, ascending; `None` if the cone exceeds
    /// `limit` nodes or the graph is cyclic. The ancestor closure of an
    /// edit: every node whose backward-looking analysis results (required
    /// times, slack) can move when only `seeds` changed.
    pub fn backward_cone_within(&self, seeds: &[NodeId], limit: usize) -> Option<Vec<usize>> {
        self.try_topo().ok()?;
        let (preds, succs) = self.csr_pair();
        cone_positions(preds, succs, seeds, limit, true)
    }

    /// The memoized topological order (deterministic lowest-id-first).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError`] if the graph is cyclic.
    pub fn try_topo(&self) -> Result<&[NodeId], TopoError> {
        match self.caches.topo.get_or_init(|| {
            self.probe.counter("engine.topo.build", 1);
            localwm_cdfg::topo_order(&self.graph)
        }) {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// The memoized topological order.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; use [`DesignContext::try_topo`] to
    /// handle that case.
    pub fn topo(&self) -> &[NodeId] {
        self.try_topo().expect("analysis requires a DAG")
    }

    /// Both memoized CSR views, built together from one topo sweep.
    fn csr_pair(&self) -> &(Csr, Csr) {
        self.caches.csr.get_or_init(|| {
            let order = self.topo();
            self.probe.counter("engine.csr.build", 1);
            (
                Csr::preds(&self.graph, order),
                Csr::succs(&self.graph, order),
            )
        })
    }

    /// The memoized compressed-sparse-row **predecessor** view: packed
    /// live-edge adjacency with rows laid out in topological order, the
    /// flat substrate of the timing hot path (Monte-Carlo criticality,
    /// bounded arrival, unit depth/tail). Built once per generation
    /// together with [`DesignContext::succs_csr`]; invalidated by mutation
    /// like every other cached analysis.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn preds_csr(&self) -> &Csr {
        &self.csr_pair().0
    }

    /// The memoized compressed-sparse-row **successor** view; see
    /// [`DesignContext::preds_csr`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn succs_csr(&self) -> &Csr {
        &self.csr_pair().1
    }

    /// The memoized unit-delay timing (ASAP/ALAP/laxity substrate).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn unit_timing(&self) -> &UnitTiming {
        self.caches.unit.get_or_init(|| {
            let order = self.topo();
            let (preds, succs) = self.csr_pair();
            self.probe.counter("engine.unit.build", 1);
            UnitTiming::with_csr(&self.graph, order, preds, succs)
        })
    }

    /// The critical path `C` in control steps under the unit-delay model.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn critical_path(&self) -> u32 {
        self.unit_timing().critical_path()
    }

    /// The paper's *laxity* of `n`: length of the longest path through it.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn laxity(&self, n: NodeId) -> u32 {
        self.unit_timing().laxity(n)
    }

    /// The memoized ASAP/ALAP window table for one deadline.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cyclic`] if the graph is not a DAG;
    /// [`EngineError::InfeasibleDeadline`] if the critical path exceeds the
    /// deadline.
    pub fn windows(&self, deadline: u32) -> Result<Arc<WindowTable>, EngineError> {
        if let Err(e) = self.try_topo() {
            return Err(EngineError::Cyclic(e));
        }
        let timing = self.unit_timing();
        if timing.critical_path() > deadline {
            return Err(EngineError::InfeasibleDeadline {
                deadline,
                critical_path: timing.critical_path(),
            });
        }
        let mut cache = self.caches.windows.lock().expect("windows cache lock");
        if let Some(t) = cache.get(&deadline) {
            self.probe.counter("engine.windows.hit", 1);
            return Ok(Arc::clone(t));
        }
        self.probe.counter("engine.windows.miss", 1);
        let ids: Vec<NodeId> = self.graph.node_ids().collect();
        let table = Arc::new(WindowTable {
            deadline,
            asap: ids.iter().map(|&n| timing.asap(n)).collect(),
            alap: ids.iter().map(|&n| timing.alap(n, deadline)).collect(),
        });
        cache.insert(deadline, Arc::clone(&table));
        Ok(table)
    }

    /// The memoized criterion-C1 levels with respect to `root`: longest
    /// path (in edges) from `root` against edge direction; `None` outside
    /// the fanin cone.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn levels_from(&self, root: NodeId) -> Arc<Vec<Option<u32>>> {
        let mut cache = self.caches.levels.lock().expect("levels cache lock");
        if let Some(l) = cache.get(&root) {
            self.probe.counter("engine.levels.hit", 1);
            return Arc::clone(l);
        }
        self.probe.counter("engine.levels.miss", 1);
        let levels = Arc::new(analysis::levels_from(&self.graph, root));
        cache.insert(root, Arc::clone(&levels));
        levels
    }

    /// The memoized transitive fanin cone of `n` within `max_dist` edges,
    /// including `n` itself, in deterministic BFS order.
    pub fn fanin_cone(&self, n: NodeId, max_dist: u32) -> Arc<Vec<NodeId>> {
        let mut cache = self.caches.fanin.lock().expect("fanin cache lock");
        if let Some(c) = cache.get(&(n, max_dist)) {
            self.probe.counter("engine.fanin.hit", 1);
            return Arc::clone(c);
        }
        self.probe.counter("engine.fanin.miss", 1);
        let cone = Arc::new(analysis::fanin_within(&self.graph, n, max_dist));
        cache.insert((n, max_dist), Arc::clone(&cone));
        cone
    }

    /// Criterion C2: number of nodes in the fanin cone of `n` within
    /// `max_dist`, excluding `n`.
    pub fn fanin_count(&self, n: NodeId, max_dist: u32) -> usize {
        self.fanin_cone(n, max_dist).len() - 1
    }

    /// Criterion C3: `φ(n, x)`, the functionality-id sum over the fanin
    /// cone of `n` within `max_dist`, including `n`.
    pub fn phi(&self, n: NodeId, max_dist: u32) -> u64 {
        self.fanin_cone(n, max_dist)
            .iter()
            .map(|&m| u64::from(self.graph.kind(m).functionality_id()))
            .sum()
    }

    /// The memoized bounded-delay arrival analysis under `model`.
    ///
    /// Models are identified by a fingerprint of their per-node intervals,
    /// so distinct model values that induce the same bounds share one cache
    /// entry. A miss first probes the stale store: a result displaced by
    /// recent mutations whose surviving-node bounds are provably unchanged
    /// (prefix fingerprint match) is **patched** — only the dirty fan-out
    /// cone is re-swept, seeded with the cached frontier values — instead
    /// of recomputed, when the cone fits [`DesignContext::cone_limit`].
    /// Patched results are byte-identical to from-scratch ones.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn bounded_arrival<M: DelayBounds + ?Sized>(&self, model: &M) -> Arc<BoundedArrival> {
        let key = self.model_fingerprint(model);
        {
            let cache = self.caches.bounded.lock().expect("bounded cache lock");
            if let Some(a) = cache.get(&key) {
                self.probe.counter("engine.bounded.hit", 1);
                return Arc::clone(a);
            }
        }
        // Miss: materialize the per-node bounds once for the patch probe
        // and the from-scratch sweep. (The hit path above never allocates
        // — the fingerprint streams over the model.)
        let bounds: Vec<DelayInterval> = self
            .graph
            .node_ids()
            .map(|n| model.bounds(&self.graph, n))
            .collect();
        let mut cache = self.caches.bounded.lock().expect("bounded cache lock");
        if let Some(a) = cache.get(&key) {
            self.probe.counter("engine.bounded.hit", 1);
            return Arc::clone(a);
        }
        if let Some(patched) = self.patch_stale_bounded(&bounds) {
            self.probe.counter("engine.bounded.patch", 1);
            let arr = Arc::new(patched);
            cache.insert(key, Arc::clone(&arr));
            return arr;
        }
        self.probe.counter("engine.bounded.miss", 1);
        let order = self.topo();
        let (preds, _) = self.csr_pair();
        let arr = Arc::new(bounded_arrival_with_csr(order, preds, &bounds));
        cache.insert(key, Arc::clone(&arr));
        arr
    }

    /// Tries to derive the arrival analysis for `bounds` by patching a
    /// stale entry: re-sweep only the dirty forward cone on top of the
    /// cached finish values. Newest entries are probed first.
    fn patch_stale_bounded(&self, bounds: &[DelayInterval]) -> Option<BoundedArrival> {
        let order = match self.try_topo() {
            Ok(o) => o,
            Err(_) => return None,
        };
        let limit = self.cone_limit();
        let stale = self
            .caches
            .stale_bounded
            .lock()
            .expect("stale bounded lock");
        for entry in stale.iter().rev() {
            // The prefix fingerprint proves every pre-existing node kept
            // its interval (bounds are in node-id order and ids are
            // append-only). Structure-sensitive models (DynamicBounds) fail
            // this check after an edge edit and fall through to a full
            // recompute — exactly right, their intervals moved.
            if entry.len > bounds.len() || fingerprint(&bounds[..entry.len]) != entry.key {
                continue;
            }
            let Some(mut seeds) = self.dirty_since(entry.generation) else {
                continue;
            };
            for i in entry.len..bounds.len() {
                seeds.push(NodeId::from_index(i));
            }
            let (preds, succs) = self.csr_pair();
            let Some(cone) = cone_positions(preds, succs, &seeds, limit, false) else {
                continue;
            };
            let mut finish = entry.arr.finish.clone();
            finish.resize(bounds.len(), DelayInterval::fixed(0));
            // Ascending topo positions: cone nodes read either earlier
            // cone nodes (already final) or untouched nodes (still exact) —
            // the same recurrence `bounded_arrival_with_csr` runs, applied
            // to the subset that could have moved.
            for &p in &cone {
                let u = order[p].index();
                let mut in_lo = 0u64;
                let mut in_hi = 0u64;
                for &pi in preds.row(p) {
                    in_lo = in_lo.max(finish[pi as usize].lo);
                    in_hi = in_hi.max(finish[pi as usize].hi);
                }
                let d = bounds[u];
                finish[u] = DelayInterval::new(in_lo + d.lo, in_hi + d.hi);
            }
            let mut cp = DelayInterval::fixed(0);
            for f in &finish {
                cp = DelayInterval::new(cp.lo.max(f.lo), cp.hi.max(f.hi));
            }
            return Some(BoundedArrival {
                finish,
                critical_path: cp,
            });
        }
        None
    }

    /// The memoized circuit critical-path interval under `model`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn bounded_critical_path<M: DelayBounds + ?Sized>(&self, model: &M) -> DelayInterval {
        self.bounded_arrival(model).critical_path
    }

    /// Nodes possibly critical under `model` (zero worst-case slack),
    /// reusing the memoized arrival analysis.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn possibly_critical<M: DelayBounds + ?Sized>(&self, model: &M) -> Vec<NodeId> {
        (*self.possibly_critical_shared(model)).clone()
    }

    /// [`DesignContext::possibly_critical`] as a shared, memoized set:
    /// repeated queries under the same model (the serve hot path asks per
    /// request) hit the cache and pay one `Arc` clone instead of a full
    /// slack sweep. Keyed by the same per-node bounds fingerprint as the
    /// arrival cache; invalidated by mutation alongside it.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn possibly_critical_shared<M: DelayBounds + ?Sized>(&self, model: &M) -> Arc<Vec<NodeId>> {
        let key = self.model_fingerprint(model);
        {
            let cache = self.caches.possibly.lock().expect("possibly cache lock");
            if let Some(set) = cache.get(&key) {
                self.probe.counter("engine.possibly.hit", 1);
                return Arc::clone(set);
            }
        }
        self.probe.counter("engine.possibly.miss", 1);
        let arr = self.bounded_arrival(model);
        let bounds: Vec<DelayInterval> = self
            .graph
            .node_ids()
            .map(|n| model.bounds(&self.graph, n))
            .collect();
        let (preds, succs) = self.csr_pair();
        let set = Arc::new(possibly_critical_with_csr(
            self.topo(),
            preds,
            succs,
            &bounds,
            &arr,
        ));
        self.caches
            .possibly
            .lock()
            .expect("possibly cache lock")
            .insert(key, Arc::clone(&set));
        set
    }

    /// The bounds fingerprint [`fingerprint`] would produce for `model`'s
    /// per-node intervals, computed by streaming over the graph instead of
    /// materializing the interval vector. Cache keys for the arrival and
    /// possibly-critical caches come from here on their hit paths.
    fn model_fingerprint<M: DelayBounds + ?Sized>(&self, model: &M) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for n in self.graph.node_ids() {
            let i = model.bounds(&self.graph, n);
            mix(i.lo);
            mix(i.hi);
        }
        h
    }

    /// A stable content hash of the design: FNV-1a over the canonical
    /// serialized CDFG ([`localwm_cdfg::write_cdfg`]).
    ///
    /// The hash identifies the graph by *content* — node kinds, names, and
    /// edges in id order — so two contexts built from the same design (e.g.
    /// a graph and its write→parse round-trip, which preserves node ids)
    /// hash identically even though they are distinct allocations. Service
    /// layers key shared-context caches on this. Memoized; invalidated by
    /// mutation like every other cached analysis.
    pub fn content_hash(&self) -> u64 {
        *self
            .caches
            .content
            .get_or_init(|| fnv1a_bytes(localwm_cdfg::write_cdfg(&self.graph).as_bytes()))
    }

    /// Mutates the graph through `f`, bumping the generation and patching
    /// the cached analyses in place wherever the recorded edits allow it.
    ///
    /// The closure receives a [`DesignEditor`] — the same mutation surface
    /// as [`Cdfg`] plus read access via `Deref`, with every edit recorded.
    /// From the record the context derives the dirty node set and:
    ///
    /// * keeps the memoized topological order when no added edge
    ///   contradicts it (new nodes append at the tail), patching the CSR
    ///   views row-wise instead of rebuilding them;
    /// * recomputes unit depth/tail only over the dirty fan-out/fan-in
    ///   cones ([`UnitTiming::cone_update`]), falling back to a lazy full
    ///   rebuild past [`DesignContext::cone_limit`];
    /// * moves bounded-arrival results into a stale store from which later
    ///   queries patch just the dirty cone (see
    ///   [`DesignContext::bounded_arrival`]);
    /// * records the dirty set for [`DesignContext::dirty_since`].
    ///
    /// Every patched artifact is byte-identical to a from-scratch
    /// recomputation — the analyses are max/min reductions insensitive to
    /// which valid topological order carries them. Untracked mutations
    /// (through [`DesignEditor::graph_mut`]) fall back to dropping
    /// everything, exactly the old contract.
    pub fn mutate<R>(&mut self, f: impl FnOnce(&mut DesignEditor) -> R) -> R {
        let old_len = self.graph.node_count();
        let mut editor = DesignEditor::new(&mut self.graph);
        let r = f(&mut editor);
        let log = editor.into_log();
        self.apply(old_len, &log);
        r
    }

    /// Adds a temporal (precedence) edge through the incremental mutation
    /// path: the unit-timing cache is cone-patched rather than discarded,
    /// and (unlike the historical fast path) an order-changing edge is
    /// detected and handled by a lazy rebuild instead of being undefined
    /// behavior.
    ///
    /// # Errors
    ///
    /// Propagates [`CdfgError`] from the underlying edge insertion.
    pub fn add_temporal_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.mutate(|e| e.add_temporal_edge(src, dst))
    }

    /// Applies one mutation batch: bump the generation, then patch or
    /// invalidate.
    fn apply(&mut self, old_len: usize, log: &EditLog) {
        self.generation += 1;
        self.probe.counter("engine.invalidate", 1);
        if log.full || !self.apply_incremental(old_len, log) {
            self.dirty.reset(self.generation);
            self.caches = Caches::default();
        }
    }

    /// The dirty-tracking invalidation path. Returns `false` when the
    /// previous state cannot be patched (cached order was cyclic), sending
    /// the caller to full invalidation.
    fn apply_incremental(&mut self, old_len: usize, log: &EditLog) -> bool {
        let mut touched: BTreeSet<NodeId> = BTreeSet::new();
        for e in &log.edits {
            match *e {
                EditRecord::NodeAdded(n) | EditRecord::LiteralSet(n) => {
                    touched.insert(n);
                }
                EditRecord::EdgeAdded { src, dst } | EditRecord::EdgeRemoved { src, dst } => {
                    touched.insert(src);
                    touched.insert(dst);
                }
            }
        }
        let dirty: Vec<NodeId> = touched.into_iter().collect();

        // Displace live bounded results into the stale store before the
        // value caches are cleared: they stay exact outside the dirty cone
        // and queries patch them back in.
        let prev_generation = self.generation - 1;
        {
            let live = self.caches.bounded.get_mut().expect("bounded cache lock");
            let stale = self
                .caches
                .stale_bounded
                .get_mut()
                .expect("stale bounded lock");
            for (key, arr) in live.drain() {
                stale.push(StaleArrival {
                    key,
                    len: old_len,
                    generation: prev_generation,
                    arr,
                });
            }
            if stale.len() > STALE_BOUNDED_CAP {
                let excess = stale.len() - STALE_BOUNDED_CAP;
                stale.drain(..excess);
            }
        }

        // Value caches rebuild from the patched substrate on demand.
        self.caches.windows.get_mut().expect("windows lock").clear();
        self.caches.levels.get_mut().expect("levels lock").clear();
        self.caches.fanin.get_mut().expect("fanin lock").clear();
        self.caches
            .possibly
            .get_mut()
            .expect("possibly lock")
            .clear();
        let _ = self.caches.content.take();

        let topo_cached = self.caches.topo.take();
        let csr_cached = self.caches.csr.take();
        let unit_cached = self.caches.unit.take();
        match topo_cached {
            Some(Ok(mut order)) if order_preserved(&order, self.graph.node_count(), log) => {
                for i in old_len..self.graph.node_count() {
                    order.push(NodeId::from_index(i));
                }
                if let Some((mut preds, mut succs)) = csr_cached {
                    for i in old_len..self.graph.node_count() {
                        let n = NodeId::from_index(i);
                        preds.append_empty_row(n);
                        succs.append_empty_row(n);
                    }
                    for &n in &dirty {
                        let p: Vec<u32> = self.graph.preds(n).map(|x| x.index() as u32).collect();
                        let s: Vec<u32> = self.graph.succs(n).map(|x| x.index() as u32).collect();
                        preds.refresh_row(n, &p);
                        succs.refresh_row(n, &s);
                    }
                    self.probe.counter("engine.csr.patch", 1);
                    if let Some(mut unit) = unit_cached {
                        if unit.cone_update(
                            &self.graph,
                            &order,
                            &preds,
                            &succs,
                            &dirty,
                            self.cone_limit(),
                        ) {
                            self.probe.counter("engine.unit.incremental", 1);
                            let _ = self.caches.unit.set(unit);
                        }
                    }
                    let _ = self.caches.csr.set((preds, succs));
                }
                let _ = self.caches.topo.set(Ok(order));
            }
            // A cached cyclic verdict leaves no patchable state behind.
            Some(Err(_)) => return false,
            // Order-changing edit, or the order was never computed: the
            // structural caches rebuild lazily. The dirty record still
            // lets value-level patches (stale bounded, external caches)
            // proceed — their math is order-insensitive.
            _ => {}
        }
        self.dirty.record(self.generation, dirty);
        true
    }
}

/// Whether the cached topological order (plus new nodes appended at the
/// tail) is still a valid order after the batch: every added edge must
/// point forward. Removals never invalidate an order.
fn order_preserved(order: &[NodeId], node_count: usize, log: &EditLog) -> bool {
    let mut pos = vec![u32::MAX; node_count];
    for (p, &n) in order.iter().enumerate() {
        pos[n.index()] = u32::try_from(p).expect("node count fits u32");
    }
    for (i, p) in pos.iter_mut().enumerate().skip(order.len()) {
        *p = u32::try_from(i).expect("node count fits u32");
    }
    for e in &log.edits {
        if let EditRecord::EdgeAdded { src, dst } = *e {
            if pos[src.index()] >= pos[dst.index()] {
                return false;
            }
        }
    }
    true
}

/// FNV-1a over a byte string.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over the interval endpoints: a stable fingerprint identifying a
/// delay model by what it assigns, not by its type.
fn fingerprint(bounds: &[DelayInterval]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for i in bounds {
        mix(i.lo);
        mix(i.hi);
    }
    h
}

impl From<Cdfg> for DesignContext {
    fn from(graph: Cdfg) -> Self {
        DesignContext::new(graph)
    }
}

impl From<&Cdfg> for DesignContext {
    /// Clones the graph — the compatibility shim for call sites that only
    /// hold a `&Cdfg`. Prefer constructing one context up front and sharing
    /// it.
    fn from(graph: &Cdfg) -> Self {
        DesignContext::new(graph.clone())
    }
}

impl Deref for DesignContext {
    type Target = Cdfg;

    fn deref(&self) -> &Cdfg {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KindBounds;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{analysis, OpKind};
    use std::sync::Arc;

    #[test]
    fn topo_is_memoized_and_matches_direct() {
        let ctx = DesignContext::new(iir4_parallel());
        let direct = ctx.graph().topo_order().unwrap();
        assert_eq!(ctx.topo(), direct.as_slice());
        // Second query hits the same allocation.
        let a = ctx.topo().as_ptr();
        let b = ctx.topo().as_ptr();
        assert_eq!(a, b);
    }

    #[test]
    fn windows_match_unit_timing() {
        let ctx = DesignContext::new(iir4_parallel());
        let w = ctx.windows(8).unwrap();
        let t = UnitTiming::new(ctx.graph());
        for n in ctx.node_ids() {
            assert_eq!(w.asap(n), t.asap(n));
            assert_eq!(w.alap(n), t.alap(n, 8));
            assert_eq!(w.mobility(n), t.mobility(n, 8));
        }
    }

    #[test]
    fn infeasible_deadline_is_an_error() {
        let ctx = DesignContext::new(iir4_parallel());
        let err = ctx.windows(3).unwrap_err();
        assert_eq!(
            err,
            EngineError::InfeasibleDeadline {
                deadline: 3,
                critical_path: 6
            }
        );
    }

    #[test]
    fn cyclic_graph_reports_error() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::UnitOp);
        let b = g.add_node(OpKind::UnitOp);
        g.add_edge(localwm_cdfg::EdgeKind::Control, a, b).unwrap();
        g.add_edge(localwm_cdfg::EdgeKind::Control, b, a).unwrap();
        let ctx = DesignContext::new(g);
        assert!(ctx.try_topo().is_err());
        assert!(matches!(ctx.windows(10), Err(EngineError::Cyclic(_))));
    }

    #[test]
    fn levels_and_fanin_match_direct_analysis() {
        let ctx = DesignContext::new(iir4_parallel());
        let root = ctx.node_by_name("A9").unwrap();
        assert_eq!(
            *ctx.levels_from(root),
            analysis::levels_from(ctx.graph(), root)
        );
        for n in ctx.node_ids() {
            assert_eq!(
                *ctx.fanin_cone(n, 2),
                analysis::fanin_within(ctx.graph(), n, 2)
            );
            assert_eq!(
                ctx.fanin_count(n, 2),
                analysis::fanin_count(ctx.graph(), n, 2)
            );
            assert_eq!(ctx.phi(n, 2), analysis::phi(ctx.graph(), n, 2));
        }
    }

    #[test]
    fn bounded_cache_hits_for_equivalent_models() {
        let ctx = DesignContext::new(iir4_parallel());
        let probe = Arc::new(crate::RecordingProbe::new());
        let ctx = ctx.with_probe(probe.clone());
        let a = ctx.bounded_critical_path(&KindBounds::uniform(1, 2));
        let b = ctx.bounded_critical_path(&KindBounds::uniform(1, 2));
        assert_eq!(a, b);
        assert_eq!(probe.counter_value("engine.bounded.miss"), 1);
        assert_eq!(probe.counter_value("engine.bounded.hit"), 1);
    }

    #[test]
    fn mutation_invalidates_and_bumps_generation() {
        let mut ctx = DesignContext::new(iir4_parallel());
        let cp_before = ctx.critical_path();
        assert_eq!(ctx.generation(), 0);
        // Append a chain of two ops behind the output adder.
        ctx.mutate(|g| {
            let tail1 = g.add_node(OpKind::Not);
            let tail2 = g.add_node(OpKind::Not);
            let a9 = g.node_by_name("A9").unwrap();
            g.add_data_edge(a9, tail1).unwrap();
            g.add_data_edge(tail1, tail2).unwrap();
        });
        assert_eq!(ctx.generation(), 1);
        assert_eq!(ctx.critical_path(), cp_before + 2);
    }

    #[test]
    fn incremental_temporal_edge_matches_full_rebuild() {
        let mut ctx = DesignContext::new(iir4_parallel());
        let _warm = ctx.critical_path(); // populate the unit cache
        let a2 = ctx.node_by_name("A2").unwrap();
        let c7 = ctx.node_by_name("C7").unwrap();
        ctx.add_temporal_edge(a2, c7).unwrap();
        assert_eq!(ctx.generation(), 1);
        let fresh = UnitTiming::new(ctx.graph());
        let cached = ctx.unit_timing();
        for n in ctx.node_ids() {
            assert_eq!(cached.asap(n), fresh.asap(n));
            assert_eq!(cached.laxity(n), fresh.laxity(n));
        }
    }

    #[test]
    fn content_hash_is_invariant_under_roundtrip_and_tracks_mutation() {
        let ctx = DesignContext::new(iir4_parallel());
        let h = ctx.content_hash();
        assert_eq!(h, ctx.content_hash(), "memoized value is stable");

        // A node-id-preserving round-trip through the canonical text format
        // yields a different allocation with the identical content hash.
        let text = localwm_cdfg::write_cdfg(ctx.graph());
        let round = localwm_cdfg::parse_cdfg(&text).unwrap();
        assert_eq!(DesignContext::new(round).content_hash(), h);

        // Distinct designs and mutated graphs hash differently.
        let mut other = DesignContext::new(iir4_parallel());
        assert_eq!(other.content_hash(), h);
        let a2 = other.node_by_name("A2").unwrap();
        let c7 = other.node_by_name("C7").unwrap();
        other.add_temporal_edge(a2, c7).unwrap();
        assert_ne!(other.content_hash(), h, "mutation invalidates the hash");
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = DesignContext::new(iir4_parallel());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(ctx.critical_path(), 6);
                    let w = ctx.windows(9).unwrap();
                    let a9 = ctx.node_by_name("A9").unwrap();
                    assert_eq!(w.asap(a9), 6);
                });
            }
        });
    }
}
