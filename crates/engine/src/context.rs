//! The memoized analysis context shared by every pass.

use std::collections::HashMap;
use std::fmt;
use std::ops::Deref;
use std::sync::{Arc, Mutex, OnceLock};

use localwm_cdfg::{analysis, Cdfg, CdfgError, Csr, EdgeId, NodeId, TopoError};

use crate::bounded::{bounded_arrival_with_csr, possibly_critical_with_csr, BoundedArrival};
use crate::delay::{DelayBounds, DelayInterval};
use crate::probe::{NoopProbe, Probe};
use crate::unit::UnitTiming;

/// Error from a fallible context query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The graph is not a DAG.
    Cyclic(TopoError),
    /// A deadline is tighter than the graph's critical path.
    InfeasibleDeadline {
        /// The requested number of control steps.
        deadline: u32,
        /// The critical path that does not fit in them.
        critical_path: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Cyclic(e) => write!(f, "{e}"),
            EngineError::InfeasibleDeadline {
                deadline,
                critical_path,
            } => write!(
                f,
                "deadline of {deadline} step(s) is infeasible: critical path is {critical_path}"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Materialized ASAP/ALAP windows of every node under one deadline.
///
/// Produced (and memoized per deadline) by [`DesignContext::windows`]; all
/// queries are O(1) array reads.
#[derive(Debug, Clone)]
pub struct WindowTable {
    deadline: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
}

impl WindowTable {
    /// The deadline (available control steps) this table was built for.
    pub fn deadline(&self) -> u32 {
        self.deadline
    }

    /// Earliest control step of `n` (1-based; 0 for free sources).
    pub fn asap(&self, n: NodeId) -> u32 {
        self.asap[n.index()]
    }

    /// Latest control step of `n` under the deadline.
    pub fn alap(&self, n: NodeId) -> u32 {
        self.alap[n.index()]
    }

    /// Scheduling freedom of `n`: `alap - asap`.
    pub fn mobility(&self, n: NodeId) -> u32 {
        self.alap[n.index()] - self.asap[n.index()]
    }

    /// Whether the mobility windows of two nodes overlap — the pairing
    /// precondition for temporal-edge endpoints.
    pub fn overlap(&self, a: NodeId, b: NodeId) -> bool {
        self.asap[a.index()] <= self.alap[b.index()] && self.asap[b.index()] <= self.alap[a.index()]
    }
}

/// Fanin-cone cache keyed by `(root, max_dist)`.
type FaninCache = HashMap<(NodeId, u32), Arc<Vec<NodeId>>>;

#[derive(Default)]
struct Caches {
    topo: OnceLock<Result<Vec<NodeId>, TopoError>>,
    csr: OnceLock<(Csr, Csr)>,
    unit: OnceLock<UnitTiming>,
    windows: Mutex<HashMap<u32, Arc<WindowTable>>>,
    levels: Mutex<HashMap<NodeId, Arc<Vec<Option<u32>>>>>,
    fanin: Mutex<FaninCache>,
    bounded: Mutex<HashMap<u64, Arc<BoundedArrival>>>,
    content: OnceLock<u64>,
}

/// A CDFG bundled with lazily computed, memoized analyses: topological
/// order, unit-delay timing (ASAP/ALAP/laxity), per-deadline window tables,
/// per-root levels, fanin cones, and bounded-delay critical paths.
///
/// This is the **single source of truth** for those analyses: timing,
/// scheduling, watermarking, matching and simulation passes all query one
/// context instead of re-deriving graph facts. Every cache is interior
/// (`OnceLock`/`Mutex`), so a `&DesignContext` can be shared across scoped
/// worker threads; queries fill caches on first use and are O(1) after.
///
/// Mutation goes through [`DesignContext::mutate`] (or the incremental
/// [`DesignContext::add_temporal_edge`]), which bumps a generation counter
/// and invalidates the caches, so stale analyses are unrepresentable.
///
/// The context [`Deref`]s to [`Cdfg`], so plain graph accessors
/// (`node_count`, `succs`, `kind`, …) work directly on it.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_engine::DesignContext;
///
/// let ctx = DesignContext::new(iir4_parallel());
/// assert_eq!(ctx.critical_path(), 6);
/// let w = ctx.windows(8).unwrap();
/// let a9 = ctx.node_by_name("A9").unwrap();
/// assert_eq!(w.asap(a9), 6);
/// ```
pub struct DesignContext {
    graph: Cdfg,
    generation: u64,
    probe: Arc<dyn Probe>,
    caches: Caches,
}

impl fmt::Debug for DesignContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DesignContext")
            .field("nodes", &self.graph.node_count())
            .field("generation", &self.generation)
            .finish_non_exhaustive()
    }
}

impl DesignContext {
    /// Wraps a graph. No analysis runs until queried.
    pub fn new(graph: Cdfg) -> Self {
        DesignContext {
            graph,
            generation: 0,
            probe: Arc::new(NoopProbe),
            caches: Caches::default(),
        }
    }

    /// Replaces the instrumentation probe (default: no-op).
    #[must_use]
    pub fn with_probe(mut self, probe: Arc<dyn Probe>) -> Self {
        self.probe = probe;
        self
    }

    /// The instrumentation probe observing this context's passes.
    pub fn probe(&self) -> &dyn Probe {
        self.probe.as_ref()
    }

    /// A shareable handle to the probe, for worker threads.
    pub fn probe_arc(&self) -> Arc<dyn Probe> {
        Arc::clone(&self.probe)
    }

    /// The wrapped graph.
    pub fn graph(&self) -> &Cdfg {
        &self.graph
    }

    /// Unwraps the graph, dropping all caches.
    pub fn into_graph(self) -> Cdfg {
        self.graph
    }

    /// Monotone counter bumped by every mutation; two equal generations on
    /// the same context mean the graph (and all cached analyses) are
    /// unchanged.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The memoized topological order (deterministic lowest-id-first).
    ///
    /// # Errors
    ///
    /// Returns [`TopoError`] if the graph is cyclic.
    pub fn try_topo(&self) -> Result<&[NodeId], TopoError> {
        match self.caches.topo.get_or_init(|| {
            self.probe.counter("engine.topo.build", 1);
            localwm_cdfg::topo_order(&self.graph)
        }) {
            Ok(v) => Ok(v.as_slice()),
            Err(e) => Err(e.clone()),
        }
    }

    /// The memoized topological order.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic; use [`DesignContext::try_topo`] to
    /// handle that case.
    pub fn topo(&self) -> &[NodeId] {
        self.try_topo().expect("analysis requires a DAG")
    }

    /// Both memoized CSR views, built together from one topo sweep.
    fn csr_pair(&self) -> &(Csr, Csr) {
        self.caches.csr.get_or_init(|| {
            let order = self.topo();
            self.probe.counter("engine.csr.build", 1);
            (
                Csr::preds(&self.graph, order),
                Csr::succs(&self.graph, order),
            )
        })
    }

    /// The memoized compressed-sparse-row **predecessor** view: packed
    /// live-edge adjacency with rows laid out in topological order, the
    /// flat substrate of the timing hot path (Monte-Carlo criticality,
    /// bounded arrival, unit depth/tail). Built once per generation
    /// together with [`DesignContext::succs_csr`]; invalidated by mutation
    /// like every other cached analysis.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn preds_csr(&self) -> &Csr {
        &self.csr_pair().0
    }

    /// The memoized compressed-sparse-row **successor** view; see
    /// [`DesignContext::preds_csr`].
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn succs_csr(&self) -> &Csr {
        &self.csr_pair().1
    }

    /// The memoized unit-delay timing (ASAP/ALAP/laxity substrate).
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn unit_timing(&self) -> &UnitTiming {
        self.caches.unit.get_or_init(|| {
            let order = self.topo();
            let (preds, succs) = self.csr_pair();
            self.probe.counter("engine.unit.build", 1);
            UnitTiming::with_csr(&self.graph, order, preds, succs)
        })
    }

    /// The critical path `C` in control steps under the unit-delay model.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn critical_path(&self) -> u32 {
        self.unit_timing().critical_path()
    }

    /// The paper's *laxity* of `n`: length of the longest path through it.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn laxity(&self, n: NodeId) -> u32 {
        self.unit_timing().laxity(n)
    }

    /// The memoized ASAP/ALAP window table for one deadline.
    ///
    /// # Errors
    ///
    /// [`EngineError::Cyclic`] if the graph is not a DAG;
    /// [`EngineError::InfeasibleDeadline`] if the critical path exceeds the
    /// deadline.
    pub fn windows(&self, deadline: u32) -> Result<Arc<WindowTable>, EngineError> {
        if let Err(e) = self.try_topo() {
            return Err(EngineError::Cyclic(e));
        }
        let timing = self.unit_timing();
        if timing.critical_path() > deadline {
            return Err(EngineError::InfeasibleDeadline {
                deadline,
                critical_path: timing.critical_path(),
            });
        }
        let mut cache = self.caches.windows.lock().expect("windows cache lock");
        if let Some(t) = cache.get(&deadline) {
            self.probe.counter("engine.windows.hit", 1);
            return Ok(Arc::clone(t));
        }
        self.probe.counter("engine.windows.miss", 1);
        let ids: Vec<NodeId> = self.graph.node_ids().collect();
        let table = Arc::new(WindowTable {
            deadline,
            asap: ids.iter().map(|&n| timing.asap(n)).collect(),
            alap: ids.iter().map(|&n| timing.alap(n, deadline)).collect(),
        });
        cache.insert(deadline, Arc::clone(&table));
        Ok(table)
    }

    /// The memoized criterion-C1 levels with respect to `root`: longest
    /// path (in edges) from `root` against edge direction; `None` outside
    /// the fanin cone.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn levels_from(&self, root: NodeId) -> Arc<Vec<Option<u32>>> {
        let mut cache = self.caches.levels.lock().expect("levels cache lock");
        if let Some(l) = cache.get(&root) {
            self.probe.counter("engine.levels.hit", 1);
            return Arc::clone(l);
        }
        self.probe.counter("engine.levels.miss", 1);
        let levels = Arc::new(analysis::levels_from(&self.graph, root));
        cache.insert(root, Arc::clone(&levels));
        levels
    }

    /// The memoized transitive fanin cone of `n` within `max_dist` edges,
    /// including `n` itself, in deterministic BFS order.
    pub fn fanin_cone(&self, n: NodeId, max_dist: u32) -> Arc<Vec<NodeId>> {
        let mut cache = self.caches.fanin.lock().expect("fanin cache lock");
        if let Some(c) = cache.get(&(n, max_dist)) {
            self.probe.counter("engine.fanin.hit", 1);
            return Arc::clone(c);
        }
        self.probe.counter("engine.fanin.miss", 1);
        let cone = Arc::new(analysis::fanin_within(&self.graph, n, max_dist));
        cache.insert((n, max_dist), Arc::clone(&cone));
        cone
    }

    /// Criterion C2: number of nodes in the fanin cone of `n` within
    /// `max_dist`, excluding `n`.
    pub fn fanin_count(&self, n: NodeId, max_dist: u32) -> usize {
        self.fanin_cone(n, max_dist).len() - 1
    }

    /// Criterion C3: `φ(n, x)`, the functionality-id sum over the fanin
    /// cone of `n` within `max_dist`, including `n`.
    pub fn phi(&self, n: NodeId, max_dist: u32) -> u64 {
        self.fanin_cone(n, max_dist)
            .iter()
            .map(|&m| u64::from(self.graph.kind(m).functionality_id()))
            .sum()
    }

    /// The memoized bounded-delay arrival analysis under `model`.
    ///
    /// Models are identified by a fingerprint of their per-node intervals,
    /// so distinct model values that induce the same bounds share one cache
    /// entry.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn bounded_arrival<M: DelayBounds + ?Sized>(&self, model: &M) -> Arc<BoundedArrival> {
        let bounds: Vec<DelayInterval> = self
            .graph
            .node_ids()
            .map(|n| model.bounds(&self.graph, n))
            .collect();
        let key = fingerprint(&bounds);
        let mut cache = self.caches.bounded.lock().expect("bounded cache lock");
        if let Some(a) = cache.get(&key) {
            self.probe.counter("engine.bounded.hit", 1);
            return Arc::clone(a);
        }
        self.probe.counter("engine.bounded.miss", 1);
        let order = self.topo();
        let (preds, _) = self.csr_pair();
        let arr = Arc::new(bounded_arrival_with_csr(order, preds, &bounds));
        cache.insert(key, Arc::clone(&arr));
        arr
    }

    /// The memoized circuit critical-path interval under `model`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn bounded_critical_path<M: DelayBounds + ?Sized>(&self, model: &M) -> DelayInterval {
        self.bounded_arrival(model).critical_path
    }

    /// Nodes possibly critical under `model` (zero worst-case slack),
    /// reusing the memoized arrival analysis.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn possibly_critical<M: DelayBounds + ?Sized>(&self, model: &M) -> Vec<NodeId> {
        let arr = self.bounded_arrival(model);
        let bounds: Vec<DelayInterval> = self
            .graph
            .node_ids()
            .map(|n| model.bounds(&self.graph, n))
            .collect();
        let (preds, succs) = self.csr_pair();
        possibly_critical_with_csr(self.topo(), preds, succs, &bounds, &arr)
    }

    /// A stable content hash of the design: FNV-1a over the canonical
    /// serialized CDFG ([`localwm_cdfg::write_cdfg`]).
    ///
    /// The hash identifies the graph by *content* — node kinds, names, and
    /// edges in id order — so two contexts built from the same design (e.g.
    /// a graph and its write→parse round-trip, which preserves node ids)
    /// hash identically even though they are distinct allocations. Service
    /// layers key shared-context caches on this. Memoized; invalidated by
    /// mutation like every other cached analysis.
    pub fn content_hash(&self) -> u64 {
        *self
            .caches
            .content
            .get_or_init(|| fnv1a_bytes(localwm_cdfg::write_cdfg(&self.graph).as_bytes()))
    }

    /// Mutates the graph through `f`, bumping the generation and dropping
    /// every cached analysis.
    pub fn mutate<R>(&mut self, f: impl FnOnce(&mut Cdfg) -> R) -> R {
        let r = f(&mut self.graph);
        self.generation += 1;
        self.probe.counter("engine.invalidate", 1);
        self.caches = Caches::default();
        r
    }

    /// Adds a temporal (precedence) edge and **incrementally** refreshes the
    /// unit-timing cache instead of discarding it; all other caches are
    /// dropped and the generation is bumped.
    ///
    /// The incremental update assumes the new edge keeps the graph acyclic —
    /// the same contract as [`UnitTiming::add_edge_update`]. Watermark
    /// embedding guarantees this by testing `asap(src) + tail(dst)` against
    /// the deadline before drawing an edge.
    ///
    /// # Errors
    ///
    /// Propagates [`CdfgError`] from the underlying edge insertion.
    pub fn add_temporal_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        let id = self.graph.add_temporal_edge(src, dst)?;
        self.generation += 1;
        let unit = self.caches.unit.take().map(|mut t| {
            t.add_edge_update(&self.graph, src, dst);
            t
        });
        self.probe.counter("engine.invalidate", 1);
        self.caches = Caches::default();
        if let Some(t) = unit {
            self.probe.counter("engine.unit.incremental", 1);
            let _ = self.caches.unit.set(t);
        }
        Ok(id)
    }
}

/// FNV-1a over a byte string.
fn fnv1a_bytes(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a over the interval endpoints: a stable fingerprint identifying a
/// delay model by what it assigns, not by its type.
fn fingerprint(bounds: &[DelayInterval]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    for i in bounds {
        mix(i.lo);
        mix(i.hi);
    }
    h
}

impl From<Cdfg> for DesignContext {
    fn from(graph: Cdfg) -> Self {
        DesignContext::new(graph)
    }
}

impl From<&Cdfg> for DesignContext {
    /// Clones the graph — the compatibility shim for call sites that only
    /// hold a `&Cdfg`. Prefer constructing one context up front and sharing
    /// it.
    fn from(graph: &Cdfg) -> Self {
        DesignContext::new(graph.clone())
    }
}

impl Deref for DesignContext {
    type Target = Cdfg;

    fn deref(&self) -> &Cdfg {
        &self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::KindBounds;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{analysis, OpKind};
    use std::sync::Arc;

    #[test]
    fn topo_is_memoized_and_matches_direct() {
        let ctx = DesignContext::new(iir4_parallel());
        let direct = ctx.graph().topo_order().unwrap();
        assert_eq!(ctx.topo(), direct.as_slice());
        // Second query hits the same allocation.
        let a = ctx.topo().as_ptr();
        let b = ctx.topo().as_ptr();
        assert_eq!(a, b);
    }

    #[test]
    fn windows_match_unit_timing() {
        let ctx = DesignContext::new(iir4_parallel());
        let w = ctx.windows(8).unwrap();
        let t = UnitTiming::new(ctx.graph());
        for n in ctx.node_ids() {
            assert_eq!(w.asap(n), t.asap(n));
            assert_eq!(w.alap(n), t.alap(n, 8));
            assert_eq!(w.mobility(n), t.mobility(n, 8));
        }
    }

    #[test]
    fn infeasible_deadline_is_an_error() {
        let ctx = DesignContext::new(iir4_parallel());
        let err = ctx.windows(3).unwrap_err();
        assert_eq!(
            err,
            EngineError::InfeasibleDeadline {
                deadline: 3,
                critical_path: 6
            }
        );
    }

    #[test]
    fn cyclic_graph_reports_error() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::UnitOp);
        let b = g.add_node(OpKind::UnitOp);
        g.add_edge(localwm_cdfg::EdgeKind::Control, a, b).unwrap();
        g.add_edge(localwm_cdfg::EdgeKind::Control, b, a).unwrap();
        let ctx = DesignContext::new(g);
        assert!(ctx.try_topo().is_err());
        assert!(matches!(ctx.windows(10), Err(EngineError::Cyclic(_))));
    }

    #[test]
    fn levels_and_fanin_match_direct_analysis() {
        let ctx = DesignContext::new(iir4_parallel());
        let root = ctx.node_by_name("A9").unwrap();
        assert_eq!(
            *ctx.levels_from(root),
            analysis::levels_from(ctx.graph(), root)
        );
        for n in ctx.node_ids() {
            assert_eq!(
                *ctx.fanin_cone(n, 2),
                analysis::fanin_within(ctx.graph(), n, 2)
            );
            assert_eq!(
                ctx.fanin_count(n, 2),
                analysis::fanin_count(ctx.graph(), n, 2)
            );
            assert_eq!(ctx.phi(n, 2), analysis::phi(ctx.graph(), n, 2));
        }
    }

    #[test]
    fn bounded_cache_hits_for_equivalent_models() {
        let ctx = DesignContext::new(iir4_parallel());
        let probe = Arc::new(crate::RecordingProbe::new());
        let ctx = ctx.with_probe(probe.clone());
        let a = ctx.bounded_critical_path(&KindBounds::uniform(1, 2));
        let b = ctx.bounded_critical_path(&KindBounds::uniform(1, 2));
        assert_eq!(a, b);
        assert_eq!(probe.counter_value("engine.bounded.miss"), 1);
        assert_eq!(probe.counter_value("engine.bounded.hit"), 1);
    }

    #[test]
    fn mutation_invalidates_and_bumps_generation() {
        let mut ctx = DesignContext::new(iir4_parallel());
        let cp_before = ctx.critical_path();
        assert_eq!(ctx.generation(), 0);
        // Append a chain of two ops behind the output adder.
        ctx.mutate(|g| {
            let tail1 = g.add_node(OpKind::Not);
            let tail2 = g.add_node(OpKind::Not);
            let a9 = g.node_by_name("A9").unwrap();
            g.add_data_edge(a9, tail1).unwrap();
            g.add_data_edge(tail1, tail2).unwrap();
        });
        assert_eq!(ctx.generation(), 1);
        assert_eq!(ctx.critical_path(), cp_before + 2);
    }

    #[test]
    fn incremental_temporal_edge_matches_full_rebuild() {
        let mut ctx = DesignContext::new(iir4_parallel());
        let _warm = ctx.critical_path(); // populate the unit cache
        let a2 = ctx.node_by_name("A2").unwrap();
        let c7 = ctx.node_by_name("C7").unwrap();
        ctx.add_temporal_edge(a2, c7).unwrap();
        assert_eq!(ctx.generation(), 1);
        let fresh = UnitTiming::new(ctx.graph());
        let cached = ctx.unit_timing();
        for n in ctx.node_ids() {
            assert_eq!(cached.asap(n), fresh.asap(n));
            assert_eq!(cached.laxity(n), fresh.laxity(n));
        }
    }

    #[test]
    fn content_hash_is_invariant_under_roundtrip_and_tracks_mutation() {
        let ctx = DesignContext::new(iir4_parallel());
        let h = ctx.content_hash();
        assert_eq!(h, ctx.content_hash(), "memoized value is stable");

        // A node-id-preserving round-trip through the canonical text format
        // yields a different allocation with the identical content hash.
        let text = localwm_cdfg::write_cdfg(ctx.graph());
        let round = localwm_cdfg::parse_cdfg(&text).unwrap();
        assert_eq!(DesignContext::new(round).content_hash(), h);

        // Distinct designs and mutated graphs hash differently.
        let mut other = DesignContext::new(iir4_parallel());
        assert_eq!(other.content_hash(), h);
        let a2 = other.node_by_name("A2").unwrap();
        let c7 = other.node_by_name("C7").unwrap();
        other.add_temporal_edge(a2, c7).unwrap();
        assert_ne!(other.content_hash(), h, "mutation invalidates the hash");
    }

    #[test]
    fn context_is_shareable_across_threads() {
        let ctx = DesignContext::new(iir4_parallel());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    assert_eq!(ctx.critical_path(), 6);
                    let w = ctx.windows(9).unwrap();
                    let a9 = ctx.node_by_name("A9").unwrap();
                    assert_eq!(w.asap(a9), 6);
                });
            }
        });
    }
}
