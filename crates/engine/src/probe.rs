//! Instrumentation probes: dependency-free observability hooks.
//!
//! Analysis and watermarking passes report what they do through a [`Probe`]:
//! monotonic counters (`cache.hit`, `attempt.rejected`, …), wall-clock
//! timers, and discrete events. The default [`NoopProbe`] compiles to
//! nothing; a [`RecordingProbe`] aggregates everything and can dump a JSON
//! report (`localwm analyze --probe-out` uses this).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Mutex;
use std::time::Instant;

/// Observability sink for engine and pass instrumentation.
///
/// All hooks default to no-ops, so implementors override only what they
/// record. Implementations must be `Send + Sync`: parallel passes report
/// from worker threads.
pub trait Probe: Send + Sync {
    /// Adds `delta` to the named monotonic counter.
    fn counter(&self, name: &str, delta: u64) {
        let _ = (name, delta);
    }

    /// Records one timed span of `nanos` nanoseconds under `name`.
    fn timer_ns(&self, name: &str, nanos: u64) {
        let _ = (name, nanos);
    }

    /// Records a discrete event with a free-form detail string.
    fn event(&self, name: &str, detail: &str) {
        let _ = (name, detail);
    }
}

/// A probe that records nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopProbe;

impl Probe for NoopProbe {}

/// Runs `f`, reporting its wall-clock duration to `probe` under `name`.
pub fn timed<R>(probe: &dyn Probe, name: &str, f: impl FnOnce() -> R) -> R {
    let start = Instant::now();
    let r = f();
    probe.timer_ns(
        name,
        u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX),
    );
    r
}

#[derive(Debug, Default)]
struct TimerStat {
    count: u64,
    total_ns: u64,
}

#[derive(Debug, Default)]
struct Recorded {
    counters: BTreeMap<String, u64>,
    timers: BTreeMap<String, TimerStat>,
    events: Vec<(String, String)>,
}

/// A probe that aggregates counters/timers and keeps events in order, for
/// inspection in tests and for the CLI's `analyze --probe-out` JSON report.
///
/// ```
/// use localwm_engine::{Probe, RecordingProbe};
///
/// let p = RecordingProbe::new();
/// p.counter("cache.hit", 1);
/// p.counter("cache.hit", 2);
/// assert_eq!(p.counter_value("cache.hit"), 3);
/// assert!(p.to_json().contains("\"cache.hit\": 3"));
/// ```
#[derive(Debug, Default)]
pub struct RecordingProbe {
    inner: Mutex<Recorded>,
}

impl RecordingProbe {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("probe lock")
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Number of recorded spans for a timer (0 if never touched).
    pub fn timer_count(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .expect("probe lock")
            .timers
            .get(name)
            .map_or(0, |t| t.count)
    }

    /// All recorded `(name, detail)` events, in order.
    pub fn events(&self) -> Vec<(String, String)> {
        self.inner.lock().expect("probe lock").events.clone()
    }

    /// Dumps everything recorded so far as a deterministic JSON object with
    /// `counters`, `timers` (count + total nanoseconds) and `events` keys.
    pub fn to_json(&self) -> String {
        let rec = self.inner.lock().expect("probe lock");
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in rec.counters.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(out, "{sep}\n    \"{}\": {v}", escape(k));
        }
        if !rec.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"timers\": {");
        for (i, (k, t)) in rec.timers.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    \"{}\": {{\"count\": {}, \"total_ns\": {}}}",
                escape(k),
                t.count,
                t.total_ns
            );
        }
        if !rec.timers.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("},\n  \"events\": [");
        for (i, (name, detail)) in rec.events.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"name\": \"{}\", \"detail\": \"{}\"}}",
                escape(name),
                escape(detail)
            );
        }
        if !rec.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Probe for RecordingProbe {
    fn counter(&self, name: &str, delta: u64) {
        let mut rec = self.inner.lock().expect("probe lock");
        *rec.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    fn timer_ns(&self, name: &str, nanos: u64) {
        let mut rec = self.inner.lock().expect("probe lock");
        let t = rec.timers.entry(name.to_owned()).or_default();
        t.count += 1;
        t.total_ns = t.total_ns.saturating_add(nanos);
    }

    fn event(&self, name: &str, detail: &str) {
        let mut rec = self.inner.lock().expect("probe lock");
        rec.events.push((name.to_owned(), detail.to_owned()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_aggregate() {
        let p = RecordingProbe::new();
        p.counter("a", 1);
        p.counter("a", 4);
        p.counter("b", 2);
        assert_eq!(p.counter_value("a"), 5);
        assert_eq!(p.counter_value("b"), 2);
        assert_eq!(p.counter_value("missing"), 0);
    }

    #[test]
    fn timers_count_spans() {
        let p = RecordingProbe::new();
        let x = timed(&p, "span", || 21 * 2);
        assert_eq!(x, 42);
        timed(&p, "span", || ());
        assert_eq!(p.timer_count("span"), 2);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let p = RecordingProbe::new();
        p.counter("hits", 3);
        p.timer_ns("t", 1000);
        p.event("note", "say \"hi\"\n");
        let json = p.to_json();
        assert!(json.contains("\"hits\": 3"));
        assert!(json.contains("\"count\": 1"));
        assert!(json.contains("say \\\"hi\\\"\\n"));
    }

    #[test]
    fn noop_probe_is_silent() {
        let p = NoopProbe;
        p.counter("x", 1);
        p.event("x", "y");
        assert_eq!(timed(&p, "t", || 7), 7);
    }
}
