//! Unit-delay (control-step) timing.

use localwm_cdfg::{Cdfg, Csr, NodeId};

/// Control-step timing of a CDFG under the homogeneous SDF model: every
/// schedulable operation takes exactly one control step; inputs, constants
/// and outputs are free.
///
/// Steps are **1-based**: an operation with no schedulable predecessors has
/// `asap == 1`. For free nodes, `asap`/`alap` report the step by which their
/// value is available (0 for sources).
///
/// The structure caches the forward *depth* (longest op-chain ending at a
/// node, inclusive) and backward *tail* (longest op-chain starting at a
/// node, inclusive), which give ASAP, ALAP, laxity and mobility in O(1) per
/// query after an O(V + E) build.
///
/// ```
/// use localwm_cdfg::{Cdfg, OpKind};
/// use localwm_engine::UnitTiming;
///
/// let mut g = Cdfg::new();
/// let x = g.add_node(OpKind::Input);
/// let a = g.add_node(OpKind::Not);
/// let b = g.add_node(OpKind::Neg);
/// let c = g.add_node(OpKind::Not);
/// g.add_data_edge(x, a)?;
/// g.add_data_edge(a, b)?;
/// g.add_data_edge(x, c)?; // c is off the a->b chain
/// let t = UnitTiming::new(&g);
/// assert_eq!(t.critical_path(), 2);
/// assert_eq!(t.asap(c), 1);
/// assert_eq!(t.alap(c, 2), 2); // c can slide to step 2
/// assert_eq!(t.laxity(c), 1);  // longest path through c is 1 op
/// # Ok::<(), localwm_cdfg::CdfgError>(())
/// ```
#[derive(Debug, Clone)]
pub struct UnitTiming {
    depth: Vec<u32>,
    tail: Vec<u32>,
    schedulable: Vec<bool>,
    critical_path: u32,
}

impl UnitTiming {
    /// Builds timing for a graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph is cyclic.
    pub fn new(g: &Cdfg) -> Self {
        let order = g.topo_order().expect("timing requires a DAG");
        Self::with_order(g, &order)
    }

    /// Builds timing for a graph whose topological order is already known
    /// (the memoized [`DesignContext`](crate::DesignContext) path).
    pub fn with_order(g: &Cdfg, order: &[NodeId]) -> Self {
        let n = g.node_count();
        let mut depth = vec![0u32; n];
        let mut tail = vec![0u32; n];
        for &u in order {
            let here = depth[u.index()] + u32::from(g.kind(u).is_schedulable());
            depth[u.index()] = here;
            for v in g.succs(u) {
                depth[v.index()] = depth[v.index()].max(here);
            }
        }
        for &u in order.iter().rev() {
            let mut best = 0;
            for v in g.succs(u) {
                best = best.max(tail[v.index()]);
            }
            tail[u.index()] = best + u32::from(g.kind(u).is_schedulable());
        }
        let critical_path = depth.iter().copied().max().unwrap_or(0);
        let schedulable = g.node_ids().map(|id| g.kind(id).is_schedulable()).collect();
        UnitTiming {
            depth,
            tail,
            schedulable,
            critical_path,
        }
    }

    /// Builds timing over packed CSR adjacency — the flat hot path used by
    /// the memoized [`DesignContext`](crate::DesignContext). The depth and
    /// tail sweeps gather from predecessor/successor rows laid out in topo
    /// order, so both passes stream the packed neighbor arrays instead of
    /// dereferencing `EdgeId → Option<Edge>` per neighbor.
    ///
    /// Bit-identical to [`UnitTiming::with_order`]: the recurrences are
    /// `max` reductions, insensitive to neighbor enumeration order.
    pub fn with_csr(g: &Cdfg, order: &[NodeId], preds: &Csr, succs: &Csr) -> Self {
        let n = g.node_count();
        let schedulable: Vec<bool> = g.node_ids().map(|id| g.kind(id).is_schedulable()).collect();
        let mut depth = vec![0u32; n];
        let mut tail = vec![0u32; n];
        for (p, &u) in order.iter().enumerate() {
            let mut best = 0;
            for &pi in preds.row(p) {
                best = best.max(depth[pi as usize]);
            }
            depth[u.index()] = best + u32::from(schedulable[u.index()]);
        }
        for p in (0..n).rev() {
            let u = order[p];
            let mut best = 0;
            for &si in succs.row(p) {
                best = best.max(tail[si as usize]);
            }
            tail[u.index()] = best + u32::from(schedulable[u.index()]);
        }
        let critical_path = depth.iter().copied().max().unwrap_or(0);
        UnitTiming {
            depth,
            tail,
            schedulable,
            critical_path,
        }
    }

    /// The critical path `C`, in control steps.
    pub fn critical_path(&self) -> u32 {
        self.critical_path
    }

    /// Earliest control step in which `n` can execute (1-based). For free
    /// nodes this is the step by which the value is available (0 for
    /// sources).
    pub fn asap(&self, n: NodeId) -> u32 {
        self.depth[n.index()]
    }

    /// Latest control step in which `n` can execute so that every
    /// dependent still finishes within `available_steps`.
    ///
    /// Saturates at `asap(n)` if `available_steps` is tighter than the
    /// critical path through `n` allows (an infeasible deadline).
    pub fn alap(&self, n: NodeId, available_steps: u32) -> u32 {
        let i = n.index();
        // tail includes n itself, so the latest finish step for n is
        // available_steps - (tail - 1).
        let latest = available_steps.saturating_sub(self.tail[i].saturating_sub(1));
        latest.max(self.depth[i])
    }

    /// Scheduling freedom of `n` under a deadline: `alap - asap`.
    pub fn mobility(&self, n: NodeId, available_steps: u32) -> u32 {
        self.alap(n, available_steps) - self.asap(n)
    }

    /// The paper's *laxity*: the length (in operations) of the longest path
    /// through `n`. Nodes on the critical path have `laxity == C`.
    ///
    /// `depth` counts the longest chain up to and including `n`, `tail` the
    /// longest chain from `n` inclusive, so a schedulable `n` is counted
    /// twice and subtracted once.
    pub fn laxity(&self, n: NodeId) -> u32 {
        let i = n.index();
        (self.depth[i] + self.tail[i]).saturating_sub(u32::from(self.schedulable[i]))
    }

    /// Longest chain of schedulable operations starting at `n`, inclusive.
    ///
    /// Adding a precedence edge `s → d` creates a path of length
    /// `asap(s) + tail(d)` control steps — the feasibility test watermark
    /// embedding uses to avoid stretching the schedule past its deadline.
    pub fn tail(&self, n: NodeId) -> u32 {
        self.tail[n.index()]
    }

    /// Whether the ASAP/ALAP mobility windows of two nodes overlap under a
    /// deadline — the paper's pairing precondition for temporal-edge
    /// endpoints (§IV-A; the printed predicate is OCR-garbled, interval
    /// overlap is the meaning consistent with "overlapping scheduling
    /// period").
    pub fn windows_overlap(&self, a: NodeId, b: NodeId, available_steps: u32) -> bool {
        self.asap(a) <= self.alap(b, available_steps)
            && self.asap(b) <= self.alap(a, available_steps)
    }

    /// Incrementally updates timing after a precedence edge `src -> dst`
    /// was added to `g` (the graph must already contain the edge).
    ///
    /// Only the affected cones are re-relaxed; worst case `O(V + E)`, but
    /// typically far less for watermark edges between slack-rich nodes.
    pub fn add_edge_update(&mut self, g: &Cdfg, src: NodeId, dst: NodeId) {
        // Forward: push depth from src through dst's fanout cone.
        let mut stack = vec![dst];
        while let Some(u) = stack.pop() {
            let incoming = g.preds(u).map(|p| self.depth[p.index()]).max().unwrap_or(0);
            let new_depth = incoming + u32::from(g.kind(u).is_schedulable());
            if new_depth > self.depth[u.index()] {
                self.depth[u.index()] = new_depth;
                self.critical_path = self.critical_path.max(new_depth);
                stack.extend(g.succs(u));
            }
        }
        // Backward: push tail from dst through src's fanin cone.
        let mut stack = vec![src];
        while let Some(u) = stack.pop() {
            let outgoing = g.succs(u).map(|s| self.tail[s.index()]).max().unwrap_or(0);
            let new_tail = outgoing + u32::from(g.kind(u).is_schedulable());
            if new_tail > self.tail[u.index()] {
                self.tail[u.index()] = new_tail;
                stack.extend(g.preds(u));
            }
        }
    }

    /// Recomputes exactly the fan-out/fan-in cones of `seeds` after an
    /// arbitrary batch of structural edits (node adds, edge adds *and*
    /// removals — unlike the monotone [`UnitTiming::add_edge_update`],
    /// values may decrease).
    ///
    /// `order`, `preds` and `succs` must reflect the **post-edit** graph
    /// (the context patches its CSR views first); new nodes must sit at the
    /// tail of `order` in id order. Returns `false` without touching `self`
    /// beyond array growth when either cone exceeds `limit` nodes — the
    /// caller then falls back to a full rebuild.
    ///
    /// Exact by construction: a node outside the forward cone has an
    /// unchanged predecessor set and unchanged predecessor depths, so its
    /// depth is unchanged; cone nodes are recomputed in ascending topo
    /// position from already-final values (symmetrically for tails), which
    /// is precisely what [`UnitTiming::with_csr`] would compute.
    pub fn cone_update(
        &mut self,
        g: &Cdfg,
        order: &[NodeId],
        preds: &Csr,
        succs: &Csr,
        seeds: &[NodeId],
        limit: usize,
    ) -> bool {
        let n = g.node_count();
        if self.depth.len() < n {
            self.depth.resize(n, 0);
            self.tail.resize(n, 0);
            for i in self.schedulable.len()..n {
                self.schedulable
                    .push(g.kind(NodeId::from_index(i)).is_schedulable());
            }
        }
        let Some(fwd) = cone_positions(preds, succs, seeds, limit, false) else {
            return false;
        };
        let Some(bwd) = cone_positions(preds, succs, seeds, limit, true) else {
            return false;
        };
        for &p in &fwd {
            let u = order[p];
            let mut best = 0;
            for &pi in preds.row(p) {
                best = best.max(self.depth[pi as usize]);
            }
            self.depth[u.index()] = best + u32::from(self.schedulable[u.index()]);
        }
        for &p in bwd.iter().rev() {
            let u = order[p];
            let mut best = 0;
            for &si in succs.row(p) {
                best = best.max(self.tail[si as usize]);
            }
            self.tail[u.index()] = best + u32::from(self.schedulable[u.index()]);
        }
        // Depths may have shrunk, so the critical path is rescanned, not
        // max-merged.
        self.critical_path = self.depth.iter().copied().max().unwrap_or(0);
        true
    }
}

/// The reachable row positions from `seeds` (inclusive), walking successor
/// rows (`backward == false`) or predecessor rows (`backward == true`),
/// sorted ascending. `None` once the cone exceeds `limit`.
pub(crate) fn cone_positions(
    preds: &Csr,
    succs: &Csr,
    seeds: &[NodeId],
    limit: usize,
    backward: bool,
) -> Option<Vec<usize>> {
    let step = if backward { preds } else { succs };
    let mut seen = vec![false; step.rows()];
    let mut stack = Vec::with_capacity(seeds.len());
    let mut cone = Vec::new();
    for &s in seeds {
        let p = step.position(s);
        if !seen[p] {
            seen[p] = true;
            stack.push(p);
            cone.push(p);
        }
    }
    while let Some(p) = stack.pop() {
        if cone.len() > limit {
            return None;
        }
        for &ni in step.row(p) {
            let np = step.position(NodeId::from_index(ni as usize));
            if !seen[np] {
                seen[np] = true;
                stack.push(np);
                cone.push(np);
            }
        }
    }
    if cone.len() > limit {
        return None;
    }
    cone.sort_unstable();
    Some(cone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::{Cdfg, OpKind};

    fn chain(len: usize) -> (Cdfg, Vec<NodeId>) {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let mut prev = x;
        let mut nodes = vec![x];
        for _ in 0..len {
            let n = g.add_node(OpKind::Not);
            g.add_data_edge(prev, n).unwrap();
            nodes.push(n);
            prev = n;
        }
        (g, nodes)
    }

    #[test]
    fn chain_timing() {
        let (g, nodes) = chain(4);
        let t = UnitTiming::new(&g);
        assert_eq!(t.critical_path(), 4);
        assert_eq!(t.asap(nodes[1]), 1);
        assert_eq!(t.asap(nodes[4]), 4);
        assert_eq!(t.alap(nodes[1], 4), 1);
        assert_eq!(t.alap(nodes[1], 6), 3);
        assert_eq!(t.mobility(nodes[1], 6), 2);
    }

    #[test]
    fn laxity_on_and_off_critical_path() {
        let (mut g, nodes) = chain(4);
        // Side op hanging off the input: longest path through it is 1.
        let side = g.add_node(OpKind::Neg);
        g.add_data_edge(nodes[0], side).unwrap();
        let t = UnitTiming::new(&g);
        for &n in &nodes[1..] {
            assert_eq!(t.laxity(n), 4);
        }
        assert_eq!(t.laxity(side), 1);
    }

    #[test]
    fn alap_saturates_on_infeasible_deadline() {
        let (g, nodes) = chain(4);
        let t = UnitTiming::new(&g);
        assert_eq!(t.alap(nodes[1], 2), t.asap(nodes[1]));
    }

    #[test]
    fn windows_overlap_is_symmetric_and_sane() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Neg);
        let c = g.add_node(OpKind::Not);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(x, c).unwrap();
        let t = UnitTiming::new(&g);
        // With 2 steps, c in [1,2], a = [1,1], b = [2,2]: all pairs overlap
        // with c; a and b do not overlap each other.
        assert!(t.windows_overlap(a, c, 2));
        assert!(t.windows_overlap(c, a, 2));
        assert!(t.windows_overlap(b, c, 2));
        assert!(!t.windows_overlap(a, b, 2));
    }

    #[test]
    fn incremental_matches_rebuild_on_temporal_insertion() {
        let g0 = iir4_parallel();
        let mut g = g0.clone();
        let a2 = g.node_by_name("A2").unwrap();
        let c7 = g.node_by_name("C7").unwrap();
        let mut t = UnitTiming::new(&g);
        g.add_temporal_edge(a2, c7).unwrap();
        t.add_edge_update(&g, a2, c7);
        let fresh = UnitTiming::new(&g);
        for n in g.node_ids() {
            assert_eq!(t.asap(n), fresh.asap(n), "depth mismatch at {n}");
            assert_eq!(t.laxity(n), fresh.laxity(n), "laxity mismatch at {n}");
        }
        assert_eq!(t.critical_path(), fresh.critical_path());
    }

    #[test]
    fn cone_update_matches_rebuild_after_mixed_edits() {
        use localwm_cdfg::Csr;
        let mut g = iir4_parallel();
        let mut order = g.topo_order().unwrap();
        let preds0 = Csr::preds(&g, &order);
        let succs0 = Csr::succs(&g, &order);
        let mut t = UnitTiming::with_csr(&g, &order, &preds0, &succs0);

        // A mixed batch: drop an edge on the critical chain, append a new
        // op fed by A9. Removal may *shrink* depths — the case the monotone
        // add_edge_update cannot handle.
        let a2 = g.node_by_name("A2").unwrap();
        let a9 = g.node_by_name("A9").unwrap();
        let victim = g
            .edge_ids()
            .find(|&e| g.edge(e).unwrap().src() == a2)
            .unwrap();
        let vdst = g.edge(victim).unwrap().dst();
        g.remove_edge(victim).unwrap();
        let extra = g.add_node(OpKind::Not);
        g.add_data_edge(a9, extra).unwrap();
        order.push(extra);

        let preds = Csr::preds(&g, &order);
        let succs = Csr::succs(&g, &order);
        let seeds = [a2, vdst, a9, extra];
        assert!(t.cone_update(&g, &order, &preds, &succs, &seeds, g.node_count()));
        let fresh = UnitTiming::with_csr(&g, &order, &preds, &succs);
        for n in g.node_ids() {
            assert_eq!(t.asap(n), fresh.asap(n), "depth mismatch at {n}");
            assert_eq!(t.tail(n), fresh.tail(n), "tail mismatch at {n}");
        }
        assert_eq!(t.critical_path(), fresh.critical_path());

        // A tiny limit forces the fallback signal.
        let mut t2 = UnitTiming::with_csr(&g, &order, &preds, &succs);
        assert!(!t2.cone_update(&g, &order, &preds, &succs, &seeds, 1));
    }

    #[test]
    fn iir4_critical_path_and_windows() {
        let g = iir4_parallel();
        let t = UnitTiming::new(&g);
        assert_eq!(t.critical_path(), 6);
        let c1 = g.node_by_name("C1").unwrap();
        // C1 feeds A1 which anchors the 6-op chain; laxity of C1 = 6.
        assert_eq!(t.laxity(c1), 6);
        let d11 = g.node_by_name("D11").unwrap();
        // D11 hangs off A2 (depth 3) as a leaf: laxity 4.
        assert_eq!(t.laxity(d11), 4);
    }

    #[test]
    fn free_nodes_have_zero_asap() {
        let (g, nodes) = chain(2);
        let t = UnitTiming::new(&g);
        assert_eq!(t.asap(nodes[0]), 0);
    }

    #[test]
    fn with_order_matches_new() {
        let g = iir4_parallel();
        let order = g.topo_order().unwrap();
        let a = UnitTiming::new(&g);
        let b = UnitTiming::with_order(&g, &order);
        for n in g.node_ids() {
            assert_eq!(a.asap(n), b.asap(n));
            assert_eq!(a.tail(n), b.tail(n));
        }
        assert_eq!(a.critical_path(), b.critical_path());
    }
}
