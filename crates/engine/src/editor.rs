//! The recording mutation editor behind [`DesignContext::mutate`].
//!
//! Incremental invalidation needs to know *what* a mutation touched, not
//! just that one happened. [`DesignEditor`] wraps the graph for the
//! duration of a `mutate` closure: it exposes the same mutation surface as
//! [`Cdfg`] (and [`Deref`]s to it for read access), but records every
//! structural edit into an [`EditLog`]. The context turns that log into a
//! dirty node set and patches its caches in place instead of discarding
//! them — falling back to full invalidation whenever the closure escapes
//! through [`DesignEditor::graph_mut`], where the touched set is unknown.
//!
//! [`DesignContext::mutate`]: crate::DesignContext::mutate

use std::ops::Deref;

use localwm_cdfg::{Cdfg, CdfgError, Edge, EdgeId, EdgeKind, NodeId, OpKind};

/// One recorded structural edit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum EditRecord {
    /// A node was appended (ids are arena-sequential, never reused).
    NodeAdded(NodeId),
    /// An edge between two nodes was inserted.
    EdgeAdded {
        /// Edge source.
        src: NodeId,
        /// Edge destination.
        dst: NodeId,
    },
    /// An edge between two nodes was tombstoned.
    EdgeRemoved {
        /// Former edge source.
        src: NodeId,
        /// Former edge destination.
        dst: NodeId,
    },
    /// A node's literal payload changed (content, not topology).
    LiteralSet(NodeId),
}

/// Everything one `mutate` call did to the graph.
#[derive(Debug, Default)]
pub(crate) struct EditLog {
    /// Structural edits in application order.
    pub(crate) edits: Vec<EditRecord>,
    /// The closure reached the raw graph via [`DesignEditor::graph_mut`]:
    /// the touched set is unknown and the context must invalidate fully.
    pub(crate) full: bool,
}

/// The mutable graph view handed to [`mutate`](crate::DesignContext::mutate)
/// closures.
///
/// Mirrors every [`Cdfg`] mutator one-for-one (same names, same signatures,
/// same errors) and [`Deref`]s to the graph for read access, so existing
/// closures written against `&mut Cdfg` compile unchanged. Each mutator
/// additionally records what it touched, which is what lets the context
/// keep its derived caches alive across the mutation.
pub struct DesignEditor<'g> {
    graph: &'g mut Cdfg,
    log: EditLog,
}

impl<'g> DesignEditor<'g> {
    pub(crate) fn new(graph: &'g mut Cdfg) -> Self {
        DesignEditor {
            graph,
            log: EditLog::default(),
        }
    }

    pub(crate) fn into_log(self) -> EditLog {
        self.log
    }

    /// Adds an anonymous node; see [`Cdfg::add_node`].
    pub fn add_node(&mut self, kind: OpKind) -> NodeId {
        let id = self.graph.add_node(kind);
        self.log.edits.push(EditRecord::NodeAdded(id));
        id
    }

    /// Adds a named node; see [`Cdfg::add_named_node`].
    ///
    /// # Panics
    ///
    /// Panics if the name is already taken.
    pub fn add_named_node(&mut self, kind: OpKind, name: impl AsRef<str>) -> NodeId {
        let id = self.graph.add_named_node(kind, name);
        self.log.edits.push(EditRecord::NodeAdded(id));
        id
    }

    /// Adds a named node, failing on duplicates; see
    /// [`Cdfg::try_add_named_node`].
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::DuplicateName`] if the name exists.
    pub fn try_add_named_node(
        &mut self,
        kind: OpKind,
        name: impl AsRef<str>,
    ) -> Result<NodeId, CdfgError> {
        let id = self.graph.try_add_named_node(kind, name)?;
        self.log.edits.push(EditRecord::NodeAdded(id));
        Ok(id)
    }

    /// Attaches a literal to a node; see [`Cdfg::set_literal`].
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn set_literal(&mut self, id: NodeId, value: i64) {
        self.graph.set_literal(id, value);
        self.log.edits.push(EditRecord::LiteralSet(id));
    }

    /// Adds an edge of the given kind; see [`Cdfg::add_edge`].
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_edge(
        &mut self,
        kind: EdgeKind,
        src: NodeId,
        dst: NodeId,
    ) -> Result<EdgeId, CdfgError> {
        let id = self.graph.add_edge(kind, src, dst)?;
        self.log.edits.push(EditRecord::EdgeAdded { src, dst });
        Ok(id)
    }

    /// Adds a data edge; see [`Cdfg::add_data_edge`].
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_data_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Data, src, dst)
    }

    /// Adds a control edge; see [`Cdfg::add_control_edge`].
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_control_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Control, src, dst)
    }

    /// Adds a temporal edge; see [`Cdfg::add_temporal_edge`].
    ///
    /// # Errors
    ///
    /// See [`Cdfg::add_edge`].
    pub fn add_temporal_edge(&mut self, src: NodeId, dst: NodeId) -> Result<EdgeId, CdfgError> {
        self.add_edge(EdgeKind::Temporal, src, dst)
    }

    /// Adds an edge, rejecting cycles; see [`Cdfg::add_edge_acyclic`].
    ///
    /// # Errors
    ///
    /// All of [`Cdfg::add_edge`]'s errors plus [`CdfgError::WouldCycle`].
    pub fn add_edge_acyclic(
        &mut self,
        kind: EdgeKind,
        src: NodeId,
        dst: NodeId,
    ) -> Result<EdgeId, CdfgError> {
        let id = self.graph.add_edge_acyclic(kind, src, dst)?;
        self.log.edits.push(EditRecord::EdgeAdded { src, dst });
        Ok(id)
    }

    /// Removes an edge; see [`Cdfg::remove_edge`].
    ///
    /// # Errors
    ///
    /// Returns [`CdfgError::UnknownEdge`] for missing or removed ids.
    pub fn remove_edge(&mut self, id: EdgeId) -> Result<Edge, CdfgError> {
        let edge = self.graph.remove_edge(id)?;
        self.log.edits.push(EditRecord::EdgeRemoved {
            src: edge.src(),
            dst: edge.dst(),
        });
        Ok(edge)
    }

    /// Removes every temporal edge; see [`Cdfg::strip_temporal_edges`].
    pub fn strip_temporal_edges(&mut self) -> usize {
        let ids: Vec<EdgeId> = self
            .graph
            .edge_ids()
            .filter(|&e| {
                self.graph
                    .edge(e)
                    .is_some_and(|x| x.kind() == EdgeKind::Temporal)
            })
            .collect();
        for id in &ids {
            let _ = self.remove_edge(*id);
        }
        ids.len()
    }

    /// Escape hatch to the raw graph for mutations the editor does not
    /// mirror. Using it marks the whole mutation as untracked, so the
    /// context falls back to full invalidation — correct, just not
    /// incremental.
    pub fn graph_mut(&mut self) -> &mut Cdfg {
        self.log.full = true;
        self.graph
    }
}

impl Deref for DesignEditor<'_> {
    type Target = Cdfg;

    fn deref(&self) -> &Cdfg {
        self.graph
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn editor_records_every_tracked_edit() {
        let mut g = Cdfg::new();
        let mut ed = DesignEditor::new(&mut g);
        let a = ed.add_node(OpKind::Input);
        let b = ed.add_named_node(OpKind::Add, "sum");
        ed.set_literal(a, 7);
        let e = ed.add_data_edge(a, b).unwrap();
        ed.remove_edge(e).unwrap();
        assert!(ed.add_edge_acyclic(EdgeKind::Data, b, a).is_ok());
        // A cycle-rejected edge records nothing.
        assert!(ed.add_edge_acyclic(EdgeKind::Data, a, b).is_err());
        let log = ed.into_log();
        assert!(!log.full);
        assert_eq!(
            log.edits,
            vec![
                EditRecord::NodeAdded(a),
                EditRecord::NodeAdded(b),
                EditRecord::LiteralSet(a),
                EditRecord::EdgeAdded { src: a, dst: b },
                EditRecord::EdgeRemoved { src: a, dst: b },
                EditRecord::EdgeAdded { src: b, dst: a },
            ]
        );
    }

    #[test]
    fn graph_mut_marks_the_log_full() {
        let mut g = Cdfg::new();
        let mut ed = DesignEditor::new(&mut g);
        ed.graph_mut().add_node(OpKind::Input);
        let log = ed.into_log();
        assert!(log.full);
        assert!(log.edits.is_empty());
    }

    #[test]
    fn deref_gives_read_access() {
        let mut g = Cdfg::new();
        let mut ed = DesignEditor::new(&mut g);
        let a = ed.add_named_node(OpKind::Input, "x");
        assert_eq!(ed.node_by_name("x"), Some(a));
        assert_eq!(ed.node_count(), 1);
    }
}
