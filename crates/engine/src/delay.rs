//! Delay models: fixed, bounded, and dynamically (input-dependent) bounded.

use localwm_cdfg::{Cdfg, NodeId, OpKind};

/// A closed delay interval `[lo, hi]` in abstract time units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DelayInterval {
    /// Minimum delay.
    pub lo: u64,
    /// Maximum delay.
    pub hi: u64,
}

impl DelayInterval {
    /// A point interval (fixed delay).
    pub fn fixed(d: u64) -> Self {
        DelayInterval { lo: d, hi: d }
    }

    /// An interval `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "delay interval must satisfy lo <= hi");
        DelayInterval { lo, hi }
    }

    /// Interval width (`hi - lo`).
    pub fn width(self) -> u64 {
        self.hi - self.lo
    }

    /// Whether a concrete delay lies within the interval.
    pub fn contains(self, d: u64) -> bool {
        (self.lo..=self.hi).contains(&d)
    }
}

/// A delay model assigning each node a (possibly input-dependent) delay
/// interval.
pub trait DelayBounds {
    /// Delay interval of node `n` in graph `g`.
    fn bounds(&self, g: &Cdfg, n: NodeId) -> DelayInterval;
}

/// Per-operation-kind static delay intervals.
///
/// The default model gives every schedulable operation `[1, 1]` (the
/// homogeneous SDF unit-delay model) and free nodes `[0, 0]`; multiplies can
/// be made slower and uncertain via [`KindBounds::with`].
///
/// ```
/// use localwm_cdfg::OpKind;
/// use localwm_engine::{DelayBounds, DelayInterval};
/// use localwm_engine::KindBounds;
///
/// let model = KindBounds::unit()
///     .with(OpKind::Mul, DelayInterval::new(2, 3));
/// ```
#[derive(Debug, Clone)]
pub struct KindBounds {
    default_sched: DelayInterval,
    overrides: Vec<(OpKind, DelayInterval)>,
}

impl KindBounds {
    /// The unit-delay model: `[1, 1]` for schedulable ops, `[0, 0]` free.
    pub fn unit() -> Self {
        KindBounds {
            default_sched: DelayInterval::fixed(1),
            overrides: Vec::new(),
        }
    }

    /// A uniformly uncertain model: every schedulable op in `[lo, hi]`.
    pub fn uniform(lo: u64, hi: u64) -> Self {
        KindBounds {
            default_sched: DelayInterval::new(lo, hi),
            overrides: Vec::new(),
        }
    }

    /// Overrides the interval for one operation kind.
    #[must_use]
    pub fn with(mut self, kind: OpKind, interval: DelayInterval) -> Self {
        self.overrides.retain(|(k, _)| *k != kind);
        self.overrides.push((kind, interval));
        self
    }
}

impl DelayBounds for KindBounds {
    fn bounds(&self, g: &Cdfg, n: NodeId) -> DelayInterval {
        let kind = g.kind(n);
        if !kind.is_schedulable() {
            return DelayInterval::fixed(0);
        }
        self.overrides
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|&(_, i)| i)
            .unwrap_or(self.default_sched)
    }
}

/// A *dynamically bounded* delay model: the interval of a node widens with
/// its fanin, modelling input-dependent switching — the more operands
/// (signal arrivals) an operation merges, the larger the spread between its
/// best-case (one controlling input settles the output early) and
/// worst-case (the last input is the deciding one) delays.
///
/// `delay(n) = [base.lo, base.hi + per_input * (fanin(n) - 1)]` for
/// schedulable nodes with at least one operand; sources/sinks keep the base
/// model's interval.
#[derive(Debug, Clone)]
pub struct DynamicBounds<M> {
    base: M,
    per_input: u64,
}

impl<M: DelayBounds> DynamicBounds<M> {
    /// Wraps a base model with a per-extra-input widening of `per_input`.
    pub fn new(base: M, per_input: u64) -> Self {
        DynamicBounds { base, per_input }
    }
}

impl<M: DelayBounds> DelayBounds for DynamicBounds<M> {
    fn bounds(&self, g: &Cdfg, n: NodeId) -> DelayInterval {
        let base = self.base.bounds(g, n);
        if !g.kind(n).is_schedulable() {
            return base;
        }
        let fanin = g.data_preds(n).count() as u64;
        let extra = self.per_input * fanin.saturating_sub(1);
        DelayInterval::new(base.lo, base.hi + extra)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::Cdfg;

    #[test]
    fn fixed_interval_contains_only_itself() {
        let i = DelayInterval::fixed(3);
        assert!(i.contains(3));
        assert!(!i.contains(2));
        assert_eq!(i.width(), 0);
    }

    #[test]
    #[should_panic(expected = "lo <= hi")]
    fn inverted_interval_panics() {
        let _ = DelayInterval::new(3, 1);
    }

    #[test]
    fn kind_bounds_override_and_default() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let m = g.add_node(OpKind::Mul);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, m).unwrap();
        g.add_data_edge(a, m).unwrap();
        let model = KindBounds::unit().with(OpKind::Mul, DelayInterval::new(2, 5));
        assert_eq!(model.bounds(&g, x), DelayInterval::fixed(0));
        assert_eq!(model.bounds(&g, a), DelayInterval::fixed(1));
        assert_eq!(model.bounds(&g, m), DelayInterval::new(2, 5));
    }

    #[test]
    fn dynamic_bounds_widen_with_fanin() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let y = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not); // fanin 1
        let s = g.add_node(OpKind::Add); // fanin 2
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(x, s).unwrap();
        g.add_data_edge(y, s).unwrap();
        let model = DynamicBounds::new(KindBounds::unit(), 2);
        assert_eq!(model.bounds(&g, a), DelayInterval::new(1, 1));
        assert_eq!(model.bounds(&g, s), DelayInterval::new(1, 3));
        assert_eq!(model.bounds(&g, x), DelayInterval::fixed(0));
    }
}
