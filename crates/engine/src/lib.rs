//! Shared analysis engine for the local-watermarks toolkit.
//!
//! Every pass in the workspace — timing, scheduling, watermark embedding and
//! detection, template matching, simulation — needs the same graph facts:
//! topological order, ASAP/ALAP windows, laxity, fanin cones, bounded-delay
//! critical paths. This crate computes each of them **once** and shares the
//! result:
//!
//! * [`DesignContext`] — a [`Cdfg`](localwm_cdfg::Cdfg) bundled with
//!   lazily-computed, memoized analyses and generation-counted invalidation
//!   on mutation. The single source of truth for derived graph facts.
//! * [`UnitTiming`] — the unit-delay (control-step) timing substrate:
//!   ASAP/ALAP steps, laxity, mobility windows, incremental edge updates.
//! * [`DelayBounds`] / [`bounded_arrival`] — interval ("bounded delay")
//!   critical-path analysis, including the input-dependent
//!   [`DynamicBounds`] model.
//! * [`Probe`] — dependency-free instrumentation hooks (counters, timers,
//!   events) with a JSON-dumpable [`RecordingProbe`].
//! * [`Parallelism`] / [`par_map`] — deterministic, order-preserving
//!   fan-out of independent work across a lazily-started persistent worker
//!   pool ([`pool_stats`] reports its activity).
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::designs::iir4_parallel;
//! use localwm_engine::{DesignContext, KindBounds};
//!
//! let ctx = DesignContext::new(iir4_parallel());
//! assert_eq!(ctx.critical_path(), 6);
//! let cp = ctx.bounded_critical_path(&KindBounds::uniform(1, 2));
//! assert_eq!((cp.lo, cp.hi), (6, 12));
//! // Repeat queries are cache hits; mutation invalidates.
//! ```

// `deny` rather than `forbid`: the worker pool contains one audited,
// narrowly-scoped `unsafe` (a job-lifetime erasure with a documented
// run-to-completion invariant); everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

#[cfg(feature = "alloc-count")]
mod allocstats;
mod bounded;
mod context;
mod delay;
mod editor;
mod par;
mod pool;
mod probe;
mod unit;

#[cfg(feature = "alloc-count")]
pub use allocstats::{alloc_stats, AllocStats, CountingAlloc};
pub use bounded::{
    bounded_arrival, bounded_arrival_with_csr, bounded_arrival_with_order, bounded_critical_path,
    possibly_critical, possibly_critical_with_arrival, possibly_critical_with_csr, BoundedArrival,
};
pub use context::{DesignContext, EngineError, WindowTable};
pub use delay::{DelayBounds, DelayInterval, DynamicBounds, KindBounds};
pub use editor::DesignEditor;
pub use par::{par_map, Parallelism};
pub use pool::{pool_stats, set_pool_threads, PoolStats};
pub use probe::{timed, NoopProbe, Probe, RecordingProbe};
pub use unit::UnitTiming;
