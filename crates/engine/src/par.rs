//! Deterministic fan-out of independent work across scoped threads.
//!
//! Passes that process independent localities (watermark attempt domains,
//! Monte-Carlo input vectors, …) fan them out with [`par_map`]. Results come
//! back **in input order** regardless of the worker count, so serial and
//! parallel runs of a deterministic per-item function are byte-identical.

use std::num::NonZeroUsize;

/// How much parallelism a pass may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Everything on the calling thread.
    Serial,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the worker count for a workload of `items` independent
    /// pieces; never more workers than items, never fewer than 1.
    pub fn worker_count(self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        };
        cap.min(items).max(1)
    }

    /// Reads the `LOCALWM_THREADS` environment variable: unset or invalid
    /// means [`Parallelism::Auto`], `0` or `1` means [`Parallelism::Serial`],
    /// `n > 1` means [`Parallelism::Threads`]`(n)`.
    pub fn from_env() -> Self {
        match std::env::var("LOCALWM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Ok(1) => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
                Err(_) => Parallelism::Auto,
            },
            Err(_) => Parallelism::Auto,
        }
    }
}

/// Maps `f` over `items`, fanning contiguous chunks out across scoped
/// threads. `f` receives `(index, &item)` and results are returned in input
/// order, so any deterministic `f` yields identical output for every
/// [`Parallelism`] choice.
///
/// # Panics
///
/// Propagates panics from `f` (the first panicking worker's payload).
///
/// ```
/// use localwm_engine::{par_map, Parallelism};
///
/// let squares = par_map(Parallelism::Threads(4), &[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let mut chunks: Vec<Vec<R>> = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(ci, slice)| {
                let f = &f;
                s.spawn(move || {
                    slice
                        .iter()
                        .enumerate()
                        .map(|(j, t)| f(ci * chunk + j, t))
                        .collect::<Vec<R>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => chunks.push(part),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    chunks.into_iter().flatten().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_worker_counts() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Threads(200),
        ] {
            let got = par_map(par, &items, |_, &x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "order broken under {par:?}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(Parallelism::Threads(3), &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u8> = par_map(Parallelism::Auto, &[] as &[u8], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(100), 1);
        assert_eq!(Parallelism::Threads(8).worker_count(3), 3);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }
}
