//! Deterministic fan-out of independent work across the persistent pool.
//!
//! Passes that process independent localities (watermark attempt domains,
//! Monte-Carlo input vectors, …) fan them out with [`par_map`]. Results come
//! back **in input order** regardless of the worker count, so serial and
//! parallel runs of a deterministic per-item function are byte-identical.
//!
//! Work runs on the process-wide [`pool`](crate::pool) (started lazily on
//! the first parallel call) instead of freshly spawned scoped threads, so
//! repeated short batches pay no thread-creation cost. Chunk boundaries are
//! still derived from [`Parallelism::worker_count`] alone — never from how
//! many pool threads happen to exist — so outputs are identical whatever
//! the pool's size.

use std::num::NonZeroUsize;

use crate::pool::run_batch;

/// How much parallelism a pass may use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// Everything on the calling thread.
    Serial,
    /// One worker per available hardware thread.
    #[default]
    Auto,
    /// Exactly this many workers (clamped to at least 1).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the worker count for a workload of `items` independent
    /// pieces; never more workers than items, never fewer than 1.
    pub fn worker_count(self, items: usize) -> usize {
        let cap = match self {
            Parallelism::Serial => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(NonZeroUsize::get)
                .unwrap_or(1),
            Parallelism::Threads(n) => n.max(1),
        };
        cap.min(items).max(1)
    }

    /// Reads the `LOCALWM_THREADS` environment variable: unset or invalid
    /// means [`Parallelism::Auto`], `0` or `1` means [`Parallelism::Serial`],
    /// `n > 1` means [`Parallelism::Threads`]`(n)`.
    pub fn from_env() -> Self {
        match std::env::var("LOCALWM_THREADS") {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(0) | Ok(1) => Parallelism::Serial,
                Ok(n) => Parallelism::Threads(n),
                Err(_) => Parallelism::Auto,
            },
            Err(_) => Parallelism::Auto,
        }
    }
}

/// Maps `f` over `items`, fanning contiguous chunks out across the
/// persistent worker pool. `f` receives `(index, &item)` and results are
/// returned in input order, so any deterministic `f` yields identical
/// output for every [`Parallelism`] choice.
///
/// When the resolved worker count is 1 — [`Parallelism::Serial`], a
/// single-item workload, or [`Parallelism::Auto`] on a single-core host —
/// the map runs inline on the calling thread with **no pool interaction**
/// (the pool is not even started).
///
/// # Panics
///
/// Propagates panics from `f` (the first captured payload, after the whole
/// batch has finished).
///
/// ```
/// use localwm_engine::{par_map, Parallelism};
///
/// let squares = par_map(Parallelism::Threads(4), &[1u64, 2, 3, 4, 5], |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16, 25]);
/// ```
pub fn par_map<T, R, F>(par: Parallelism, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = par.worker_count(items.len());
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let chunk = items.len().div_ceil(workers);
    let nchunks = items.len().div_ceil(chunk);
    let mut parts: Vec<Option<Vec<R>>> = Vec::with_capacity(nchunks);
    parts.resize_with(nchunks, || None);
    run_batch(
        parts
            .iter_mut()
            .zip(items.chunks(chunk))
            .enumerate()
            .map(|(ci, (slot, slice))| {
                let f = &f;
                move || {
                    *slot = Some(
                        slice
                            .iter()
                            .enumerate()
                            .map(|(j, t)| f(ci * chunk + j, t))
                            .collect::<Vec<R>>(),
                    );
                }
            }),
    );
    parts
        .into_iter()
        .flat_map(|p| p.expect("batch ran every chunk"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_across_worker_counts() {
        let items: Vec<u32> = (0..103).collect();
        let expect: Vec<u64> = items.iter().map(|&x| u64::from(x) * 3 + 1).collect();
        for par in [
            Parallelism::Serial,
            Parallelism::Auto,
            Parallelism::Threads(2),
            Parallelism::Threads(7),
            Parallelism::Threads(200),
        ] {
            let got = par_map(par, &items, |_, &x| u64::from(x) * 3 + 1);
            assert_eq!(got, expect, "order broken under {par:?}");
        }
    }

    #[test]
    fn indices_match_positions() {
        let items = vec!["a", "b", "c", "d", "e"];
        let got = par_map(Parallelism::Threads(3), &items, |i, &s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c", "3:d", "4:e"]);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u8> = par_map(Parallelism::Auto, &[] as &[u8], |_, &x| x);
        assert!(got.is_empty());
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(Parallelism::Serial.worker_count(100), 1);
        assert_eq!(Parallelism::Threads(0).worker_count(100), 1);
        assert_eq!(Parallelism::Threads(8).worker_count(3), 3);
        assert!(Parallelism::Auto.worker_count(100) >= 1);
    }

    #[test]
    fn single_worker_resolution_stays_off_the_pool() {
        // Serial (and Auto on a single-core host) resolves to one worker,
        // which must take the inline path: every call to `f` happens on the
        // calling thread, with no pool hand-off.
        let me = std::thread::current().id();
        let items: Vec<u32> = (0..50).collect();
        let mut modes = vec![Parallelism::Serial, Parallelism::Threads(1)];
        if Parallelism::Auto.worker_count(usize::MAX) == 1 {
            modes.push(Parallelism::Auto); // single-core host
        }
        for par in modes {
            let got = par_map(par, &items, |_, &x| (x + 1, std::thread::current().id()));
            assert!(
                got.iter().all(|&(_, tid)| tid == me),
                "inline path left the calling thread under {par:?}"
            );
        }
    }

    #[test]
    fn panics_propagate_from_pool_workers() {
        let items: Vec<u32> = (0..40).collect();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_map(Parallelism::Threads(4), &items, |i, _| {
                assert!(i != 17, "seventeen");
                i
            });
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn repeated_batches_reuse_the_pool() {
        // Two parallel calls must not change the pool's thread count (the
        // pool persists), and each queued batch drains completely.
        let items: Vec<u32> = (0..64).collect();
        let a = par_map(Parallelism::Threads(4), &items, |_, &x| u64::from(x) * 2);
        let threads_after_first = crate::pool_stats().threads;
        let b = par_map(Parallelism::Threads(4), &items, |_, &x| u64::from(x) * 2);
        assert_eq!(a, b);
        assert_eq!(crate::pool_stats().threads, threads_after_first);
    }
}
