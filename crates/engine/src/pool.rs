//! A lazily-started, persistent work-stealing pool for
//! [`par_map`](crate::par_map).
//!
//! The previous pool held one global FIFO of jobs, so concurrent `par_map`
//! batches (e.g. two serve requests analyzing different designs) queued
//! whole-batch-at-a-time: a worker draining batch A never helped batch B
//! until A's queue ran dry, and a submitter waiting on its own batch
//! parked instead of helping anyone. This pool gives every batch its own
//! queue and lets **all** threads steal across batches:
//!
//! * **Workers** scan the batch registry round-robin and steal a job from
//!   whichever batch has one ([`PoolStats::steals`]), so two concurrent
//!   batches interleave at job granularity instead of serializing.
//! * **Submitters** drain their own batch first, then — while waiting for
//!   their stolen-away jobs to finish elsewhere — steal jobs from *other*
//!   batches ([`PoolStats::cross_batch_steals`]) instead of parking: under
//!   contention every thread stays busy until the fleet-wide queue is dry.
//!
//! # Lifecycle
//!
//! * **Lazy start** — no threads exist until the first batch is submitted;
//!   purely serial processes never pay for the pool.
//! * **Sizing** — the worker count resolves once, at first use:
//!   an explicit [`set_pool_threads`] override wins, else `LOCALWM_THREADS`
//!   (minus one for the participating submitter), else
//!   `available_parallelism − 1`. The override exists so tests (and the CI
//!   oversubscription lane) can pin a deterministic pool size on a host
//!   whose core count would otherwise decide it.
//! * **Drain on idle** — workers park on the registry condvar when no batch
//!   has work ([`PoolStats::park_wakeups`] counts their wakeups); threads
//!   persist for the process lifetime.
//! * **Submitter participation** — the submitting thread always runs the
//!   first job of its batch inline and then helps drain its own queue.
//!   Progress therefore never depends on pool capacity: on a single-core
//!   host the pool has zero workers and the submitter simply runs every
//!   job itself.
//! * **Panic propagation** — a panicking job is caught, the batch still
//!   runs (and is waited) to completion, and the first captured payload is
//!   re-thrown to the submitter afterwards.
//!
//! # Safety
//!
//! Jobs borrow from the submitting stack frame (`&items`, `&f`, `&mut`
//! output slots) but run on `'static` worker threads, so submission erases
//! their lifetime (the one `unsafe` in this crate). Soundness rests on a
//! single invariant, enforced by [`run_batch`]: **the submitter does not
//! return until every job of its batch has finished running** — normally or
//! by panic — so no job can outlive the frame it borrows from. Cross-batch
//! stealing does not weaken this: a submitter stealing foreign work runs it
//! synchronously on its own stack *before* re-checking its own batch, and
//! still only returns once its own `remaining` count hits zero. This is the
//! same contract `std::thread::scope` provides, implemented with a batch
//! completion count and a condvar instead of joins.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send>;

/// One batch: its unstarted jobs plus the completion state shared between
/// its submitter and every thread that stole from it.
struct BatchQueue {
    /// Jobs not yet picked up by any thread.
    jobs: Mutex<VecDeque<Job>>,
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    /// Jobs not yet finished (queued, stolen, or running).
    remaining: usize,
    /// First captured panic payload, re-thrown by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// The process-wide pool: a registry of batches with queued work and the
/// parked workers serving them.
struct Pool {
    /// Batches that still have unstarted jobs, in registration order.
    /// Lock order: `registry` before any `BatchQueue::jobs` — never the
    /// reverse while the registry lock is held elsewhere.
    registry: Mutex<Vec<Arc<BatchQueue>>>,
    work: Condvar,
    threads: usize,
    /// Rotating scan start so concurrent thieves spread across batches
    /// instead of all hammering the oldest one.
    next_scan: AtomicUsize,
    jobs: AtomicU64,
    park_wakeups: AtomicU64,
    steals: AtomicU64,
    cross_batch_steals: AtomicU64,
}

/// Snapshot of pool activity, surfaced through service `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool started (0 until first use, and on
    /// single-core hosts without an override).
    pub threads: usize,
    /// Jobs executed through the pool (including ones the submitting
    /// thread ran itself).
    pub jobs: u64,
    /// Jobs pool workers took from a batch queue. Workers have no batch of
    /// their own, so every job a worker runs is a steal.
    pub steals: u64,
    /// Jobs a *submitter* stole from a **different** request's batch while
    /// waiting for its own stolen-away jobs to finish — the cross-request
    /// interleaving this pool exists to provide.
    pub cross_batch_steals: u64,
    /// Times an idle worker woke from its park to look for work.
    pub park_wakeups: u64,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// Unset sentinel for [`set_pool_threads`].
const POOL_THREADS_UNSET: usize = usize::MAX;

static POOL_THREADS_OVERRIDE: AtomicUsize = AtomicUsize::new(POOL_THREADS_UNSET);

/// Pins the pool's worker-thread count, overriding both `LOCALWM_THREADS`
/// and the `available_parallelism − 1` default. Returns `true` when the
/// override will take effect — i.e. the pool has not started yet. Once the
/// first batch has been submitted the size is pinned for the process
/// lifetime and this returns `false` (the override is recorded but inert).
///
/// Tests and the CI oversubscription lane call this first thing so the
/// pool's size — and therefore which interleavings exist to be exercised —
/// does not depend on the host's core count.
pub fn set_pool_threads(workers: usize) -> bool {
    POOL_THREADS_OVERRIDE.store(workers, Ordering::SeqCst);
    POOL.get().is_none()
}

/// Resolves the worker count the pool will start with: explicit override,
/// else `LOCALWM_THREADS − 1` (the submitter participates), else
/// `available_parallelism − 1`.
fn resolve_threads() -> usize {
    let explicit = POOL_THREADS_OVERRIDE.load(Ordering::SeqCst);
    if explicit != POOL_THREADS_UNSET {
        return explicit;
    }
    if let Ok(v) = std::env::var("LOCALWM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.saturating_sub(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .saturating_sub(1)
}

/// The pool handle, starting the workers on first call.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = resolve_threads();
        let p: &'static Pool = Box::leak(Box::new(Pool {
            registry: Mutex::new(Vec::new()),
            work: Condvar::new(),
            threads,
            next_scan: AtomicUsize::new(0),
            jobs: AtomicU64::new(0),
            park_wakeups: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            cross_batch_steals: AtomicU64::new(0),
        }));
        for i in 0..threads {
            std::thread::Builder::new()
                .name(format!("localwm-pool-{i}"))
                .spawn(move || worker_loop(p))
                .expect("spawn pool worker");
        }
        p
    })
}

/// Activity counters of the shared pool. Zero if no batch was ever
/// submitted (the stats call itself does not start the pool's threads —
/// it only reads what exists).
pub fn pool_stats() -> PoolStats {
    match POOL.get() {
        Some(p) => PoolStats {
            threads: p.threads,
            jobs: p.jobs.load(Ordering::Relaxed),
            steals: p.steals.load(Ordering::Relaxed),
            cross_batch_steals: p.cross_batch_steals.load(Ordering::Relaxed),
            park_wakeups: p.park_wakeups.load(Ordering::Relaxed),
        },
        None => PoolStats {
            threads: 0,
            jobs: 0,
            steals: 0,
            cross_batch_steals: 0,
            park_wakeups: 0,
        },
    }
}

/// Steals one job from any registered batch except `exclude`, scanning
/// round-robin from a rotating start. Caller holds the registry lock.
fn try_steal(
    pool: &Pool,
    registry: &[Arc<BatchQueue>],
    exclude: Option<&Arc<BatchQueue>>,
) -> Option<(Arc<BatchQueue>, Job)> {
    if registry.is_empty() {
        return None;
    }
    let start = pool.next_scan.fetch_add(1, Ordering::Relaxed) % registry.len();
    for i in 0..registry.len() {
        let bq = &registry[(start + i) % registry.len()];
        if exclude.is_some_and(|ex| Arc::ptr_eq(bq, ex)) {
            continue;
        }
        let mut q = bq.jobs.lock().expect("batch queue lock");
        if let Some(job) = q.pop_front() {
            drop(q);
            return Some((Arc::clone(bq), job));
        }
    }
    None
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let (bq, job) = {
            let mut reg = pool.registry.lock().expect("pool registry lock");
            loop {
                if let Some(found) = try_steal(pool, &reg, None) {
                    break found;
                }
                reg = pool.work.wait(reg).expect("pool registry wait");
                pool.park_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        };
        pool.steals.fetch_add(1, Ordering::Relaxed);
        run_job(pool, &bq, job);
    }
}

/// Runs one job, counting it and updating its batch (never unwinds).
fn run_job(pool: &Pool, batch: &BatchQueue, job: Job) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    pool.jobs.fetch_add(1, Ordering::Relaxed);
    let mut st = batch.state.lock().expect("batch lock");
    st.remaining -= 1;
    if let Err(payload) = result {
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
    }
    if st.remaining == 0 {
        batch.done.notify_all();
    }
}

/// Erases the borrow lifetime of a job so it can sit on the `'static`
/// queue. Sound **only** under the run-to-completion invariant documented
/// at module level and upheld by [`run_batch`].
#[allow(unsafe_code)]
fn erase<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    // SAFETY: run_batch blocks until `remaining == 0`, i.e. until this
    // closure has either run to completion or panicked (and the payload
    // been captured), before the submitting frame — owner of everything
    // the closure borrows — can return.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) }
}

/// Runs every job of one batch to completion across the pool, the
/// submitting thread included, then re-throws the first captured panic.
///
/// Jobs may borrow from the caller's stack frame; the call does not return
/// until all of them have finished. While its own queue is empty but jobs
/// are still running elsewhere, the submitter steals work from *other*
/// batches instead of blocking, so concurrent requests make progress on
/// every thread that has nothing better to do.
pub(crate) fn run_batch<'scope, I, J>(jobs: I)
where
    I: IntoIterator<Item = J>,
    J: FnOnce() + Send + 'scope,
{
    let mut queued: Vec<Job> = jobs
        .into_iter()
        .map(|j| erase(Box::new(j) as Box<dyn FnOnce() + Send + 'scope>))
        .collect();
    if queued.is_empty() {
        return;
    }
    let first = queued.remove(0);
    let bq = Arc::new(BatchQueue {
        jobs: Mutex::new(VecDeque::from(queued)),
        state: Mutex::new(BatchState {
            remaining: 0, // set below, before anyone can see the batch
            panic: None,
        }),
        done: Condvar::new(),
    });
    {
        let mut st = bq.state.lock().expect("batch lock");
        st.remaining = 1 + bq.jobs.lock().expect("batch queue lock").len();
    }
    let pool = pool();
    let registered = !bq.jobs.lock().expect("batch queue lock").is_empty();
    if registered {
        let mut reg = pool.registry.lock().expect("pool registry lock");
        reg.push(Arc::clone(&bq));
        drop(reg);
        pool.work.notify_all();
    }
    // The submitter works too: its first job inline, then its own queue.
    run_job(pool, &bq, first);
    loop {
        // Own batch first: keeps the common (uncontended) case on the
        // fast path and preserves the run-to-completion invariant.
        let own = bq.jobs.lock().expect("batch queue lock").pop_front();
        if let Some(job) = own {
            run_job(pool, &bq, job);
            continue;
        }
        if bq.state.lock().expect("batch lock").remaining == 0 {
            break;
        }
        // Own jobs are running on other threads: help a *different* batch
        // rather than parking, then re-check.
        let stolen = {
            let reg = pool.registry.lock().expect("pool registry lock");
            try_steal(pool, &reg, Some(&bq))
        };
        match stolen {
            Some((other, job)) => {
                pool.cross_batch_steals.fetch_add(1, Ordering::Relaxed);
                run_job(pool, &other, job);
            }
            None => {
                // Fleet-wide queues are dry; wait for our runners.
                let mut st = bq.state.lock().expect("batch lock");
                while st.remaining > 0 {
                    st = bq.done.wait(st).expect("batch wait");
                }
                break;
            }
        }
    }
    // Deregister: the queue is empty (drained by us and the thieves), so
    // the registry entry is dead weight for future scans.
    if registered {
        let mut reg = pool.registry.lock().expect("pool registry lock");
        reg.retain(|b| !Arc::ptr_eq(b, &bq));
    }
    let mut st = bq.state.lock().expect("batch lock");
    debug_assert_eq!(st.remaining, 0, "batch left unfinished");
    if let Some(payload) = st.panic.take() {
        drop(st);
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_batch(hits.iter().map(|h| {
            || {
                h.fetch_add(1, Ordering::SeqCst);
            }
        }));
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        run_batch(Vec::<fn()>::new());
    }

    #[test]
    fn jobs_can_borrow_mutably_through_disjoint_slots() {
        let mut out = vec![0u64; 8];
        run_batch(out.iter_mut().enumerate().map(|(i, slot)| {
            move || {
                *slot = (i as u64) * 10;
            }
        }));
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn panic_is_rethrown_after_the_batch_completes() {
        let done = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch((0..6).map(|i| {
                let done = &done;
                move || {
                    if i == 2 {
                        panic!("boom in job {i}");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom in job 2"));
        // Every non-panicking job still ran before the rethrow.
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn stats_count_jobs() {
        let before = pool_stats();
        run_batch((0..5).map(|_| || {}));
        let after = pool_stats();
        assert!(after.jobs >= before.jobs + 5);
    }

    #[test]
    fn concurrent_batches_all_complete() {
        // Several submitters in flight at once: every batch's jobs run
        // exactly once whatever mix of own-runs and steals serves them.
        let counters: Vec<Vec<AtomicUsize>> = (0..4)
            .map(|_| (0..32).map(|_| AtomicUsize::new(0)).collect())
            .collect();
        std::thread::scope(|s| {
            for hits in &counters {
                s.spawn(move || {
                    run_batch(hits.iter().map(|h| {
                        || {
                            h.fetch_add(1, Ordering::SeqCst);
                        }
                    }));
                });
            }
        });
        for hits in &counters {
            for h in hits {
                assert_eq!(h.load(Ordering::SeqCst), 1);
            }
        }
    }

    #[test]
    fn registry_is_empty_once_batches_complete() {
        run_batch((0..16).map(|_| || {}));
        if let Some(p) = POOL.get() {
            assert!(
                p.registry.lock().expect("registry lock").is_empty(),
                "completed batches must deregister"
            );
        }
    }
}
