//! A lazily-started, persistent worker pool for [`par_map`](crate::par_map).
//!
//! The previous fan-out spawned fresh OS threads inside
//! `std::thread::scope` on every call — measurable overhead when a service
//! runs thousands of short analysis batches. This pool starts its workers
//! once (first parallel submission), parks them on a condvar while idle,
//! and hands them per-call *batches* of jobs.
//!
//! # Lifecycle
//!
//! * **Lazy start** — no threads exist until the first batch is submitted;
//!   purely serial processes never pay for the pool.
//! * **Drain on idle** — workers park on the queue condvar when no jobs are
//!   pending ([`PoolStats::park_wakeups`] counts their wakeups); threads
//!   persist for the process lifetime.
//! * **Submitter participation** — the submitting thread always runs the
//!   first job of its batch inline and then helps drain the rest of its own
//!   batch from the queue. Progress therefore never depends on pool
//!   capacity: on a single-core host the pool has zero workers and the
//!   submitter simply runs every job itself.
//! * **Panic propagation** — a panicking job is caught, the batch still
//!   runs (and is waited) to completion, and the first captured payload is
//!   re-thrown to the submitter afterwards.
//!
//! # Safety
//!
//! Jobs borrow from the submitting stack frame (`&items`, `&f`, `&mut`
//! output slots) but run on `'static` worker threads, so submission erases
//! their lifetime (the one `unsafe` in this crate). Soundness rests on a
//! single invariant, enforced by [`run_batch`]: **the submitter does not
//! return until every job of its batch has finished running** — normally or
//! by panic — so no job can outlive the frame it borrows from. This is the
//! same contract `std::thread::scope` provides, implemented with a batch
//! completion count and a condvar instead of joins.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A lifetime-erased unit of work.
type Job = Box<dyn FnOnce() + Send>;

/// Completion state shared between one submitter and the workers running
/// its jobs.
struct Batch {
    state: Mutex<BatchState>,
    done: Condvar,
}

struct BatchState {
    /// Jobs not yet finished (queued, stolen, or running).
    remaining: usize,
    /// First captured panic payload, re-thrown by the submitter.
    panic: Option<Box<dyn std::any::Any + Send>>,
}

/// One queued job plus the batch it belongs to.
struct QueuedJob {
    batch: Arc<Batch>,
    job: Job,
}

/// The process-wide pool: a FIFO of queued jobs and the parked workers
/// serving it.
struct Pool {
    queue: Mutex<VecDeque<QueuedJob>>,
    work: Condvar,
    threads: usize,
    jobs: AtomicU64,
    park_wakeups: AtomicU64,
}

/// Snapshot of pool activity, surfaced through service `stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads the pool started (0 until first use, and on
    /// single-core hosts).
    pub threads: usize,
    /// Jobs executed through the pool (including ones the submitting
    /// thread ran itself).
    pub jobs: u64,
    /// Times an idle worker woke from its park to look for work.
    pub park_wakeups: u64,
}

static POOL: OnceLock<&'static Pool> = OnceLock::new();

/// The pool handle, starting the workers on first call.
fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let threads = std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
            .saturating_sub(1);
        let p: &'static Pool = Box::leak(Box::new(Pool {
            queue: Mutex::new(VecDeque::new()),
            work: Condvar::new(),
            threads,
            jobs: AtomicU64::new(0),
            park_wakeups: AtomicU64::new(0),
        }));
        for i in 0..threads {
            std::thread::Builder::new()
                .name(format!("localwm-pool-{i}"))
                .spawn(move || worker_loop(p))
                .expect("spawn pool worker");
        }
        p
    })
}

/// Activity counters of the shared pool. Zero if no batch was ever
/// submitted (the stats call itself does not start the pool's threads —
/// it only reads what exists).
pub fn pool_stats() -> PoolStats {
    match POOL.get() {
        Some(p) => PoolStats {
            threads: p.threads,
            jobs: p.jobs.load(Ordering::Relaxed),
            park_wakeups: p.park_wakeups.load(Ordering::Relaxed),
        },
        None => PoolStats {
            threads: 0,
            jobs: 0,
            park_wakeups: 0,
        },
    }
}

fn worker_loop(pool: &'static Pool) {
    loop {
        let entry = {
            let mut q = pool.queue.lock().expect("pool queue lock");
            loop {
                if let Some(e) = q.pop_front() {
                    break e;
                }
                q = pool.work.wait(q).expect("pool queue wait");
                pool.park_wakeups.fetch_add(1, Ordering::Relaxed);
            }
        };
        run_job(pool, &entry.batch, entry.job);
    }
}

/// Runs one job, counting it and updating its batch (never unwinds).
fn run_job(pool: &Pool, batch: &Batch, job: Job) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    pool.jobs.fetch_add(1, Ordering::Relaxed);
    let mut st = batch.state.lock().expect("batch lock");
    st.remaining -= 1;
    if let Err(payload) = result {
        if st.panic.is_none() {
            st.panic = Some(payload);
        }
    }
    if st.remaining == 0 {
        batch.done.notify_all();
    }
}

/// Removes one not-yet-started job of `batch` from the queue, if any.
fn steal_own(pool: &Pool, batch: &Arc<Batch>) -> Option<Job> {
    let mut q = pool.queue.lock().expect("pool queue lock");
    let idx = q.iter().position(|e| Arc::ptr_eq(&e.batch, batch))?;
    q.remove(idx).map(|e| e.job)
}

/// Erases the borrow lifetime of a job so it can sit on the `'static`
/// queue. Sound **only** under the run-to-completion invariant documented
/// at module level and upheld by [`run_batch`].
#[allow(unsafe_code)]
fn erase<'scope>(job: Box<dyn FnOnce() + Send + 'scope>) -> Job {
    // SAFETY: run_batch blocks until `remaining == 0`, i.e. until this
    // closure has either run to completion or panicked (and the payload
    // been captured), before the submitting frame — owner of everything
    // the closure borrows — can return.
    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(job) }
}

/// Runs every job of one batch to completion across the pool, the
/// submitting thread included, then re-throws the first captured panic.
///
/// Jobs may borrow from the caller's stack frame; the call does not return
/// until all of them have finished.
pub(crate) fn run_batch<'scope, I, J>(jobs: I)
where
    I: IntoIterator<Item = J>,
    J: FnOnce() + Send + 'scope,
{
    let mut queued: Vec<Job> = jobs
        .into_iter()
        .map(|j| erase(Box::new(j) as Box<dyn FnOnce() + Send + 'scope>))
        .collect();
    if queued.is_empty() {
        return;
    }
    let first = queued.remove(0);
    let batch = Arc::new(Batch {
        state: Mutex::new(BatchState {
            remaining: 1 + queued.len(),
            panic: None,
        }),
        done: Condvar::new(),
    });
    let pool = pool();
    if !queued.is_empty() {
        let mut q = pool.queue.lock().expect("pool queue lock");
        q.extend(queued.into_iter().map(|job| QueuedJob {
            batch: Arc::clone(&batch),
            job,
        }));
        drop(q);
        pool.work.notify_all();
    }
    // The submitter works too: its own first chunk, then whatever of its
    // batch the workers have not picked up yet.
    run_job(pool, &batch, first);
    while let Some(job) = steal_own(pool, &batch) {
        run_job(pool, &batch, job);
    }
    let mut st = batch.state.lock().expect("batch lock");
    while st.remaining > 0 {
        st = batch.done.wait(st).expect("batch wait");
    }
    if let Some(payload) = st.panic.take() {
        drop(st);
        std::panic::resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn batch_runs_every_job_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        run_batch(hits.iter().map(|h| {
            || {
                h.fetch_add(1, Ordering::SeqCst);
            }
        }));
        for h in &hits {
            assert_eq!(h.load(Ordering::SeqCst), 1);
        }
    }

    #[test]
    fn empty_batch_is_a_noop() {
        run_batch(Vec::<fn()>::new());
    }

    #[test]
    fn jobs_can_borrow_mutably_through_disjoint_slots() {
        let mut out = vec![0u64; 8];
        run_batch(out.iter_mut().enumerate().map(|(i, slot)| {
            move || {
                *slot = (i as u64) * 10;
            }
        }));
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50, 60, 70]);
    }

    #[test]
    fn panic_is_rethrown_after_the_batch_completes() {
        let done = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_batch((0..6).map(|i| {
                let done = &done;
                move || {
                    if i == 2 {
                        panic!("boom in job {i}");
                    }
                    done.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("boom in job 2"));
        // Every non-panicking job still ran before the rethrow.
        assert_eq!(done.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn stats_count_jobs() {
        let before = pool_stats();
        run_batch((0..5).map(|_| || {}));
        let after = pool_stats();
        assert!(after.jobs >= before.jobs + 5);
    }
}
