//! A counting global allocator for allocation-budget regression tests.
//!
//! [`CountingAlloc`] wraps [`System`] and counts every `alloc` /
//! `realloc` / `alloc_zeroed` call (and the bytes they request) in
//! process-wide relaxed atomics. The type exists behind the `alloc-count`
//! feature and is **not** registered by this crate: each binary or test
//! that wants counting declares its own
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: localwm_engine::CountingAlloc = localwm_engine::CountingAlloc;
//! ```
//!
//! so enabling the feature never changes a build that didn't opt in, and
//! two crates can't fight over the registration. Counter reads are
//! snapshots ([`alloc_stats`]): the hot-path budget tests take a snapshot,
//! run N warm requests, take another, and assert on the per-request delta
//! ([`AllocStats::delta`]). Counters are process-wide — every thread's
//! allocations land in the same totals — which is exactly what a
//! "whole request path, client and server included" budget wants.
#![allow(unsafe_code)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// A `System`-backed global allocator that counts calls and bytes.
/// Register it with `#[global_allocator]` in the binary under test.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        // A realloc is one allocator round-trip; count the grown size so
        // byte totals reflect what the program asked for, not the delta.
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// A snapshot of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocStats {
    /// Allocator calls that handed out memory (`alloc`, `alloc_zeroed`,
    /// `realloc`).
    pub allocs: u64,
    /// `dealloc` calls.
    pub frees: u64,
    /// Total bytes requested across counted calls.
    pub bytes: u64,
}

impl AllocStats {
    /// The counter movement since an `earlier` snapshot.
    #[must_use]
    pub fn delta(&self, earlier: &AllocStats) -> AllocStats {
        AllocStats {
            allocs: self.allocs - earlier.allocs,
            frees: self.frees - earlier.frees,
            bytes: self.bytes - earlier.bytes,
        }
    }
}

/// The current process-wide counters. Zeros until a binary registers
/// [`CountingAlloc`] as its global allocator.
#[must_use]
pub fn alloc_stats() -> AllocStats {
    AllocStats {
        allocs: ALLOCS.load(Ordering::Relaxed),
        frees: FREES.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}
