//! Interval critical-path analysis under bounded delay models.

use localwm_cdfg::{Cdfg, Csr, NodeId};

use crate::{DelayBounds, DelayInterval};

/// Per-node arrival (finish-time) intervals and the circuit-level critical
/// path interval computed under a bounded delay model.
#[derive(Debug, Clone)]
pub struct BoundedArrival {
    /// Finish-time interval of each node, indexed by `NodeId::index`.
    pub finish: Vec<DelayInterval>,
    /// Interval containing the true critical path for every delay
    /// assignment consistent with the model.
    pub critical_path: DelayInterval,
}

/// Propagates arrival intervals through the DAG.
///
/// For each node, `finish.lo = max over preds(pred.lo) + delay.lo` and
/// `finish.hi = max over preds(pred.hi) + delay.hi`. Under the monotone
/// structure of longest-path propagation the resulting circuit interval is
/// *exact*: both endpoints are achieved by the all-minimum and all-maximum
/// delay assignments respectively, and every intermediate assignment lands
/// inside (a property the test-suite verifies by Monte-Carlo sampling).
///
/// # Panics
///
/// Panics if the graph is cyclic.
///
/// ```
/// use localwm_cdfg::designs::iir4_parallel;
/// use localwm_engine::{bounded_arrival, KindBounds};
///
/// let g = iir4_parallel();
/// let arr = bounded_arrival(&g, &KindBounds::uniform(1, 2));
/// assert_eq!(arr.critical_path.lo, 6);
/// assert_eq!(arr.critical_path.hi, 12);
/// ```
pub fn bounded_arrival<M: DelayBounds + ?Sized>(g: &Cdfg, model: &M) -> BoundedArrival {
    let order = g.topo_order().expect("bounded arrival requires a DAG");
    bounded_arrival_with_order(g, &order, model)
}

/// [`bounded_arrival`] over a precomputed topological order (the memoized
/// [`DesignContext`](crate::DesignContext) path).
pub fn bounded_arrival_with_order<M: DelayBounds + ?Sized>(
    g: &Cdfg,
    order: &[NodeId],
    model: &M,
) -> BoundedArrival {
    let mut finish = vec![DelayInterval::fixed(0); g.node_count()];
    let mut cp = DelayInterval::fixed(0);
    for &u in order {
        let mut in_lo = 0u64;
        let mut in_hi = 0u64;
        for p in g.preds(u) {
            in_lo = in_lo.max(finish[p.index()].lo);
            in_hi = in_hi.max(finish[p.index()].hi);
        }
        let d = model.bounds(g, u);
        let f = DelayInterval::new(in_lo + d.lo, in_hi + d.hi);
        finish[u.index()] = f;
        cp = DelayInterval::new(cp.lo.max(f.lo), cp.hi.max(f.hi));
    }
    BoundedArrival {
        finish,
        critical_path: cp,
    }
}

/// [`bounded_arrival`] over the flat CSR hot path: per-node delay bounds
/// come from a precomputed table and predecessors from a packed
/// [`Csr`](localwm_cdfg::Csr) view, so the sweep touches two flat arrays
/// instead of chasing `EdgeId → Option<Edge>` indirections.
///
/// `order` and `preds` must come from the same topological order (the
/// memoized [`DesignContext`](crate::DesignContext) guarantees this).
/// Produces bit-identical results to [`bounded_arrival_with_order`] with an
/// equivalent model: `max` is insensitive to neighbor enumeration order.
pub fn bounded_arrival_with_csr(
    order: &[NodeId],
    preds: &Csr,
    bounds: &[DelayInterval],
) -> BoundedArrival {
    let mut finish = vec![DelayInterval::fixed(0); order.len()];
    let mut cp = DelayInterval::fixed(0);
    for (p, &u) in order.iter().enumerate() {
        let mut in_lo = 0u64;
        let mut in_hi = 0u64;
        for &pi in preds.row(p) {
            let f = finish[pi as usize];
            in_lo = in_lo.max(f.lo);
            in_hi = in_hi.max(f.hi);
        }
        let d = bounds[u.index()];
        let f = DelayInterval::new(in_lo + d.lo, in_hi + d.hi);
        finish[u.index()] = f;
        cp = DelayInterval::new(cp.lo.max(f.lo), cp.hi.max(f.hi));
    }
    BoundedArrival {
        finish,
        critical_path: cp,
    }
}

/// The circuit critical-path interval under a bounded delay model.
pub fn bounded_critical_path<M: DelayBounds + ?Sized>(g: &Cdfg, model: &M) -> DelayInterval {
    bounded_arrival(g, model).critical_path
}

/// Nodes that are *possibly critical*: nodes whose worst-case slack is zero,
/// i.e. that lie on a path achieving the upper critical-path bound.
///
/// Every node that is critical under **some** consistent delay assignment
/// with circuit delay equal to `critical_path.hi` is included.
pub fn possibly_critical<M: DelayBounds + ?Sized>(g: &Cdfg, model: &M) -> Vec<NodeId> {
    let order = g.topo_order().expect("possibly_critical requires a DAG");
    let arr = bounded_arrival_with_order(g, &order, model);
    possibly_critical_with_arrival(g, &order, model, &arr)
}

/// [`possibly_critical`] over a precomputed topological order and arrival
/// analysis (the memoized [`DesignContext`](crate::DesignContext) path).
pub fn possibly_critical_with_arrival<M: DelayBounds + ?Sized>(
    g: &Cdfg,
    order: &[NodeId],
    model: &M,
    arr: &BoundedArrival,
) -> Vec<NodeId> {
    // Required (latest) finish times under the all-max assignment.
    let mut required = vec![u64::MAX; g.node_count()];
    for &u in order.iter().rev() {
        let r = if g.succs(u).next().is_none() {
            arr.critical_path.hi
        } else {
            required[u.index()]
        };
        required[u.index()] = required[u.index()].min(r);
        let d = model.bounds(g, u);
        let start_latest = r - d.hi;
        for p in g.preds(u) {
            required[p.index()] = required[p.index()].min(start_latest);
        }
    }
    g.node_ids()
        .filter(|&n| arr.finish[n.index()].hi >= required[n.index()])
        .collect()
}

/// [`possibly_critical_with_arrival`] over the flat CSR hot path: the
/// backward required-time sweep reads packed predecessor/successor rows and
/// a precomputed bounds table. Bit-identical to the iterator-based variant
/// (only `min`/`max` reductions and an order-insensitive filter).
pub fn possibly_critical_with_csr(
    order: &[NodeId],
    preds: &Csr,
    succs: &Csr,
    bounds: &[DelayInterval],
    arr: &BoundedArrival,
) -> Vec<NodeId> {
    let n = order.len();
    let mut required = vec![u64::MAX; n];
    for p in (0..n).rev() {
        let u = order[p];
        let r = if succs.row(p).is_empty() {
            arr.critical_path.hi
        } else {
            required[u.index()]
        };
        required[u.index()] = required[u.index()].min(r);
        let start_latest = r - bounds[u.index()].hi;
        for &pi in preds.row(p) {
            let slot = &mut required[pi as usize];
            *slot = (*slot).min(start_latest);
        }
    }
    (0..n)
        .map(NodeId::from_index)
        .filter(|&v| arr.finish[v.index()].hi >= required[v.index()])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DynamicBounds, KindBounds};
    use localwm_cdfg::generators::random_dag;
    use localwm_cdfg::{Cdfg, OpKind};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn chain_interval_is_sum_of_bounds() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Not);
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        let cp = bounded_critical_path(&g, &KindBounds::uniform(2, 5));
        assert_eq!(cp, DelayInterval::new(4, 10));
    }

    #[test]
    fn unit_model_matches_longest_path_ops() {
        let g = localwm_cdfg::designs::iir4_parallel();
        let cp = bounded_critical_path(&g, &KindBounds::unit());
        assert_eq!(cp.lo, 6);
        assert_eq!(cp.hi, 6);
    }

    /// A fixed per-node delay model for Monte-Carlo validation.
    struct Sampled(Vec<u64>);
    impl DelayBounds for Sampled {
        fn bounds(&self, _g: &Cdfg, n: NodeId) -> DelayInterval {
            DelayInterval::fixed(self.0[n.index()])
        }
    }

    #[test]
    fn monte_carlo_samples_stay_inside_interval() {
        let g = random_dag(40, 0.15, 7);
        let model = KindBounds::uniform(1, 4);
        let cp = bounded_critical_path(&g, &model);
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let sample: Vec<u64> = g
                .node_ids()
                .map(|n| {
                    let b = model.bounds(&g, n);
                    rng.gen_range(b.lo..=b.hi)
                })
                .collect();
            let s = bounded_critical_path(&g, &Sampled(sample));
            assert!(s.lo >= cp.lo && s.hi <= cp.hi, "sample escaped interval");
        }
    }

    #[test]
    fn endpoints_are_achieved() {
        let g = random_dag(30, 0.2, 3);
        let model = KindBounds::uniform(2, 6);
        let cp = bounded_critical_path(&g, &model);
        let all_min: Vec<u64> = g.node_ids().map(|n| model.bounds(&g, n).lo).collect();
        let all_max: Vec<u64> = g.node_ids().map(|n| model.bounds(&g, n).hi).collect();
        assert_eq!(bounded_critical_path(&g, &Sampled(all_min)).lo, cp.lo);
        assert_eq!(bounded_critical_path(&g, &Sampled(all_max)).hi, cp.hi);
    }

    #[test]
    fn dynamic_bounds_only_widen_upwards() {
        let g = localwm_cdfg::designs::iir4_parallel();
        let base = KindBounds::uniform(1, 2);
        let dyn_model = DynamicBounds::new(base.clone(), 1);
        let cp_base = bounded_critical_path(&g, &base);
        let cp_dyn = bounded_critical_path(&g, &dyn_model);
        assert_eq!(cp_dyn.lo, cp_base.lo);
        assert!(cp_dyn.hi >= cp_base.hi);
    }

    #[test]
    fn possibly_critical_contains_a_full_path() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a = g.add_node(OpKind::Not);
        let b = g.add_node(OpKind::Not);
        let c = g.add_node(OpKind::Not); // short side branch
        g.add_data_edge(x, a).unwrap();
        g.add_data_edge(a, b).unwrap();
        g.add_data_edge(x, c).unwrap();
        let crit = possibly_critical(&g, &KindBounds::unit());
        assert!(crit.contains(&a));
        assert!(crit.contains(&b));
        assert!(!crit.contains(&c));
    }

    #[test]
    fn wider_bounds_make_more_nodes_possibly_critical() {
        let g = random_dag(40, 0.1, 9);
        let tight = possibly_critical(&g, &KindBounds::unit()).len();
        let loose = possibly_critical(&g, &KindBounds::uniform(1, 5)).len();
        assert!(loose >= tight);
    }
}
