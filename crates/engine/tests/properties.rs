//! Property-based tests for the shared engine layer.
//!
//! The central claim of [`DesignContext`] is that memoization is
//! *transparent*: no interleaving of queries and mutations can make a
//! cached answer diverge from direct recomputation on the current graph.
//! These tests drive a context through random query/mutation schedules and
//! compare every memoized result against a from-scratch analysis.

use localwm_cdfg::analysis::{fanin_within, levels_from};
use localwm_cdfg::generators::random_dag;
use localwm_cdfg::{topo_order, EdgeId, NodeId, OpKind};
use localwm_engine::{
    bounded_critical_path, DesignContext, KindBounds, Parallelism, RecordingProbe, UnitTiming,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One step of a random schedule: which memoized query to issue, or
/// whether to mutate the graph between queries.
#[derive(Debug, Clone, Copy)]
enum Op {
    Topo,
    CriticalPath,
    Windows(u32),
    Levels,
    Fanin(u32),
    Bounded,
    Mutate,
    Remove,
}

fn decode(code: u8) -> Op {
    match code % 10 {
        0 => Op::Topo,
        1 => Op::CriticalPath,
        2 => Op::Windows(u32::from(code / 10)),
        3 => Op::Levels,
        4 => Op::Fanin(u32::from(code % 4) + 1),
        5 => Op::Bounded,
        6 | 7 => Op::Mutate,
        8 => Op::Remove,
        _ => Op::CriticalPath,
    }
}

/// Checks every memoized analysis against direct recomputation on the
/// context's current graph.
fn assert_matches_recompute(ctx: &DesignContext, deadline_extra: u32) {
    let g = ctx.graph();
    // The memoized order may legitimately differ from the canonical
    // from-scratch order after an incremental mutation (the context keeps
    // a stale-but-valid order and patches the CSR in place); what must
    // hold is that it is a *valid* topological order of the current graph.
    // Every value-level analysis below is still checked byte-exactly.
    let fresh_topo = topo_order(g).expect("generated graphs are DAGs");
    let order = ctx.topo();
    assert_eq!(order.len(), fresh_topo.len(), "order must cover every node");
    let mut pos = vec![usize::MAX; g.node_count()];
    for (i, &v) in order.iter().enumerate() {
        assert_eq!(pos[v.index()], usize::MAX, "order repeats {v}");
        pos[v.index()] = i;
    }
    for e in g.edge_ids() {
        let edge = g.edge(e).expect("live edge");
        assert!(
            pos[edge.src().index()] < pos[edge.dst().index()],
            "memoized order violates edge {} -> {}",
            edge.src(),
            edge.dst()
        );
    }

    let fresh = UnitTiming::new(g);
    let cp = fresh.critical_path();
    assert_eq!(ctx.critical_path(), cp, "critical path diverged");
    for v in g.node_ids() {
        assert_eq!(ctx.unit_timing().asap(v), fresh.asap(v));
        assert_eq!(ctx.laxity(v), fresh.laxity(v));
    }

    let deadline = cp + deadline_extra;
    let w = ctx.windows(deadline).expect("deadline >= critical path");
    for v in g.node_ids() {
        assert_eq!(w.asap(v), fresh.asap(v));
        assert_eq!(w.alap(v), fresh.alap(v, deadline));
        assert_eq!(w.mobility(v), fresh.mobility(v, deadline));
    }

    let model = KindBounds::uniform(1, 3);
    let direct = bounded_critical_path(g, &model);
    let memo = ctx.bounded_critical_path(&model);
    assert_eq!((memo.lo, memo.hi), (direct.lo, direct.hi));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any interleaving of queries and temporal-edge insertions leaves the
    /// memoized analyses equal to direct recomputation.
    #[test]
    fn memoized_equals_recomputed_under_interleaving(
        n in 4usize..40,
        p in 0.05f64..0.4,
        seed in 0u64..1000,
        schedule in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        let g = random_dag(n, p, seed);
        let mut ctx = DesignContext::new(g);
        let mut pair = 0usize;
        for (i, &code) in schedule.iter().enumerate() {
            match decode(code) {
                Op::Topo => { let _ = ctx.topo(); }
                Op::CriticalPath => { let _ = ctx.critical_path(); }
                Op::Windows(extra) => {
                    let cp = ctx.critical_path();
                    prop_assert!(ctx.windows(cp + extra).is_ok());
                }
                Op::Levels => {
                    let root = ctx.topo()[0];
                    let direct = levels_from(ctx.graph(), root);
                    prop_assert_eq!(ctx.levels_from(root).as_slice(), direct.as_slice());
                }
                Op::Fanin(d) => {
                    let nodes: Vec<NodeId> = ctx.graph().node_ids().collect();
                    let v = nodes[i % nodes.len()];
                    let direct = fanin_within(ctx.graph(), v, d);
                    prop_assert_eq!(ctx.fanin_cone(v, d).as_slice(), direct.as_slice());
                }
                Op::Bounded => {
                    let _ = ctx.bounded_critical_path(&KindBounds::uniform(1, 3));
                }
                Op::Mutate => {
                    // Draw a forward pair in topo order: adding the edge can
                    // never create a cycle; skip already-comparable pairs.
                    let order = ctx.topo().to_vec();
                    let a = order[pair % order.len()];
                    let b = order[(pair + 1 + i) % order.len()];
                    pair += 1;
                    let gen_before = ctx.generation();
                    if !ctx.reaches(a, b) && !ctx.reaches(b, a) && a != b {
                        prop_assert!(ctx.add_temporal_edge(a, b).is_ok());
                        prop_assert!(ctx.generation() > gen_before,
                            "mutation must bump the generation");
                    }
                }
                Op::Remove => {
                    // Removals go through the tracked mutate path; they can
                    // never break the memoized order, only loosen it.
                    let edges: Vec<EdgeId> = ctx.graph().edge_ids().collect();
                    if !edges.is_empty() {
                        let victim = edges[(pair + i) % edges.len()];
                        pair += 1;
                        let gen_before = ctx.generation();
                        prop_assert!(ctx.mutate(|ed| ed.remove_edge(victim)).is_ok());
                        prop_assert!(ctx.generation() > gen_before,
                            "removal must bump the generation");
                    }
                }
            }
            assert_matches_recompute(&ctx, u32::from(code % 5));
        }
    }

    /// Cached handles returned *before* a mutation stay internally
    /// consistent snapshots, while fresh queries see the new graph.
    #[test]
    fn mutation_invalidates_but_old_snapshots_survive(
        n in 6usize..40,
        p in 0.05f64..0.35,
        seed in 0u64..1000,
    ) {
        let g = random_dag(n, p, seed);
        let mut ctx = DesignContext::new(g);
        let cp0 = ctx.critical_path();
        let snapshot = ctx.windows(cp0 + 2).expect("feasible");

        // Find an incomparable forward pair to connect.
        let order = ctx.topo().to_vec();
        let mut edge = None;
        'outer: for (i, &a) in order.iter().enumerate() {
            for &b in &order[i + 1..] {
                if !ctx.reaches(a, b) && !ctx.reaches(b, a) {
                    edge = Some((a, b));
                    break 'outer;
                }
            }
        }
        prop_assume!(edge.is_some());
        let (a, b) = edge.unwrap();
        ctx.add_temporal_edge(a, b).expect("incomparable pair");

        // The old Arc still answers with pre-mutation values...
        prop_assert_eq!(snapshot.deadline(), cp0 + 2);
        // ...while the context recomputes against the mutated graph.
        let fresh = UnitTiming::new(ctx.graph());
        prop_assert_eq!(ctx.critical_path(), fresh.critical_path());
        for v in ctx.graph().node_ids() {
            prop_assert_eq!(ctx.unit_timing().asap(v), fresh.asap(v));
        }
    }

    /// `par_map` over a shared context is deterministic: any thread count
    /// produces the serial result, and concurrent cache fills agree.
    #[test]
    fn parallel_queries_match_serial(
        n in 4usize..40,
        p in 0.05f64..0.4,
        seed in 0u64..1000,
    ) {
        let g = random_dag(n, p, seed);
        let ctx = DesignContext::new(g);
        let nodes: Vec<NodeId> = ctx.graph().node_ids().collect();
        let serial = localwm_engine::par_map(Parallelism::Serial, &nodes, |_, &v| {
            (ctx.laxity(v), ctx.fanin_count(v, 3), ctx.phi(v, 3))
        });
        let threaded = localwm_engine::par_map(Parallelism::Threads(4), &nodes, |_, &v| {
            (ctx.laxity(v), ctx.fanin_count(v, 3), ctx.phi(v, 3))
        });
        prop_assert_eq!(serial, threaded);
    }

    /// The memoized CSR views enumerate exactly the live neighbor multisets
    /// of the iterator API — including after random edge removals leave
    /// tombstones in the edge slab (the trap a naive edge-slab walk would
    /// fall into).
    #[test]
    fn csr_matches_iterator_neighbors_after_removals(
        n in 4usize..40,
        p in 0.05f64..0.4,
        seed in 0u64..1000,
        removals in proptest::collection::vec(0usize..1000, 0..12),
    ) {
        let mut g = random_dag(n, p, seed);
        for r in removals {
            let ids: Vec<EdgeId> = g.edge_ids().collect();
            if ids.is_empty() {
                break;
            }
            g.remove_edge(ids[r % ids.len()]).expect("live edge id");
        }
        let ctx = DesignContext::new(g);
        let preds = ctx.preds_csr();
        let succs = ctx.succs_csr();
        prop_assert_eq!(preds.edge_count(), ctx.graph().edge_count());
        prop_assert_eq!(succs.edge_count(), ctx.graph().edge_count());
        for v in ctx.graph().node_ids() {
            let mut want: Vec<u32> = ctx.graph().preds(v).map(|u| u.index() as u32).collect();
            let mut got: Vec<u32> = preds.neighbors_of(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, want, "pred multiset diverged at {}", v);
            let mut want: Vec<u32> = ctx.graph().succs(v).map(|u| u.index() as u32).collect();
            let mut got: Vec<u32> = succs.neighbors_of(v).to_vec();
            want.sort_unstable();
            got.sort_unstable();
            prop_assert_eq!(got, want, "succ multiset diverged at {}", v);
        }
    }
}

/// An order-preserving mutation patches the memoized CSR in place instead
/// of discarding it: the build counter stays at one, the patch counter
/// fires, and the patched views are indistinguishable from a fresh build
/// over the retained order.
#[test]
fn csr_is_patched_in_place_on_order_preserving_mutation() {
    let probe = Arc::new(RecordingProbe::new());
    let mut ctx = DesignContext::new(random_dag(20, 0.2, 3)).with_probe(probe.clone());

    let rows_before = ctx.preds_csr().rows();
    let _ = ctx.succs_csr();
    assert_eq!(rows_before, ctx.graph().node_count());
    assert_eq!(
        probe.counter_value("engine.csr.build"),
        1,
        "repeat queries share one build"
    );
    let gen_before = ctx.generation();

    // Append a node behind the last topo node: the old order stays valid
    // with the new node at the tail, so the CSR must be patched, not
    // rebuilt.
    let tail = ctx.mutate(|g| {
        let anchor = topo_order(g)
            .expect("DAG")
            .last()
            .copied()
            .expect("nonempty");
        let tail = g.add_node(OpKind::Not);
        g.add_data_edge(anchor, tail).expect("forward edge");
        tail
    });
    assert!(
        ctx.generation() > gen_before,
        "mutation bumps the generation"
    );

    let preds = ctx.preds_csr();
    let succs = ctx.succs_csr();
    assert_eq!(
        probe.counter_value("engine.csr.build"),
        1,
        "an order-preserving mutation must not rebuild the CSR"
    );
    assert!(
        probe.counter_value("engine.csr.patch") >= 1,
        "the in-place patch path must fire"
    );
    assert_eq!(preds.rows(), ctx.graph().node_count());
    assert_eq!(preds.degree_of(tail), 1, "patched view sees the new edge");

    // Byte-for-byte: patched views equal a fresh build over the same order.
    let order = ctx.topo().to_vec();
    let fresh_preds = localwm_cdfg::Csr::preds(ctx.graph(), &order);
    let fresh_succs = localwm_cdfg::Csr::succs(ctx.graph(), &order);
    for v in ctx.graph().node_ids() {
        assert_eq!(preds.neighbors_of(v), fresh_preds.neighbors_of(v));
        assert_eq!(succs.neighbors_of(v), fresh_succs.neighbors_of(v));
    }
}
