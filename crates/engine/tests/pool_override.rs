//! Pool-size override — isolated in its own test binary because the pool
//! starts once per process and its size is pinned at first use. A single
//! `#[test]` keeps the start deterministic; running this alongside the
//! unit tests (same binary, arbitrary order) would race the pin.

use localwm_engine::{par_map, pool_stats, set_pool_threads, Parallelism};

#[test]
fn override_pins_the_worker_count_before_first_use() {
    // Before any batch has run, the override must report effective.
    assert!(
        set_pool_threads(3),
        "override before first use must take effect"
    );
    assert_eq!(pool_stats().threads, 0, "no threads before first batch");

    // First parallel batch starts the pool at the overridden size even on
    // a single-core host, where the default would be zero workers.
    let out = par_map(
        Parallelism::Threads(4),
        &[1u64, 2, 3, 4, 5, 6, 7, 8],
        |_, x| x * 2,
    );
    assert_eq!(out, vec![2, 4, 6, 8, 10, 12, 14, 16]);
    let stats = pool_stats();
    assert_eq!(stats.threads, 3, "pool sized by the override, not the host");
    assert!(stats.jobs >= 1);

    // Once started, the size is pinned: a late override reports inert.
    assert!(
        !set_pool_threads(9),
        "override after first use must report inert"
    );
    assert_eq!(pool_stats().threads, 3);

    // Force genuine parallelism: four jobs rendezvous on one barrier, so
    // the submitter alone cannot finish the batch — the three pinned
    // workers must steal the other three jobs.
    let barrier = std::sync::Barrier::new(4);
    let mut slots = [0u32; 4];
    {
        let barrier = &barrier;
        localwm_engine::par_map(Parallelism::Threads(4), &[0u32, 1, 2, 3], |_, x| {
            barrier.wait();
            x + 10
        })
        .into_iter()
        .zip(slots.iter_mut())
        .for_each(|(v, s)| *s = v);
    }
    assert_eq!(slots, [10, 11, 12, 13]);
    assert!(
        pool_stats().steals >= 3,
        "barrier batch requires workers to steal its jobs"
    );

    // With real workers live, concurrent batches still produce exact
    // results (each job runs exactly once, order preserved).
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|k| {
                s.spawn(move || {
                    let items: Vec<u64> = (0..64).map(|i| i + k * 1000).collect();
                    let doubled = par_map(Parallelism::Threads(4), &items, |_, x| x * 2);
                    assert_eq!(
                        doubled,
                        items.iter().map(|x| x * 2).collect::<Vec<_>>(),
                        "batch {k} corrupted under concurrency"
                    );
                })
            })
            .collect();
        for h in handles {
            h.join().expect("concurrent batch panicked");
        }
    });
    assert!(pool_stats().jobs >= 1 + 4 + 4 * 4);
}
