//! Single-flight coalescing keys for identical in-flight requests.
//!
//! When N clients ask the same (pure, deterministic) question at once, the
//! server should compute the answer once and fan it out, not N times.
//! Coalescing applies to the read-only analysis kinds — `analyze`,
//! `timing`, and the robustness kinds `attack` / `strength` — whose
//! responses are functions of the request alone (the robustness kinds are
//! fully seeded, so identical lines compute identical sweeps, and they are
//! the most expensive kinds the service offers). Mutating or
//! identity-bearing kinds (`embed` draws watermark edges, `detect` checks
//! a signature) are deliberately excluded: they are cheap relative to
//! analysis and their handlers are the ones exercised for per-request
//! observability.
//!
//! The key is a streaming FNV-1a hash over the request's answer-relevant
//! fields, with the two per-caller fields — `id` (correlation) and
//! `timeout_ms` (deadline) — excluded, so requests differing only in those
//! still coalesce. Everything else (design text, delay bounds, sample
//! count, seed, deadline steps) participates: any parameter that changes
//! the answer changes the key. The hash streams straight over the field
//! bytes — no request clone, no re-rendered wire line — because this runs
//! on the connection reader for every analysis request. Each field is
//! prefixed with a distinct tag and (for strings) its length, so field
//! boundaries can never alias.

use crate::protocol::{Request, RequestKind};

/// The coalescing key of a request, or `None` for kinds that never
/// coalesce.
pub fn coalescing_key(req: &Request) -> Option<u64> {
    if !matches!(
        req.kind,
        RequestKind::Analyze | RequestKind::Timing | RequestKind::Attack | RequestKind::Strength
    ) {
        return None;
    }
    // Session-scoped queries answer from held mutable state, not from the
    // request alone: two identical lines can straddle a mutate and must
    // both run. (The server answers them inline anyway; this guard keeps
    // the exclusion explicit for any path that consults the key.)
    if req.session.is_some() {
        return None;
    }
    let mut h = Fnv1a::new();
    h.bytes(&[req.kind.index() as u8]);
    h.opt_str(1, req.design.as_deref());
    h.opt_str(2, req.author.as_deref());
    h.opt_str(3, req.schedule.as_deref());
    h.opt_u64(4, req.fraction.map(f64::to_bits));
    h.opt_u64(5, req.k.map(|v| v as u64));
    h.opt_u64(6, req.deadline.map(u64::from));
    h.opt_u64(7, req.lo);
    h.opt_u64(8, req.hi);
    h.opt_u64(9, req.samples.map(|v| v as u64));
    h.opt_u64(10, req.seed);
    h.opt_str(11, req.edits.as_deref());
    h.opt_str(12, req.attack.as_deref());
    h.opt_u64(13, req.budget.map(f64::to_bits));
    h.opt_str(14, req.budgets.as_deref());
    Some(h.finish())
}

struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// Absent fields hash nothing; present ones hash tag, length, bytes.
    fn opt_str(&mut self, tag: u8, s: Option<&str>) {
        if let Some(s) = s {
            self.bytes(&[tag]);
            self.bytes(&(s.len() as u64).to_le_bytes());
            self.bytes(s.as_bytes());
        }
    }

    fn opt_u64(&mut self, tag: u8, v: Option<u64>) {
        if let Some(v) = v {
            self.bytes(&[tag]);
            self.bytes(&v.to_le_bytes());
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_req() -> Request {
        let mut r = Request::new(RequestKind::Analyze);
        r.design = Some("node a add\n".to_owned());
        r.samples = Some(40);
        r.seed = Some(7);
        r
    }

    #[test]
    fn id_and_timeout_do_not_split_the_flight() {
        let base = analyze_req();
        let mut a = base.clone();
        a.id = Some(1);
        a.timeout_ms = Some(100);
        let mut b = base.clone();
        b.id = Some(2);
        b.timeout_ms = Some(9999);
        assert_eq!(coalescing_key(&a), coalescing_key(&base));
        assert_eq!(coalescing_key(&a), coalescing_key(&b));
    }

    #[test]
    fn answer_changing_params_split_the_flight() {
        let base = analyze_req();
        let mut other_seed = base.clone();
        other_seed.seed = Some(8);
        let mut other_samples = base.clone();
        other_samples.samples = Some(41);
        let mut other_design = base.clone();
        other_design.design = Some("node b mul\n".to_owned());
        let k = coalescing_key(&base);
        assert_ne!(coalescing_key(&other_seed), k);
        assert_ne!(coalescing_key(&other_samples), k);
        assert_ne!(coalescing_key(&other_design), k);
    }

    #[test]
    fn only_analysis_kinds_coalesce() {
        assert!(coalescing_key(&analyze_req()).is_some());
        for kind in [
            RequestKind::Timing,
            RequestKind::Attack,
            RequestKind::Strength,
        ] {
            let mut r = analyze_req();
            r.kind = kind;
            assert!(coalescing_key(&r).is_some(), "{kind} must coalesce");
        }
        for kind in [
            RequestKind::Embed,
            RequestKind::Detect,
            RequestKind::Stats,
            RequestKind::Shutdown,
            RequestKind::ClusterStats,
            RequestKind::Open,
            RequestKind::Mutate,
            RequestKind::Close,
        ] {
            let mut r = analyze_req();
            r.kind = kind;
            assert_eq!(coalescing_key(&r), None, "{kind} must not coalesce");
        }
    }

    #[test]
    fn session_scoped_queries_never_coalesce() {
        let mut r = analyze_req();
        r.session = Some("s-1".to_owned());
        assert_eq!(coalescing_key(&r), None);
        r.kind = RequestKind::Timing;
        assert_eq!(coalescing_key(&r), None);
    }
}
