//! The JSON-lines wire protocol.
//!
//! Every request and response is one JSON object per line (`\n`-terminated,
//! no newlines inside). Grammar:
//!
//! ```text
//! request  = { "kind": KIND, ["id": u64], ...params } "\n"
//! KIND     = "embed" | "detect" | "analyze" | "timing" | "stats" |
//!            "shutdown" | "cluster_stats" | "open" | "mutate" | "close" |
//!            "attack" | "strength"
//! params   = "design": cdfg-text      (embed/detect/analyze/timing/open/
//!                                      attack/strength)
//!            "author": string         (embed/detect/attack/strength)
//!            "schedule": sched-text   (detect)
//!            "fraction": f64 | "k": u64             (embed/attack/strength)
//!            "deadline": u32, "lo": u64, "hi": u64  (analyze/timing)
//!            "samples": u64, "seed": u64            (analyze; seed also
//!                                                    drives attack/strength)
//!            "attack": string         (attack; "reschedule" | "rewire" |
//!                                      "resynth" | "strip")
//!            "budget": f64            (attack; fraction in [0, 1])
//!            "budgets": string        (strength; comma-separated budgets)
//!            "session": string        (open/mutate/close; optional on
//!                                      timing/analyze to query the held
//!                                      design incrementally)
//!            "edits": edit-script     (mutate; one edit per line)
//!            "timeout_ms": u64        (any; per-request deadline)
//! response = { ["id": u64], "kind": KIND, "ok": bool,
//!              "result": object | "error": {"code": CODE, "message": str, ...} } "\n"
//! ```
//!
//! Requests may be pipelined on one connection; responses carry the echoed
//! `id` so clients can match them when they complete out of order.
//!
//! # Binary negotiation
//!
//! A client that opens its connection with the single line
//! [`BINARY_MAGIC`] (`LWMB1`) switches that connection to length-prefixed
//! binary frames: every subsequent request and response is one
//! [`localwm_store::binval`] frame carrying the binary encoding of exactly
//! the same `Value` tree the JSON line would carry. JSON-lines remains the
//! default and the compatibility path; the two encodings are
//! decode-equivalent by construction (the testkit differential lane proves
//! it over the full golden corpus).

use std::fmt;

use localwm_store::binval;
use serde::{DeError, Deserialize, Serialize, Value};

/// The negotiation line that switches a fresh connection to binary frames.
pub const BINARY_MAGIC: &str = "LWMB1";

/// The request kinds the service understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// Embed a scheduling watermark and synthesize a schedule.
    Embed,
    /// Verify a schedule against a signature.
    Detect,
    /// Full analysis sweep: windows, bounded delays, Monte-Carlo criticality.
    Analyze,
    /// Timing summary: critical path, mobility, bounded-delay interval.
    Timing,
    /// Live server metrics (answered inline, even under full queue).
    Stats,
    /// Graceful shutdown: drain in-flight work, then exit.
    Shutdown,
    /// Cluster-wide aggregated metrics. Answered by `localwm-gateway`
    /// (per-backend latency histograms, routing counters, pool and health
    /// state plus aggregated backend gauges); a plain `localwm-serve`
    /// backend answers it with a typed `bad_request`.
    ClusterStats,
    /// Open an interactive session holding the parsed design server-side;
    /// subsequent `mutate`/`timing`/`analyze` requests carrying the same
    /// `session` id run against the held (incrementally re-analyzed)
    /// design.
    Open,
    /// Apply an edit script to an open session's design.
    Mutate,
    /// Close an open session and release its design.
    Close,
    /// Apply one seeded, budgeted attack to a freshly embedded watermark
    /// and measure the surviving evidence.
    Attack,
    /// Sweep the whole attack suite over budget levels and return the
    /// design's robustness report.
    Strength,
}

impl RequestKind {
    /// Every kind, in wire-name order; indexes match [`RequestKind::index`].
    pub const ALL: [RequestKind; 12] = [
        RequestKind::Embed,
        RequestKind::Detect,
        RequestKind::Analyze,
        RequestKind::Timing,
        RequestKind::Stats,
        RequestKind::Shutdown,
        RequestKind::ClusterStats,
        RequestKind::Open,
        RequestKind::Mutate,
        RequestKind::Close,
        RequestKind::Attack,
        RequestKind::Strength,
    ];

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            RequestKind::Embed => "embed",
            RequestKind::Detect => "detect",
            RequestKind::Analyze => "analyze",
            RequestKind::Timing => "timing",
            RequestKind::Stats => "stats",
            RequestKind::Shutdown => "shutdown",
            RequestKind::ClusterStats => "cluster_stats",
            RequestKind::Open => "open",
            RequestKind::Mutate => "mutate",
            RequestKind::Close => "close",
            RequestKind::Attack => "attack",
            RequestKind::Strength => "strength",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|k| k.as_str() == s)
    }

    /// A dense index for per-kind metric arrays.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for RequestKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One decoded request line.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Client-chosen correlation id, echoed in the response.
    pub id: Option<u64>,
    /// What to do.
    pub kind: RequestKind,
    /// The design, in the canonical CDFG text format.
    pub design: Option<String>,
    /// Author identity for embed/detect.
    pub author: Option<String>,
    /// A schedule in the text format (detect).
    pub schedule: Option<String>,
    /// Embed: constrain this fraction of the operations.
    pub fraction: Option<f64>,
    /// Embed: draw exactly `k` temporal edges.
    pub k: Option<usize>,
    /// Window deadline in control steps (timing/analyze).
    pub deadline: Option<u32>,
    /// Bounded-delay model lower bound per op.
    pub lo: Option<u64>,
    /// Bounded-delay model upper bound per op.
    pub hi: Option<u64>,
    /// Monte-Carlo criticality sample count (analyze).
    pub samples: Option<usize>,
    /// Monte-Carlo seed (analyze).
    pub seed: Option<u64>,
    /// Interactive session id (open/mutate/close; optional on
    /// timing/analyze to run against the held design).
    pub session: Option<String>,
    /// Edit script for `mutate`, one edit per line.
    pub edits: Option<String>,
    /// Attack kind name (`attack`): `reschedule`, `rewire`, `resynth` or
    /// `strip`.
    pub attack: Option<String>,
    /// Attack budget in `[0, 1]` (`attack`).
    pub budget: Option<f64>,
    /// Comma-separated budget sweep (`strength`), e.g. `"0,0.15,0.45"`.
    pub budgets: Option<String>,
    /// Per-request deadline in milliseconds; past it the watchdog answers
    /// with a `deadline_exceeded` error.
    pub timeout_ms: Option<u64>,
}

impl Request {
    /// An empty request of the given kind.
    pub fn new(kind: RequestKind) -> Self {
        Request {
            id: None,
            kind,
            design: None,
            author: None,
            schedule: None,
            fraction: None,
            k: None,
            deadline: None,
            lo: None,
            hi: None,
            samples: None,
            seed: None,
            session: None,
            edits: None,
            attack: None,
            budget: None,
            budgets: None,
            timeout_ms: None,
        }
    }

    /// Encodes the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Appends the request's wire line to `out` — the same bytes as
    /// [`Request::to_line`], without lowering to an intermediate `Value`
    /// (which deep-copies the design text). The client's per-request
    /// encode runs through this.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        fn str_field(out: &mut String, name: &str, v: Option<&str>) {
            if let Some(s) = v {
                let _ = write!(out, ",\"{name}\":");
                serde_json::string_to_json_into(s, out);
            }
        }
        fn uint_field(out: &mut String, name: &str, v: Option<u64>) {
            if let Some(u) = v {
                let _ = write!(out, ",\"{name}\":{u}");
            }
        }
        fn float_field(out: &mut String, name: &str, v: Option<f64>) {
            if let Some(f) = v {
                let _ = write!(out, ",\"{name}\":");
                serde_json::float_to_json_into(f, out);
            }
        }
        out.push('{');
        if let Some(id) = self.id {
            let _ = write!(out, "\"id\":{id},");
        }
        out.push_str("\"kind\":");
        serde_json::string_to_json_into(self.kind.as_str(), out);
        str_field(out, "design", self.design.as_deref());
        str_field(out, "author", self.author.as_deref());
        str_field(out, "schedule", self.schedule.as_deref());
        float_field(out, "fraction", self.fraction);
        uint_field(out, "k", self.k.map(|v| v as u64));
        uint_field(out, "deadline", self.deadline.map(u64::from));
        uint_field(out, "lo", self.lo);
        uint_field(out, "hi", self.hi);
        uint_field(out, "samples", self.samples.map(|v| v as u64));
        uint_field(out, "seed", self.seed);
        str_field(out, "session", self.session.as_deref());
        str_field(out, "edits", self.edits.as_deref());
        str_field(out, "attack", self.attack.as_deref());
        float_field(out, "budget", self.budget);
        str_field(out, "budgets", self.budgets.as_deref());
        uint_field(out, "timeout_ms", self.timeout_ms);
        out.push('}');
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or an unknown/missing kind.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = serde_json::from_str_value(line).map_err(|e| e.to_string())?;
        Self::from_wire_value(v).map_err(|e| serde_json::Error::from(e).to_string())
    }

    /// Encodes the request as one binary frame body (the `LWMB1` wire).
    pub fn to_frame(&self) -> Vec<u8> {
        binval::value_to_bytes(&self.to_value())
    }

    /// Decodes one binary frame body.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed bytes or an unknown/missing kind.
    pub fn from_frame(body: &[u8]) -> Result<Self, String> {
        let v = binval::decode_value(body)?;
        Self::from_wire_value(v).map_err(|e| e.to_string())
    }

    /// Rebuilds a request from an owned envelope tree, moving the large
    /// text payloads (`design`, `schedule`, `edits` — multi-kilobyte on
    /// the hot path) out of the tree instead of deep-copying them. Only
    /// well-typed string payloads are stashed; everything else flows
    /// through the generic `Deserialize` path, so accepted shapes, error
    /// messages, and error precedence are unchanged.
    fn from_wire_value(mut v: Value) -> Result<Self, DeError> {
        let mut stash: [Option<String>; 3] = [None, None, None];
        if let Value::Object(fields) = &mut v {
            for (slot, name) in ["design", "schedule", "edits"].into_iter().enumerate() {
                // First occurrence only, matching `Value::field`; the
                // stashed slot reads as `null` (absent and `null` decode
                // identically) so later duplicates stay shadowed.
                if let Some((_, val)) = fields.iter_mut().find(|(k, _)| k == name) {
                    if matches!(val, Value::Str(_)) {
                        if let Value::Str(s) = std::mem::replace(val, Value::Null) {
                            stash[slot] = Some(s);
                        }
                    }
                }
            }
        }
        let mut req = Self::from_value(&v)?;
        let [design, schedule, edits] = stash;
        if design.is_some() {
            req.design = design;
        }
        if schedule.is_some() {
            req.schedule = schedule;
        }
        if edits.is_some() {
            req.edits = edits;
        }
        Ok(req)
    }
}

fn push_field(fields: &mut Vec<(String, Value)>, name: &str, v: Option<Value>) {
    if let Some(v) = v {
        fields.push((name.to_owned(), v));
    }
}

impl Serialize for Request {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        push_field(&mut fields, "id", self.id.map(|v| v.to_value()));
        fields.push(("kind".to_owned(), Value::Str(self.kind.as_str().to_owned())));
        push_field(
            &mut fields,
            "design",
            self.design.as_ref().map(|v| v.to_value()),
        );
        push_field(
            &mut fields,
            "author",
            self.author.as_ref().map(|v| v.to_value()),
        );
        push_field(
            &mut fields,
            "schedule",
            self.schedule.as_ref().map(|v| v.to_value()),
        );
        push_field(&mut fields, "fraction", self.fraction.map(|v| v.to_value()));
        push_field(&mut fields, "k", self.k.map(|v| v.to_value()));
        push_field(&mut fields, "deadline", self.deadline.map(|v| v.to_value()));
        push_field(&mut fields, "lo", self.lo.map(|v| v.to_value()));
        push_field(&mut fields, "hi", self.hi.map(|v| v.to_value()));
        push_field(&mut fields, "samples", self.samples.map(|v| v.to_value()));
        push_field(&mut fields, "seed", self.seed.map(|v| v.to_value()));
        push_field(
            &mut fields,
            "session",
            self.session.as_ref().map(|v| v.to_value()),
        );
        push_field(
            &mut fields,
            "edits",
            self.edits.as_ref().map(|v| v.to_value()),
        );
        push_field(
            &mut fields,
            "attack",
            self.attack.as_ref().map(|v| v.to_value()),
        );
        push_field(&mut fields, "budget", self.budget.map(|v| v.to_value()));
        push_field(
            &mut fields,
            "budgets",
            self.budgets.as_ref().map(|v| v.to_value()),
        );
        push_field(
            &mut fields,
            "timeout_ms",
            self.timeout_ms.map(|v| v.to_value()),
        );
        Value::Object(fields)
    }
}

/// Fetches an optional field: absent and `null` both mean `None`.
fn opt<T: Deserialize>(v: &Value, name: &str) -> Result<Option<T>, DeError> {
    match v.field(name) {
        None | Some(Value::Null) => Ok(None),
        Some(x) => T::from_value(x)
            .map(Some)
            .map_err(|e| DeError::msg(format!("field `{name}`: {e}"))),
    }
}

impl Deserialize for Request {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind: String = serde::field(v, "kind")?;
        let kind = RequestKind::parse(&kind)
            .ok_or_else(|| DeError::msg(format!("unknown request kind `{kind}`")))?;
        Ok(Request {
            id: opt(v, "id")?,
            kind,
            design: opt(v, "design")?,
            author: opt(v, "author")?,
            schedule: opt(v, "schedule")?,
            fraction: opt(v, "fraction")?,
            k: opt(v, "k")?,
            deadline: opt(v, "deadline")?,
            lo: opt(v, "lo")?,
            hi: opt(v, "hi")?,
            samples: opt(v, "samples")?,
            seed: opt(v, "seed")?,
            session: opt(v, "session")?,
            edits: opt(v, "edits")?,
            attack: opt(v, "attack")?,
            budget: opt(v, "budget")?,
            budgets: opt(v, "budgets")?,
            timeout_ms: opt(v, "timeout_ms")?,
        })
    }
}

/// Typed error codes a response can carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The job queue was full; the request was rejected without blocking
    /// the acceptor. Retry with backoff.
    Overloaded,
    /// The request was malformed or missing required fields.
    BadRequest,
    /// The per-request deadline elapsed before a worker finished.
    DeadlineExceeded,
    /// Embed: the design has no incomparable slack pairs (typed diagnostic
    /// with `domain_size` / `pairs_examined` details).
    NoIncomparablePairs,
    /// Embed failed for another reason (see message).
    EmbedFailed,
    /// Detect failed (see message).
    DetectFailed,
    /// The server is draining and accepts no new work.
    ShuttingDown,
    /// The gateway exhausted every replica for the request's shard: all
    /// candidate backends failed after retries with backoff.
    UpstreamUnavailable,
    /// The named session does not exist on this backend: never opened,
    /// idle-evicted, closed by drain, or lost when its backend was
    /// replaced. The client must re-`open` and replay.
    SessionExpired,
    /// Anything else.
    Internal,
}

impl ErrorCode {
    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::BadRequest => "bad_request",
            ErrorCode::DeadlineExceeded => "deadline_exceeded",
            ErrorCode::NoIncomparablePairs => "no_incomparable_pairs",
            ErrorCode::EmbedFailed => "embed_failed",
            ErrorCode::DetectFailed => "detect_failed",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::UpstreamUnavailable => "upstream_unavailable",
            ErrorCode::SessionExpired => "session_expired",
            ErrorCode::Internal => "internal",
        }
    }

    /// Parses a wire name (unknown codes map to [`ErrorCode::Internal`]).
    pub fn parse(s: &str) -> Self {
        [
            ErrorCode::Overloaded,
            ErrorCode::BadRequest,
            ErrorCode::DeadlineExceeded,
            ErrorCode::NoIncomparablePairs,
            ErrorCode::EmbedFailed,
            ErrorCode::DetectFailed,
            ErrorCode::ShuttingDown,
            ErrorCode::UpstreamUnavailable,
            ErrorCode::SessionExpired,
        ]
        .into_iter()
        .find(|c| c.as_str() == s)
        .unwrap_or(ErrorCode::Internal)
    }
}

/// A typed service error: a code, a human message, and structured details.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceError {
    /// Machine-readable code.
    pub code: ErrorCode,
    /// Human-readable message.
    pub message: String,
    /// Extra structured fields merged into the error object.
    pub details: Vec<(String, Value)>,
}

impl ServiceError {
    /// An error with no extra details.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
            details: Vec::new(),
        }
    }

    /// Adds a structured detail field.
    #[must_use]
    pub fn with_detail(mut self, name: &str, v: Value) -> Self {
        self.details.push((name.to_owned(), v));
        self
    }

    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("code".to_owned(), Value::Str(self.code.as_str().to_owned())),
            ("message".to_owned(), Value::Str(self.message.clone())),
        ];
        fields.extend(self.details.iter().cloned());
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self, DeError> {
        let code: String = serde::field(v, "code")?;
        let message: String = serde::field(v, "message")?;
        let details = match v {
            Value::Object(fields) => fields
                .iter()
                .filter(|(k, _)| k != "code" && k != "message")
                .cloned()
                .collect(),
            _ => Vec::new(),
        };
        Ok(ServiceError {
            code: ErrorCode::parse(&code),
            message,
            details,
        })
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// The request's correlation id, echoed back.
    pub id: Option<u64>,
    /// The request kind this answers (`"invalid"` for unparseable lines).
    pub kind: String,
    /// Whether the request succeeded.
    pub ok: bool,
    /// Result object on success.
    pub result: Option<Value>,
    /// Error object on failure.
    pub error: Option<ServiceError>,
}

impl Response {
    /// A success response.
    pub fn success(id: Option<u64>, kind: &str, result: Value) -> Self {
        Response {
            id,
            kind: kind.to_owned(),
            ok: true,
            result: Some(result),
            error: None,
        }
    }

    /// A failure response.
    pub fn failure(id: Option<u64>, kind: &str, error: ServiceError) -> Self {
        Response {
            id,
            kind: kind.to_owned(),
            ok: false,
            result: None,
            error: Some(error),
        }
    }

    /// Encodes the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }

    /// Appends the response's wire line to `out` — the same bytes as
    /// [`Response::to_line`], without building the intermediate `Value`
    /// envelope (and without deep-copying the result tree into it). The
    /// server's per-response encode runs through this with a pooled
    /// buffer, so a warm response costs no allocations to serialize.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        out.push('{');
        if let Some(id) = self.id {
            let _ = write!(out, "\"id\":{id},");
        }
        out.push_str("\"kind\":");
        serde_json::string_to_json_into(&self.kind, out);
        out.push_str(",\"ok\":");
        out.push_str(if self.ok { "true" } else { "false" });
        if let Some(r) = &self.result {
            out.push_str(",\"result\":");
            serde_json::value_to_string_into(r, out);
        }
        if let Some(e) = &self.error {
            out.push_str(",\"error\":");
            serde_json::value_to_string_into(&e.to_value(), out);
        }
        out.push('}');
    }

    /// Decodes one wire line.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed JSON or a shape mismatch.
    pub fn from_line(line: &str) -> Result<Self, String> {
        let v = serde_json::from_str_value(line).map_err(|e| e.to_string())?;
        Self::from_wire_value(v).map_err(|e| serde_json::Error::from(e).to_string())
    }

    /// Rebuilds a response from an owned envelope tree, moving the
    /// `result` subtree and `kind` string out instead of deep-copying
    /// them (the generic [`Deserialize`] path clones both). Same accepted
    /// shapes and same error messages as `from_value`; the client's
    /// per-response decode runs through this.
    fn from_wire_value(v: Value) -> Result<Self, DeError> {
        let Value::Object(fields) = v else {
            return Self::from_value(&v);
        };
        let mut id: Option<u64> = None;
        let mut kind: Option<String> = None;
        let mut ok: Option<bool> = None;
        let mut result: Option<Value> = None;
        let mut error: Option<ServiceError> = None;
        // First occurrence of each key wins, matching `Value::field` —
        // tracked separately from the decoded options because a leading
        // `null` also claims its key.
        let (mut saw_id, mut saw_ok, mut saw_result, mut saw_error) = (false, false, false, false);
        for (k, val) in fields {
            match k.as_str() {
                "id" if !saw_id => {
                    saw_id = true;
                    id = match &val {
                        Value::Null => None,
                        x => Some(
                            u64::from_value(x)
                                .map_err(|e| DeError::msg(format!("field `id`: {e}")))?,
                        ),
                    };
                }
                "kind" if kind.is_none() => {
                    kind = match val {
                        Value::Str(s) => Some(s),
                        x => Some(String::from_value(&x)?),
                    };
                }
                "ok" if !saw_ok => {
                    saw_ok = true;
                    ok = Some(bool::from_value(&val)?);
                }
                "result" if !saw_result => {
                    saw_result = true;
                    result = Some(val);
                }
                "error" if !saw_error => {
                    saw_error = true;
                    error = match &val {
                        Value::Null => None,
                        e => Some(ServiceError::from_value(e)?),
                    };
                }
                _ => {}
            }
        }
        Ok(Response {
            id,
            kind: kind.ok_or_else(|| DeError::msg("missing field `kind`"))?,
            ok: ok.ok_or_else(|| DeError::msg("missing field `ok`"))?,
            result,
            error,
        })
    }

    /// Encodes the response as one binary frame body (the `LWMB1` wire).
    pub fn to_frame(&self) -> Vec<u8> {
        binval::value_to_bytes(&self.to_value())
    }

    /// Decodes one binary frame body.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed bytes or a shape mismatch.
    pub fn from_frame(body: &[u8]) -> Result<Self, String> {
        let v = binval::decode_value(body)?;
        Self::from_wire_value(v).map_err(|e| e.to_string())
    }

    /// A field of the result object, if this is a success carrying one.
    pub fn result_field(&self, name: &str) -> Option<&Value> {
        self.result.as_ref().and_then(|r| r.field(name))
    }
}

impl Serialize for Response {
    fn to_value(&self) -> Value {
        let mut fields = Vec::new();
        push_field(&mut fields, "id", self.id.map(|v| v.to_value()));
        fields.push(("kind".to_owned(), Value::Str(self.kind.clone())));
        fields.push(("ok".to_owned(), Value::Bool(self.ok)));
        if let Some(r) = &self.result {
            fields.push(("result".to_owned(), r.clone()));
        }
        if let Some(e) = &self.error {
            fields.push(("error".to_owned(), e.to_value()));
        }
        Value::Object(fields)
    }
}

impl Deserialize for Response {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(Response {
            id: opt(v, "id")?,
            kind: serde::field(v, "kind")?,
            ok: serde::field(v, "ok")?,
            result: v.field("result").cloned(),
            error: match v.field("error") {
                None | Some(Value::Null) => None,
                Some(e) => Some(ServiceError::from_value(e)?),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let mut req = Request::new(RequestKind::Embed);
        req.id = Some(7);
        req.design = Some("node a add\n".to_owned());
        req.author = Some("alice".to_owned());
        req.k = Some(4);
        req.timeout_ms = Some(500);
        let line = req.to_line();
        assert!(!line.contains('\n'), "one line on the wire");
        let back = Request::from_line(&line).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn session_requests_round_trip() {
        let mut req = Request::new(RequestKind::Mutate);
        req.id = Some(9);
        req.session = Some("s-1".to_owned());
        req.edits = Some("add-node t7 not\nadd-edge data a t7\n".to_owned());
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back, req);
        assert_eq!(
            ErrorCode::parse("session_expired"),
            ErrorCode::SessionExpired
        );
        assert_eq!(ErrorCode::SessionExpired.as_str(), "session_expired");
    }

    #[test]
    fn attack_and_strength_requests_round_trip() {
        let mut req = Request::new(RequestKind::Attack);
        req.design = Some("node a add\n".to_owned());
        req.author = Some("alice".to_owned());
        req.attack = Some("rewire".to_owned());
        req.budget = Some(0.25);
        req.seed = Some(7);
        let back = Request::from_line(&req.to_line()).unwrap();
        assert_eq!(back, req);
        let mut sweep = Request::new(RequestKind::Strength);
        sweep.budgets = Some("0,0.15,0.45".to_owned());
        let back = Request::from_line(&sweep.to_line()).unwrap();
        assert_eq!(back, sweep);
        let frame = Request::from_frame(&req.to_frame()).unwrap();
        assert_eq!(frame.to_line(), req.to_line());
    }

    #[test]
    fn unknown_kind_is_rejected() {
        assert!(Request::from_line(r#"{"kind":"explode"}"#).is_err());
        assert!(Request::from_line(r#"{"id":1}"#).is_err());
        assert!(Request::from_line("not json").is_err());
    }

    #[test]
    fn every_kind_parses_its_wire_name() {
        for k in RequestKind::ALL {
            assert_eq!(RequestKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(RequestKind::parse("nope"), None);
    }

    #[test]
    fn response_round_trips_with_error_details() {
        let err = ServiceError::new(ErrorCode::NoIncomparablePairs, "too serial")
            .with_detail("domain_size", 11u64.to_value())
            .with_detail("pairs_examined", 90u64.to_value());
        let resp = Response::failure(Some(3), "embed", err.clone());
        let back = Response::from_line(&resp.to_line()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(
            back.error.as_ref().unwrap().code,
            ErrorCode::NoIncomparablePairs
        );
        assert_eq!(
            back.error.unwrap().details,
            vec![
                ("domain_size".to_owned(), Value::Int(11)),
                ("pairs_examined".to_owned(), Value::Int(90)),
            ]
        );
    }

    #[test]
    fn direct_request_writer_matches_the_tree_serializer() {
        let mut full = Request::new(RequestKind::Analyze);
        full.id = Some(42);
        full.design = Some("node a add\nnode b \"q\"\n".to_owned());
        full.author = Some("alice".to_owned());
        full.schedule = Some("a 0\n".to_owned());
        full.fraction = Some(0.5);
        full.k = Some(4);
        full.deadline = Some(9);
        full.lo = Some(1);
        full.hi = Some(3);
        full.samples = Some(100);
        full.seed = Some(7);
        full.session = Some("s-1".to_owned());
        full.edits = Some("add-node t not\n".to_owned());
        full.attack = Some("resynth".to_owned());
        full.budget = Some(0.25);
        full.budgets = Some("0,0.5".to_owned());
        full.timeout_ms = Some(250);
        let mut sparse = Request::new(RequestKind::Stats);
        let mut no_id = Request::new(RequestKind::Timing);
        no_id.design = Some("node a add\n".to_owned());
        no_id.fraction = Some(2.0);
        for req in [full, sparse.clone(), no_id] {
            assert_eq!(
                req.to_line(),
                serde_json::to_string(&req).unwrap(),
                "direct writer diverged for {req:?}"
            );
        }
        sparse.id = Some(0);
        assert_eq!(sparse.to_line(), serde_json::to_string(&sparse).unwrap());
    }

    #[test]
    fn direct_json_writer_matches_the_tree_serializer() {
        // The hand-rolled envelope writer must emit the exact bytes the
        // generic `Serialize` path does — goldens and transcripts are
        // pinned to those bytes.
        let bodies = [
            Response::success(
                Some(7),
                "timing",
                serde::object(vec![
                    ("ops", 9u32.to_value()),
                    ("critical_path", 6u32.to_value()),
                    ("note", Value::Str("a \"quoted\"\nline\t".to_owned())),
                    ("neg", Value::Int(-3)),
                    ("frac", Value::Float(0.25)),
                    ("flag", Value::Bool(false)),
                    ("gap", Value::Null),
                    ("list", Value::Array(vec![1u32.to_value(), 2u32.to_value()])),
                ]),
            ),
            Response::success(None, "stats", serde::object(vec![])),
            Response::failure(
                Some(3),
                "embed",
                ServiceError::new(ErrorCode::NoIncomparablePairs, "too serial")
                    .with_detail("domain_size", 11u64.to_value()),
            ),
            Response::failure(
                None,
                "invalid",
                ServiceError::new(ErrorCode::BadRequest, "no"),
            ),
        ];
        for resp in bodies {
            assert_eq!(
                resp.to_line(),
                serde_json::to_string(&resp).unwrap(),
                "direct writer diverged for {resp:?}"
            );
        }
    }

    #[test]
    fn binary_frames_are_decode_equivalent_to_json_lines() {
        let mut req = Request::new(RequestKind::Analyze);
        req.id = Some(12);
        req.design = Some("node a add\n".to_owned());
        req.samples = Some(40);
        req.seed = Some(0);
        let back = Request::from_frame(&req.to_frame()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.to_line(), req.to_line(), "same canonical JSON");

        let err = ServiceError::new(ErrorCode::Overloaded, "queue full")
            .with_detail("queue_capacity", 64u64.to_value());
        let resp = Response::failure(Some(12), "analyze", err);
        let back = Response::from_frame(&resp.to_frame()).unwrap();
        assert_eq!(back, resp);
        assert_eq!(back.to_line(), resp.to_line(), "typed errors included");
        assert!(Response::from_frame(b"\xFFgarbage").is_err());
    }

    #[test]
    fn success_response_exposes_result_fields() {
        let body = serde::object(vec![("critical_path", 6u32.to_value())]);
        let resp = Response::success(None, "timing", body);
        let back = Response::from_line(&resp.to_line()).unwrap();
        assert!(back.ok);
        assert_eq!(back.result_field("critical_path"), Some(&Value::Int(6)));
    }
}
