//! A sharded, content-hash-keyed LRU cache of shared [`DesignContext`]s.
//!
//! Repeated requests against the same CDFG (keyed by
//! [`DesignContext::content_hash`]) get the **same** `Arc<DesignContext>`
//! back, so the engine's memoized analyses — topological order, unit
//! timing, window tables, bounded-delay arrivals — are computed once per
//! design, not once per request. Hits, misses and evictions are counted
//! for the `stats` request.
//!
//! # Sharding
//!
//! The cache is split into N independent shards, each its own lock, LRU
//! state, and counter set, so concurrent requests for *different* designs
//! never serialize on one mutex. Placement is a pure function of the
//! canonical content hash ([`ContextCache::shard_of`]): a design lives in
//! exactly one shard for the cache's lifetime, and the total capacity is
//! split across shards exactly (no shard padding — the split sums to the
//! configured capacity, and eviction is LRU *within* the design's shard).
//! Text aliases (FNV of raw request bytes → content key) live in a
//! parallel set of alias shards keyed by the *text* hash, so the
//! byte-identical-resend fast path is also one shard lock. No operation
//! ever holds two shard locks at once; an alias observed between an
//! entry's eviction and the deferred alias cleanup is harmless because an
//! alias hit always re-checks the entry shard — a dangling alias can
//! cause a (correct) miss, never a stale hit.
//!
//! Aggregate counters are sums over shards, so the chaos invariant
//! `evictions == misses − entries` holds per shard *and* in aggregate.
//!
//! With `--store-dir`, a [`DesignStore`] sits under the LRU as a
//! write-through tier: an in-memory miss consults the store (text alias →
//! content hash → binary design record, decoded without touching the text
//! parser), and a true miss parses the text then writes the design and its
//! alias through to disk. A restarted replica therefore warm-starts: its
//! first request per design costs a binary decode, not a parse.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use localwm_cdfg::{parse_cdfg, Cdfg};
use localwm_engine::DesignContext;
use localwm_store::binval::{decode_value, value_to_bytes};
use localwm_store::{DesignStore, RecordKind};
use serde::{Deserialize, Serialize};

/// Default shard count, capped by the capacity so every shard can hold at
/// least one design.
const DEFAULT_SHARDS: usize = 8;

struct Entry {
    ctx: Arc<DesignContext>,
    last_used: u64,
    /// Request-text FNV aliases pointing at this entry, cleaned from the
    /// alias shards when the entry is evicted.
    aliases: Vec<u64>,
}

struct Lru {
    entries: HashMap<u64, Entry>,
    tick: u64,
}

/// One content shard: its own lock, LRU state, capacity slice, and
/// counters.
struct Shard {
    state: Mutex<Lru>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl Shard {
    fn new(capacity: usize) -> Self {
        Shard {
            state: Mutex::new(Lru {
                entries: HashMap::new(),
                tick: 0,
            }),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.state.lock().expect("cache shard lock").entries.len(),
            capacity: self.capacity,
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The cache; see the module docs.
pub struct ContextCache {
    /// Content shards, indexed by [`ContextCache::shard_of`].
    shards: Vec<Shard>,
    /// Alias shards (text hash → content key), indexed by the same mix of
    /// the *text* hash.
    alias_shards: Vec<Mutex<HashMap<u64, u64>>>,
    capacity: usize,
    store: Option<Arc<DesignStore>>,
}

/// A counters snapshot for the `stats` request — the whole cache or one
/// shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to build a fresh context.
    pub misses: u64,
    /// Entries displaced by the LRU policy.
    pub evictions: u64,
    /// Designs currently cached.
    pub entries: usize,
    /// Maximum designs cached.
    pub capacity: usize,
}

/// The shard index a key maps to among `shards`: one SplitMix64 draw over
/// the key so FNV's weak low bits don't bias placement, reduced mod the
/// shard count. Pure — no state, no randomness.
fn shard_index(key: u64, shards: usize) -> usize {
    (localwm_prng::SplitMix64::new(key).next_u64() % shards as u64) as usize
}

impl ContextCache {
    /// An empty cache holding at most `capacity` designs total (clamped to
    /// ≥ 1), split across [`DEFAULT_SHARDS`] content shards (fewer when
    /// the capacity is smaller, so every shard holds at least one design).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self::with_shards(capacity, DEFAULT_SHARDS.min(capacity))
    }

    /// [`ContextCache::new`] with an explicit shard count (clamped to
    /// `1..=capacity`). `with_shards(cap, 1)` is the unsharded cache with
    /// strict global LRU order — tests that reason about exact eviction
    /// order use it.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let nshards = shards.clamp(1, capacity);
        // Split the capacity exactly: base per shard, the remainder spread
        // one-each over the first shards. Sum == capacity, always.
        let base = capacity / nshards;
        let rem = capacity % nshards;
        ContextCache {
            shards: (0..nshards)
                .map(|i| Shard::new(base + usize::from(i < rem)))
                .collect(),
            alias_shards: (0..nshards).map(|_| Mutex::new(HashMap::new())).collect(),
            capacity,
            store: None,
        }
    }

    /// A cache backed by a durable write-through store tier.
    pub fn with_store(capacity: usize, store: Arc<DesignStore>) -> Self {
        let mut cache = Self::new(capacity);
        cache.store = Some(store);
        cache
    }

    /// The store tier, when one is mounted.
    pub fn store(&self) -> Option<&Arc<DesignStore>> {
        self.store.as_ref()
    }

    /// How many content shards this cache runs.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard a content hash lives in — a pure function of the hash
    /// and the shard count, nothing else (the sharded-contention tests
    /// aim requests at specific shards through this).
    pub fn shard_of(&self, content_key: u64) -> usize {
        shard_index(content_key, self.shards.len())
    }

    fn alias_shard(&self, text_key: u64) -> &Mutex<HashMap<u64, u64>> {
        &self.alias_shards[shard_index(text_key, self.alias_shards.len())]
    }

    /// Returns the shared context for the raw CDFG `text`.
    ///
    /// Byte-identical text seen before takes the alias fast path: no parse,
    /// no canonicalization, just a hash of the request bytes (one alias
    /// shard lock + one entry shard lock). With a store mounted, an
    /// in-memory miss next tries the durable tier — alias record to content
    /// hash to binary design record, decoded without the text parser. Only
    /// a true miss parses the text, and its design and alias are then
    /// written through to the store. Novel text always resolves through the
    /// canonical content hash, so two different spellings of the same
    /// design still share one context.
    ///
    /// # Errors
    ///
    /// Returns the parse error message for malformed text (never cached).
    pub fn get_or_parse(&self, text: &str) -> Result<Arc<DesignContext>, String> {
        let text_key = fnv1a(text.as_bytes());
        let aliased = {
            let map = self.alias_shard(text_key).lock().expect("alias shard lock");
            map.get(&text_key).copied()
        };
        if let Some(key) = aliased {
            let shard = &self.shards[self.shard_of(key)];
            let mut lru = shard.state.lock().expect("cache shard lock");
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(e) = lru.entries.get_mut(&key) {
                e.last_used = tick;
                shard.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(Arc::clone(&e.ctx));
            }
            drop(lru);
            // Dangling alias (entry evicted, cleanup raced): drop it if it
            // still points at the dead entry, then resolve as a miss.
            let mut map = self.alias_shard(text_key).lock().expect("alias shard lock");
            if map.get(&text_key) == Some(&key) {
                map.remove(&text_key);
            }
        }
        if let Some(store) = &self.store {
            if let Some(ctx) = load_from_store(store, text_key) {
                return Ok(self.insert_ctx(ctx, Some(text_key)));
            }
        }
        let graph = parse_cdfg(text).map_err(|e| e.to_string())?;
        let fresh = DesignContext::new(graph);
        if let Some(store) = &self.store {
            write_through(store, &fresh, text_key);
        }
        Ok(self.insert_ctx(fresh, Some(text_key)))
    }

    /// Returns the shared context for `graph`, inserting (and, at shard
    /// capacity, evicting the shard's least-recently-used design) on miss.
    /// Bypasses the store tier: direct graph insertions have no request
    /// text to alias.
    pub fn get_or_insert(&self, graph: Cdfg) -> Arc<DesignContext> {
        self.insert_ctx(DesignContext::new(graph), None)
    }

    fn insert_ctx(&self, fresh: DesignContext, text_key: Option<u64>) -> Arc<DesignContext> {
        // Hashing happens outside any cache lock: it serializes the graph
        // (unless the context came from the store, where the hash is
        // seeded from the record key).
        let key = fresh.content_hash();
        let shard = &self.shards[self.shard_of(key)];
        // Aliases of an evicted victim are cleaned up *after* the entry
        // lock drops (one lock at a time — see the module docs).
        let mut dead_aliases: Vec<u64> = Vec::new();
        let ctx = {
            let mut lru = shard.state.lock().expect("cache shard lock");
            lru.tick += 1;
            let tick = lru.tick;
            if let Some(e) = lru.entries.get_mut(&key) {
                e.last_used = tick;
                if let Some(tk) = text_key {
                    if !e.aliases.contains(&tk) {
                        e.aliases.push(tk);
                    }
                }
                shard.hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(&e.ctx)
            } else {
                shard.misses.fetch_add(1, Ordering::Relaxed);
                if lru.entries.len() >= shard.capacity {
                    if let Some((&victim, _)) =
                        lru.entries.iter().min_by_key(|(&k, e)| (e.last_used, k))
                    {
                        if let Some(evicted) = lru.entries.remove(&victim) {
                            dead_aliases = evicted.aliases;
                        }
                        shard.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                let ctx = Arc::new(fresh);
                lru.entries.insert(
                    key,
                    Entry {
                        ctx: Arc::clone(&ctx),
                        last_used: tick,
                        aliases: text_key.into_iter().collect(),
                    },
                );
                ctx
            }
        };
        for tk in dead_aliases {
            let mut map = self.alias_shard(tk).lock().expect("alias shard lock");
            map.remove(&tk);
        }
        if let Some(tk) = text_key {
            let mut map = self.alias_shard(tk).lock().expect("alias shard lock");
            map.insert(tk, key);
        }
        ctx
    }

    /// Evicts every cached design (an "eviction storm"), counting each
    /// displaced entry in its shard's eviction counter exactly like an LRU
    /// displacement. Returns how many entries were evicted. Used by fault
    /// injection and by tests; correctness-neutral because entries are
    /// pure memoized derivations of their design text.
    pub fn evict_all(&self) -> usize {
        let mut total = 0;
        for shard in &self.shards {
            let mut lru = shard.state.lock().expect("cache shard lock");
            let n = lru.entries.len();
            lru.entries.clear();
            shard.evictions.fetch_add(n as u64, Ordering::Relaxed);
            total += n;
        }
        for alias in &self.alias_shards {
            alias.lock().expect("alias shard lock").clear();
        }
        total
    }

    /// The aggregate counters snapshot: per-shard counters summed, total
    /// capacity. The identity `evictions == misses − entries` holds here
    /// because it holds in every shard.
    pub fn stats(&self) -> CacheStats {
        let mut agg = CacheStats {
            hits: 0,
            misses: 0,
            evictions: 0,
            entries: 0,
            capacity: self.capacity,
        };
        for shard in &self.shards {
            let s = shard.stats();
            agg.hits += s.hits;
            agg.misses += s.misses;
            agg.evictions += s.evictions;
            agg.entries += s.entries;
        }
        agg
    }

    /// Per-shard counter snapshots, in shard-index order.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards.iter().map(Shard::stats).collect()
    }
}

/// Resolves `text_key` through the store tier: alias record → content
/// hash → design record → decoded graph, hydrated with its known hash.
/// Any miss or corruption returns `None` (the caller falls back to
/// parsing; corrupt reads are already counted in the store's stats).
fn load_from_store(store: &DesignStore, text_key: u64) -> Option<DesignContext> {
    let alias = store.get(RecordKind::Alias, text_key).ok()??;
    let hash = u64::from_le_bytes(alias.try_into().ok()?);
    let bytes = store.get(RecordKind::Design, hash).ok()??;
    let value = decode_value(&bytes).ok()?;
    let graph = Cdfg::from_value(&value).ok()?;
    Some(DesignContext::from_stored(graph, hash))
}

/// Writes a freshly parsed design and its text alias through to the
/// store. Write failures degrade the durability tier, not the request:
/// they are logged and the parse result is served normally.
fn write_through(store: &DesignStore, fresh: &DesignContext, text_key: u64) {
    let hash = fresh.content_hash();
    let design = value_to_bytes(&fresh.graph().to_value());
    if let Err(e) = store.put(RecordKind::Design, hash, &design) {
        eprintln!("localwm-serve: store write-through (design {hash:016x}): {e}");
        return;
    }
    if let Err(e) = store.put(RecordKind::Alias, text_key, &hash.to_le_bytes()) {
        eprintln!("localwm-serve: store write-through (alias {text_key:016x}): {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};
    use localwm_cdfg::write_cdfg;

    #[test]
    fn identical_text_takes_the_alias_fast_path() {
        let cache = ContextCache::new(4);
        let text = write_cdfg(&iir4_parallel());
        let a = cache.get_or_parse(&text).unwrap();
        let b = cache.get_or_parse(&text).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
        // A respelled design (extra blank line) still resolves to the same
        // canonical entry through the content hash.
        let respelled = format!("\n{text}");
        let c = cache.get_or_parse(&respelled).unwrap();
        assert!(Arc::ptr_eq(&a, &c));
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn malformed_text_is_an_error_and_never_cached() {
        let cache = ContextCache::new(4);
        assert!(cache.get_or_parse("node bogus-kind x").is_err());
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (0, 0, 0));
    }

    #[test]
    fn same_design_hits_and_shares_the_context() {
        let cache = ContextCache::new(4);
        let a = cache.get_or_insert(iir4_parallel());
        let _ = a.critical_path(); // warm an analysis
        let b = cache.get_or_insert(iir4_parallel());
        assert!(Arc::ptr_eq(&a, &b), "hit returns the same shared context");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.entries), (1, 1, 1));
    }

    /// `evictions == misses − entries` — the counter identity the chaos
    /// harness checks on a live server. Misses are counted only when an
    /// entry is actually built, so every miss either still sits in the
    /// cache or was evicted. With shards it must hold shard-by-shard, not
    /// just in aggregate.
    fn assert_counter_identity(cache: &ContextCache) {
        for (i, s) in cache.shard_stats().iter().enumerate() {
            assert_eq!(
                s.evictions,
                s.misses - s.entries as u64,
                "shard {i}: evictions ({}) != misses ({}) - entries ({})",
                s.evictions,
                s.misses,
                s.entries
            );
        }
        let s = cache.stats();
        assert_eq!(
            s.evictions,
            s.misses - s.entries as u64,
            "aggregate: evictions ({}) != misses ({}) - entries ({})",
            s.evictions,
            s.misses,
            s.entries
        );
    }

    #[test]
    fn capacity_zero_clamps_to_one_and_still_serves() {
        let cache = ContextCache::new(0);
        assert_eq!(cache.stats().capacity, 1, "capacity 0 is clamped, not UB");
        assert_eq!(cache.shard_count(), 1, "one design fits one shard");
        let apps = mediabench_apps();
        let a = cache.get_or_insert(iir4_parallel());
        let _ = a.critical_path();
        cache.get_or_insert(mediabench(&apps[0], 0)); // displaces A
        let s = cache.stats();
        assert_eq!((s.entries, s.evictions), (1, 1));
        assert_counter_identity(&cache);
        // The displaced context stays alive for existing holders.
        assert_eq!(a.critical_path(), 6);
    }

    #[test]
    fn capacity_one_thrashes_but_stays_consistent() {
        let cache = ContextCache::new(1);
        let apps = mediabench_apps();
        for round in 0..3 {
            cache.get_or_insert(iir4_parallel());
            cache.get_or_insert(mediabench(&apps[0], 0));
            let s = cache.stats();
            assert_eq!(s.entries, 1);
            assert_eq!(s.hits, 0, "alternating designs never hit at capacity 1");
            assert_eq!(s.misses, 2 * (round + 1));
            assert_counter_identity(&cache);
        }
        // Repeating the resident design is a hit, not another miss.
        cache.get_or_insert(mediabench(&apps[0], 0));
        assert_eq!(cache.stats().hits, 1);
        assert_counter_identity(&cache);
    }

    #[test]
    fn eviction_counter_is_monotone_through_storms() {
        let cache = ContextCache::new(2);
        let apps = mediabench_apps();
        let mut last = 0;
        cache.get_or_insert(iir4_parallel());
        cache.get_or_insert(mediabench(&apps[0], 0));
        for i in 0..4 {
            cache.get_or_insert(mediabench(&apps[i % 3], i as u64));
            let now = cache.stats().evictions;
            assert!(now >= last, "eviction counter went backwards");
            last = now;
        }
        let n = cache.evict_all();
        let s = cache.stats();
        assert_eq!(s.entries, 0, "storm empties the cache");
        assert_eq!(s.evictions, last + n as u64, "storm counts every casualty");
        assert_counter_identity(&cache);
    }

    #[test]
    fn text_alias_is_dropped_with_its_evicted_entry() {
        let apps = mediabench_apps();
        // LRU displacement path: A's alias must die with A.
        let cache = ContextCache::new(1);
        let text = write_cdfg(&iir4_parallel());
        cache.get_or_parse(&text).unwrap();
        cache.get_or_insert(mediabench(&apps[0], 0)); // displaces A
        let s = cache.stats();
        assert_eq!((s.misses, s.evictions), (2, 1));
        // The resend must rebuild (miss), not resolve a dangling alias.
        cache.get_or_parse(&text).unwrap();
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (0, 3), "stale alias would have hit");
        assert_counter_identity(&cache);
        // And once rebuilt, the fast path works again.
        cache.get_or_parse(&text).unwrap();
        assert_eq!(cache.stats().hits, 1);

        // Storm path: evict_all clears aliases too.
        let storm = ContextCache::new(4);
        storm.get_or_parse(&text).unwrap();
        storm.evict_all();
        storm.get_or_parse(&text).unwrap();
        let s = storm.stats();
        assert_eq!((s.hits, s.misses), (0, 2), "alias survived the storm");
        assert_counter_identity(&storm);
    }

    #[test]
    fn store_tier_round_trips_designs_without_reparsing() {
        let dir = std::env::temp_dir().join(format!("localwm-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let text = write_cdfg(&iir4_parallel());

        // First process: a parse miss writes the design and alias through.
        let store = Arc::new(DesignStore::open(&dir).unwrap());
        let cache = ContextCache::with_store(4, Arc::clone(&store));
        let a = cache.get_or_parse(&text).unwrap();
        let s = store.stats();
        assert_eq!(s.records, 2, "design + alias records");
        assert_eq!(s.puts, 2);

        // Second process (fresh cache, same dir): the store answers, the
        // text parser is never consulted, and the hydrated context carries
        // the stored content hash.
        let store2 = Arc::new(DesignStore::open(&dir).unwrap());
        let cache2 = ContextCache::with_store(4, Arc::clone(&store2));
        let b = cache2.get_or_parse(&text).unwrap();
        assert_eq!(b.content_hash(), a.content_hash());
        assert_eq!(write_cdfg(b.graph()), text, "same design, byte-identical");
        let s2 = store2.stats();
        assert_eq!(s2.hits, 2, "alias + design reads came from disk");
        assert_eq!(s2.puts, 0, "nothing was re-written");
        // The in-memory alias now covers the resend: no further store reads.
        let _ = cache2.get_or_parse(&text).unwrap();
        assert_eq!(store2.stats().hits, 2);
        assert_counter_identity(&cache2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lru_evicts_the_least_recently_used_design() {
        // Strict global LRU order only exists with one shard.
        let cache = ContextCache::with_shards(2, 1);
        let apps = mediabench_apps();
        cache.get_or_insert(iir4_parallel()); // A
        cache.get_or_insert(mediabench(&apps[0], 0)); // B
        cache.get_or_insert(iir4_parallel()); // touch A -> B is LRU
        cache.get_or_insert(mediabench(&apps[1], 0)); // C evicts B
        let s = cache.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.entries, 2);
        // A is still cached; B was evicted and misses again.
        cache.get_or_insert(iir4_parallel());
        cache.get_or_insert(mediabench(&apps[0], 0));
        let s = cache.stats();
        assert_eq!(s.hits, 2, "A hit twice; B's return was a miss");
        assert_eq!(s.evictions, 2, "B's return evicted the next LRU");
    }

    #[test]
    fn shard_choice_is_stable_and_capacity_splits_exactly() {
        let cache = ContextCache::new(13);
        assert_eq!(cache.shard_count(), 8);
        let per_shard: Vec<usize> = cache.shard_stats().iter().map(|s| s.capacity).collect();
        assert_eq!(per_shard.iter().sum::<usize>(), 13, "split sums exactly");
        assert!(per_shard.iter().all(|&c| c >= 1));
        for key in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            let first = cache.shard_of(key);
            assert_eq!(cache.shard_of(key), first, "placement is pure");
            assert!(first < cache.shard_count());
        }
    }

    #[test]
    fn shard_counters_sum_to_the_aggregate_view() {
        let cache = ContextCache::with_shards(6, 3);
        let apps = mediabench_apps();
        let text = write_cdfg(&iir4_parallel());
        for i in 0..9 {
            cache.get_or_insert(mediabench(&apps[i % 3], i as u64 % 4));
            cache.get_or_parse(&text).unwrap();
        }
        let agg = cache.stats();
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 3);
        assert_eq!(agg.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(agg.misses, shards.iter().map(|s| s.misses).sum::<u64>());
        assert_eq!(
            agg.evictions,
            shards.iter().map(|s| s.evictions).sum::<u64>()
        );
        assert_eq!(agg.entries, shards.iter().map(|s| s.entries).sum::<usize>());
        assert_eq!(
            agg.capacity,
            shards.iter().map(|s| s.capacity).sum::<usize>()
        );
        assert_counter_identity(&cache);
    }
}
