//! Reusable IO buffer slabs for the request hot path.
//!
//! Every response the server writes used to allocate a fresh `String`
//! (JSON line) or `Vec<u8>` (binary frame) and drop it after the write.
//! A [`BufPool`] keeps those slabs alive across requests: workers check
//! a buffer out, encode into it, and check it back in *cleared but not
//! freed*, so a warm connection reaches steady state with zero encode
//! allocations. One pool lives on each connection — its slab count is
//! naturally bounded by the connection's pipeline window.

use std::sync::Mutex;

/// Slabs larger than this are dropped at check-in instead of pooled, so
/// one huge design sweep cannot pin its peak allocation forever.
const MAX_POOLED_CAPACITY: usize = 1 << 20;

/// A pool of reusable `Vec<u8>` and `String` slabs.
#[derive(Debug, Default)]
pub struct BufPool {
    bytes: Mutex<Vec<Vec<u8>>>,
    strings: Mutex<Vec<String>>,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        BufPool::default()
    }

    /// Checks out a byte buffer (empty, capacity retained from past use).
    pub fn checkout_bytes(&self) -> Vec<u8> {
        self.bytes
            .lock()
            .expect("bufpool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a byte buffer to the pool, cleared but with its capacity
    /// kept for the next checkout.
    pub fn checkin_bytes(&self, mut buf: Vec<u8>) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        self.bytes.lock().expect("bufpool lock").push(buf);
    }

    /// Checks out a string buffer (empty, capacity retained).
    pub fn checkout_string(&self) -> String {
        self.strings
            .lock()
            .expect("bufpool lock")
            .pop()
            .unwrap_or_default()
    }

    /// Returns a string buffer to the pool, cleared.
    pub fn checkin_string(&self, mut buf: String) {
        if buf.capacity() > MAX_POOLED_CAPACITY {
            return;
        }
        buf.clear();
        self.strings.lock().expect("bufpool lock").push(buf);
    }

    /// Pooled slab counts `(bytes, strings)` — test observability.
    pub fn idle(&self) -> (usize, usize) {
        (
            self.bytes.lock().expect("bufpool lock").len(),
            self.strings.lock().expect("bufpool lock").len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkin_clears_but_keeps_capacity() {
        let pool = BufPool::new();
        let mut b = pool.checkout_bytes();
        b.extend_from_slice(b"hello world");
        let cap = b.capacity();
        pool.checkin_bytes(b);
        let b = pool.checkout_bytes();
        assert!(b.is_empty());
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
        assert_eq!(pool.idle().0, 0);
    }

    #[test]
    fn strings_round_trip_too() {
        let pool = BufPool::new();
        let mut s = pool.checkout_string();
        s.push_str("{\"ok\":true}");
        pool.checkin_bytes(Vec::new());
        pool.checkin_string(s);
        assert_eq!(pool.idle(), (1, 1));
        assert!(pool.checkout_string().is_empty());
    }

    #[test]
    fn oversized_slabs_are_dropped_not_pooled() {
        let pool = BufPool::new();
        pool.checkin_bytes(Vec::with_capacity(MAX_POOLED_CAPACITY + 1));
        assert_eq!(pool.idle().0, 0, "huge slab must not be retained");
    }
}
