//! Deterministic fault injection: seeded [`FaultPlan`]s and the runtime
//! [`FaultInjector`] that fires them.
//!
//! The service exposes five **injection points** — places where real
//! deployments fail: socket reads, socket writes, queue admission, worker
//! execution, and the context cache. A [`FaultPlan`] names, for each point,
//! the exact operation indices at which a fault fires and what it does
//! (kill the connection, drop or truncate a response, stall a worker,
//! reject as overloaded, evict the whole cache). Plans are generated from a
//! seed by a counter-based PRNG, so the same seed always produces the same
//! plan, and — because the injector fires on deterministic per-point
//! operation counters — a single-worker replay produces the identical
//! injected-fault trace every run.
//!
//! The injection *seams* in [`server`](crate::server) are only active when
//! the crate is built with the `fault-inject` feature; without it,
//! [`ServeConfig::fault_plan`](crate::ServeConfig) is ignored and no
//! injector is ever installed, so production builds carry no fault paths.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde::{DeError, Deserialize, Serialize, Value};

/// Where in the service a fault can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum InjectionPoint {
    /// A request line was read from a connection (fault: kill the
    /// connection before the request is processed).
    SockRead,
    /// A response is about to be written (fault: drop it, or write a
    /// truncated prefix and kill the connection).
    SockWrite,
    /// A queued-kind request is about to be admitted to the job queue
    /// (fault: behave as if the queue were full).
    QueuePush,
    /// A worker picked up a job (fault: stall for a plan-chosen duration).
    WorkerStall,
    /// A worker picked up a job (fault: evict every cached context first —
    /// an eviction storm).
    CacheEvict,
}

impl InjectionPoint {
    /// Every point, in wire-name order; indexes match
    /// [`InjectionPoint::index`].
    pub const ALL: [InjectionPoint; 5] = [
        InjectionPoint::SockRead,
        InjectionPoint::SockWrite,
        InjectionPoint::QueuePush,
        InjectionPoint::WorkerStall,
        InjectionPoint::CacheEvict,
    ];

    /// A dense index for per-point tables.
    pub fn index(self) -> usize {
        self as usize
    }

    /// The wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            InjectionPoint::SockRead => "sock_read",
            InjectionPoint::SockWrite => "sock_write",
            InjectionPoint::QueuePush => "queue_push",
            InjectionPoint::WorkerStall => "worker_stall",
            InjectionPoint::CacheEvict => "cache_evict",
        }
    }

    /// Parses a wire name.
    pub fn parse(s: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|p| p.as_str() == s)
    }
}

/// What an injected fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Shut the connection down before processing the request
    /// ([`InjectionPoint::SockRead`]).
    DropConnection,
    /// Skip the response write entirely; the connection stays alive
    /// ([`InjectionPoint::SockWrite`]).
    DropResponse,
    /// Write only a prefix of the response line, then shut the connection
    /// down — a torn write ([`InjectionPoint::SockWrite`]).
    PartialWrite,
    /// Sleep this many milliseconds before executing the job
    /// ([`InjectionPoint::WorkerStall`]).
    StallMs(u64),
    /// Reject the request as if the queue were at capacity
    /// ([`InjectionPoint::QueuePush`]).
    RejectFull,
    /// Evict every cached design context ([`InjectionPoint::CacheEvict`]).
    EvictAll,
}

impl FaultAction {
    /// The wire name (the stall duration is carried separately).
    pub fn as_str(self) -> &'static str {
        match self {
            FaultAction::DropConnection => "drop_connection",
            FaultAction::DropResponse => "drop_response",
            FaultAction::PartialWrite => "partial_write",
            FaultAction::StallMs(_) => "stall_ms",
            FaultAction::RejectFull => "reject_full",
            FaultAction::EvictAll => "evict_all",
        }
    }

    fn to_value(self) -> Value {
        let mut fields = vec![("action".to_owned(), Value::Str(self.as_str().to_owned()))];
        if let FaultAction::StallMs(ms) = self {
            fields.push(("ms".to_owned(), Value::UInt(ms)));
        }
        Value::Object(fields)
    }

    fn from_value(v: &Value) -> Result<Self, DeError> {
        let name: String = serde::field(v, "action")?;
        match name.as_str() {
            "drop_connection" => Ok(FaultAction::DropConnection),
            "drop_response" => Ok(FaultAction::DropResponse),
            "partial_write" => Ok(FaultAction::PartialWrite),
            "stall_ms" => Ok(FaultAction::StallMs(serde::field(v, "ms")?)),
            "reject_full" => Ok(FaultAction::RejectFull),
            "evict_all" => Ok(FaultAction::EvictAll),
            other => Err(DeError::msg(format!("unknown fault action `{other}`"))),
        }
    }
}

/// One planned fault: at the `at_index`-th operation seen by `point`,
/// perform `action`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which injection point this fault arms.
    pub point: InjectionPoint,
    /// Zero-based operation index at that point.
    pub at_index: u64,
    /// What happens when it fires.
    pub action: FaultAction,
}

/// A deterministic, seeded schedule of faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-built plans).
    pub seed: u64,
    /// The operation horizon the plan was generated for (indices are drawn
    /// from the first half of it, so trailing admin traffic — `stats`,
    /// `shutdown` — stays fault-free).
    pub horizon: u64,
    /// The armed faults, sorted by `(point, at_index)`.
    pub faults: Vec<FaultSpec>,
}

/// The toolkit-wide deterministic stream, re-exported where fault plans
/// historically found it (the implementation now lives in `localwm-prng`
/// so every seeded adversarial path shares one generator).
pub use localwm_prng::SplitMix64;

impl FaultPlan {
    /// An empty plan (no faults ever fire).
    pub fn empty() -> Self {
        FaultPlan {
            seed: 0,
            horizon: 0,
            faults: Vec::new(),
        }
    }

    /// Generates a plan from `seed`: up to `per_point` faults at each
    /// injection point, with indices drawn from `[0, horizon / 2)` so a
    /// replay of `horizon` requests keeps its trailing admin traffic
    /// (stats, shutdown) fault-free. Identical arguments always produce the
    /// identical plan.
    pub fn generate(seed: u64, horizon: u64, per_point: usize) -> Self {
        let mut rng = SplitMix64::new(seed ^ 0xC0FF_EE00_D15E_A5ED);
        let range = (horizon / 2).max(1);
        let mut faults = Vec::new();
        for point in InjectionPoint::ALL {
            let mut used = Vec::new();
            for _ in 0..per_point {
                let at_index = rng.below(range);
                let roll = rng.next_u64();
                if used.contains(&at_index) {
                    continue; // collisions are dropped, deterministically
                }
                used.push(at_index);
                let action = match point {
                    InjectionPoint::SockRead => FaultAction::DropConnection,
                    InjectionPoint::SockWrite => {
                        if roll & 1 == 0 {
                            FaultAction::DropResponse
                        } else {
                            FaultAction::PartialWrite
                        }
                    }
                    InjectionPoint::QueuePush => FaultAction::RejectFull,
                    InjectionPoint::WorkerStall => FaultAction::StallMs(5 + roll % 20),
                    InjectionPoint::CacheEvict => FaultAction::EvictAll,
                };
                faults.push(FaultSpec {
                    point,
                    at_index,
                    action,
                });
            }
        }
        faults.sort_by_key(|f| (f.point, f.at_index));
        FaultPlan {
            seed,
            horizon,
            faults,
        }
    }

    /// Faults armed for one injection point.
    pub fn faults_at(&self, point: InjectionPoint) -> impl Iterator<Item = &FaultSpec> {
        self.faults.iter().filter(move |f| f.point == point)
    }

    /// How many planned faults of this action kind exist (stall durations
    /// are ignored for matching).
    pub fn count_action(&self, name: &str) -> usize {
        self.faults
            .iter()
            .filter(|f| f.action.as_str() == name)
            .count()
    }
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        let faults: Vec<Value> = self
            .faults
            .iter()
            .map(|f| {
                let mut o = match f.action.to_value() {
                    Value::Object(fields) => fields,
                    _ => unreachable!("action serializes to an object"),
                };
                o.insert(
                    0,
                    ("point".to_owned(), Value::Str(f.point.as_str().to_owned())),
                );
                o.insert(1, ("at_index".to_owned(), Value::UInt(f.at_index)));
                Value::Object(o)
            })
            .collect();
        Value::Object(vec![
            ("seed".to_owned(), Value::UInt(self.seed)),
            ("horizon".to_owned(), Value::UInt(self.horizon)),
            ("faults".to_owned(), Value::Array(faults)),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let seed: u64 = serde::field(v, "seed")?;
        let horizon: u64 = serde::field(v, "horizon")?;
        let raw = match v.field("faults") {
            Some(Value::Array(a)) => a,
            _ => return Err(DeError::msg("missing `faults` array")),
        };
        let mut faults = Vec::with_capacity(raw.len());
        for f in raw {
            let point: String = serde::field(f, "point")?;
            let point = InjectionPoint::parse(&point)
                .ok_or_else(|| DeError::msg(format!("unknown injection point `{point}`")))?;
            faults.push(FaultSpec {
                point,
                at_index: serde::field(f, "at_index")?,
                action: FaultAction::from_value(f)?,
            });
        }
        Ok(FaultPlan {
            seed,
            horizon,
            faults,
        })
    }
}

/// One fault that actually fired at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FiredFault {
    /// The injection point that fired.
    pub point: InjectionPoint,
    /// The operation index at which it fired.
    pub index: u64,
    /// The action performed.
    pub action: FaultAction,
}

impl Serialize for FiredFault {
    fn to_value(&self) -> Value {
        let mut fields = match self.action.to_value() {
            Value::Object(f) => f,
            _ => unreachable!("action serializes to an object"),
        };
        fields.insert(
            0,
            (
                "point".to_owned(),
                Value::Str(self.point.as_str().to_owned()),
            ),
        );
        fields.insert(1, ("index".to_owned(), Value::UInt(self.index)));
        Value::Object(fields)
    }
}

/// The runtime side of a [`FaultPlan`]: per-point operation counters, the
/// armed fault table, and a trace of everything that fired.
pub struct FaultInjector {
    armed: [HashMap<u64, FaultAction>; 5],
    counters: [AtomicU64; 5],
    trace: Mutex<Vec<FiredFault>>,
}

impl FaultInjector {
    /// An injector armed with `plan`.
    pub fn from_plan(plan: &FaultPlan) -> Self {
        let mut armed: [HashMap<u64, FaultAction>; 5] = Default::default();
        for f in &plan.faults {
            armed[f.point.index()].insert(f.at_index, f.action);
        }
        FaultInjector {
            armed,
            counters: Default::default(),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Ticks `point`'s operation counter and returns the armed fault for
    /// this index, if any; fired faults are appended to the trace.
    pub fn check(&self, point: InjectionPoint) -> Option<FaultAction> {
        let index = self.counters[point.index()].fetch_add(1, Ordering::SeqCst);
        let action = self.armed[point.index()].get(&index).copied();
        if let Some(action) = action {
            self.trace.lock().expect("trace lock").push(FiredFault {
                point,
                index,
                action,
            });
        }
        action
    }

    /// Operations seen so far at one point.
    pub fn operations(&self, point: InjectionPoint) -> u64 {
        self.counters[point.index()].load(Ordering::SeqCst)
    }

    /// Everything that has fired, in firing order.
    pub fn trace(&self) -> Vec<FiredFault> {
        self.trace.lock().expect("trace lock").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_generates_the_identical_plan() {
        let a = FaultPlan::generate(42, 100, 3);
        let b = FaultPlan::generate(42, 100, 3);
        assert_eq!(a, b);
        assert!(!a.faults.is_empty());
        let c = FaultPlan::generate(43, 100, 3);
        assert_ne!(a, c, "different seeds diverge");
    }

    #[test]
    fn plan_indices_stay_in_the_front_half_of_the_horizon() {
        let p = FaultPlan::generate(7, 64, 4);
        assert!(p.faults.iter().all(|f| f.at_index < 32));
    }

    #[test]
    fn plan_round_trips_through_json() {
        let p = FaultPlan::generate(9, 40, 2);
        let json = serde_json::to_string(&p.to_value()).unwrap();
        let v = serde_json::from_str::<Value>(&json).unwrap();
        let back = FaultPlan::from_value(&v).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn injector_fires_exactly_at_the_armed_indices_and_traces() {
        let plan = FaultPlan {
            seed: 0,
            horizon: 10,
            faults: vec![
                FaultSpec {
                    point: InjectionPoint::SockWrite,
                    at_index: 2,
                    action: FaultAction::DropResponse,
                },
                FaultSpec {
                    point: InjectionPoint::WorkerStall,
                    at_index: 0,
                    action: FaultAction::StallMs(7),
                },
            ],
        };
        let inj = FaultInjector::from_plan(&plan);
        assert_eq!(inj.check(InjectionPoint::SockWrite), None); // index 0
        assert_eq!(inj.check(InjectionPoint::SockWrite), None); // index 1
        assert_eq!(
            inj.check(InjectionPoint::SockWrite),
            Some(FaultAction::DropResponse)
        );
        assert_eq!(
            inj.check(InjectionPoint::WorkerStall),
            Some(FaultAction::StallMs(7))
        );
        assert_eq!(inj.check(InjectionPoint::WorkerStall), None);
        let trace = inj.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].point, InjectionPoint::SockWrite);
        assert_eq!(trace[0].index, 2);
        assert_eq!(trace[1].action, FaultAction::StallMs(7));
        assert_eq!(inj.operations(InjectionPoint::SockWrite), 3);
    }

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(5);
        let mut b = SplitMix64::new(5);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
