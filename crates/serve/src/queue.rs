//! A bounded MPMC job queue with explicit backpressure.
//!
//! Producers (connection threads) use [`BoundedQueue::try_push`], which
//! **never blocks**: when the queue is at capacity the job comes straight
//! back so the caller can answer with a typed `overloaded` error. Consumers
//! (workers) block in [`BoundedQueue::pop`] until a job or queue closure
//! arrives.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue; see the module docs.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
    rejected: AtomicU64,
}

/// Why a [`BoundedQueue::try_push`] returned the job to the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed.
    Closed,
}

impl<T> BoundedQueue<T> {
    /// An empty queue holding at most `capacity` jobs (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity: capacity.max(1),
            rejected: AtomicU64::new(0),
        }
    }

    /// Enqueues without blocking. On a full or closed queue the job is
    /// handed back with the reason; full-queue rejections are counted.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().expect("queue lock");
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocks until a job is available (FIFO) or the queue is closed and
    /// empty (`None`).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.not_empty.wait(s).expect("queue lock");
        }
    }

    /// Closes the queue: pending jobs still drain, new pushes fail, and
    /// blocked consumers wake once it is empty.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Jobs currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total full-queue rejections so far.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_is_fifo() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_rejects_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err((3, PushError::Full)));
        assert_eq!(q.rejected(), 1);
        assert_eq!(q.len(), 2);
        // Draining one slot re-admits.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_drains_then_wakes_consumers() {
        let q = Arc::new(BoundedQueue::new(8));
        q.try_push(10).unwrap();
        q.close();
        assert_eq!(q.try_push(11), Err((11, PushError::Closed)));
        assert_eq!(q.pop(), Some(10), "queued work still drains");
        assert_eq!(q.pop(), None, "then consumers see closure");
    }

    #[test]
    fn concurrent_producers_and_consumers_preserve_items() {
        let q = Arc::new(BoundedQueue::new(64));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    for i in 0..50 {
                        let mut v = p * 1000 + i;
                        // Spin on Full (bounded queue, slow consumers).
                        while let Err((back, PushError::Full)) = q.try_push(v) {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let mut expect: Vec<i32> = (0..4)
            .flat_map(|p| (0..50).map(move |i| p * 1000 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect, "every produced job is consumed exactly once");
    }
}
