//! `localwm-serve`: a concurrent analysis service over the localwm engine.
//!
//! A std-only TCP server speaking a JSON-lines protocol (one request
//! object per line, one response object per line; see [`protocol`]), with
//! an optional per-connection binary encoding: a client whose first line
//! is the [`protocol::BINARY_MAGIC`] magic gets length-prefixed
//! checksummed frames carrying the same value trees (see
//! [`localwm_store::binval`]). Request kinds: `embed`, `detect`,
//! `analyze`, `timing`, `stats`, `shutdown` (`cluster_stats` is part of
//! the shared protocol but answered by `localwm-gateway`; a single backend
//! rejects it with a typed error).
//!
//! The moving parts:
//!
//! * [`queue::BoundedQueue`] — bounded MPMC job queue with explicit
//!   backpressure (typed `overloaded` error when full; the acceptor never
//!   blocks).
//! * [`cache::ContextCache`] — content-hash-keyed LRU of shared
//!   [`DesignContext`](localwm_engine::DesignContext)s with hit/miss/
//!   eviction counters, optionally backed by a durable write-through
//!   [`localwm_store::DesignStore`] (`--store-dir`): a cache miss checks
//!   the store before parsing, so a restarted server answers its working
//!   set without reparsing a single design.
//! * [`metrics::Metrics`] — per-kind latency histograms and counters,
//!   surfaced by the `stats` request and `--metrics-out`.
//! * [`server`] — acceptor, worker pool, deadline watchdog, graceful
//!   drain-on-shutdown.
//! * [`session::SessionState`] — interactive sessions (`open` / `mutate` /
//!   `close`): a held design mutated by edit scripts and re-analyzed
//!   incrementally (dirty-cone patching in the engine), with responses
//!   byte-identical to from-scratch requests. Sessions are answered inline
//!   on the connection thread (strict per-connection ordering), excluded
//!   from single-flight coalescing, idle-evicted by the watchdog, and
//!   closed by drain.
//! * [`client::Client`] — the blocking client used by `localwm request`,
//!   the integration tests, and the load bench.
//! * [`fault`] — seeded, deterministic fault injection ([`FaultPlan`] /
//!   [`FaultInjector`]); the seams in [`server`] fire only when the crate
//!   is built with the `fault-inject` feature. `localwm-testkit` drives
//!   this for chaos and differential testing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufpool;
pub mod cache;
pub mod client;
pub mod fault;
pub mod handlers;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod session;
pub mod singleflight;

pub use cache::{CacheStats, ContextCache};
pub use client::Client;
pub use fault::{FaultAction, FaultInjector, FaultPlan, FaultSpec, FiredFault, InjectionPoint};
pub use metrics::{Metrics, Outcome};
pub use protocol::{ErrorCode, Request, RequestKind, Response, ServiceError, BINARY_MAGIC};
pub use queue::{BoundedQueue, PushError};
pub use server::{start, ServeConfig, ServerHandle};
pub use session::SessionState;
