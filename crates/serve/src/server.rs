//! The concurrent analysis server.
//!
//! Threading model:
//!
//! * **Acceptor** — non-blocking accept loop; spawns one reader thread per
//!   connection and never does request work itself.
//! * **Connection readers** — decode JSON lines, answer `stats` and
//!   `shutdown` inline (so observability and drain work even under a full
//!   queue), and [`try_push`](crate::queue::BoundedQueue::try_push) every
//!   other request: a full queue yields an immediate typed `overloaded`
//!   error instead of blocking.
//! * **Workers** — a fixed pool popping the bounded queue and running
//!   [`handlers::execute`].
//! * **Watchdog** — scans pending requests every few milliseconds and
//!   answers expired ones with `deadline_exceeded`; the response-once flag
//!   keeps a late worker from double-answering.
//!
//! Shutdown is graceful: the flag flips first (new work is refused with
//! `shutting_down`), queued and in-flight jobs drain to completion, the
//! metrics snapshot is dumped (`--metrics-out`), and only then does the
//! `shutdown` request get its acknowledgement.

use std::collections::HashMap;
use std::io::{self, IoSlice, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use localwm_engine::Parallelism;
use localwm_store::binval::{encode_value, frame_header, read_frame_into, write_frame};
use localwm_store::DesignStore;
use serde::{Serialize, Value};

use crate::bufpool::BufPool;
use crate::cache::ContextCache;
use crate::fault::{FaultAction, FaultInjector, FaultPlan, FiredFault, InjectionPoint};
use crate::handlers;
use crate::metrics::{Metrics, Outcome};
use crate::protocol::{ErrorCode, Request, RequestKind, Response, ServiceError, BINARY_MAGIC};
use crate::queue::{BoundedQueue, PushError};
use crate::singleflight::coalescing_key;

/// Server configuration (the CLI's `localwm serve` flags).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:7171` (`:0` picks a free port).
    pub addr: String,
    /// Worker threads executing requests.
    pub workers: usize,
    /// Bounded job-queue depth; beyond it requests are rejected with
    /// `overloaded`.
    pub queue_depth: usize,
    /// Designs kept in the shared-context LRU cache.
    pub cache_cap: usize,
    /// Default per-request deadline applied when a request carries none.
    pub default_timeout_ms: Option<u64>,
    /// Dump the final metrics snapshot to this file on shutdown.
    pub metrics_out: Option<String>,
    /// Deterministic fault schedule, honored only when the crate is built
    /// with the `fault-inject` feature (ignored — with a warning — without
    /// it). See [`crate::fault`].
    pub fault_plan: Option<FaultPlan>,
    /// Evict interactive sessions idle for longer than this; `None`
    /// disables idle eviction (sessions live until `close` or drain). An
    /// evicted session answers subsequent requests with a typed
    /// `session_expired` error.
    pub session_idle_ms: Option<u64>,
    /// Mount a durable [`DesignStore`] at this directory as a
    /// write-through tier under the context cache (`--store-dir`).
    /// Opt-in; `None` keeps the cache memory-only. Sessions are excluded:
    /// their held designs are mutable working state, not content-addressed
    /// artifacts.
    pub store_dir: Option<String>,
    /// Per-connection pipeline window: how many decoded requests may be in
    /// flight (accepted but not yet written back) before the connection's
    /// reader stops reading ahead. Responses always leave in request
    /// order, so the byte stream is identical to lockstep request/response
    /// at any window. `1` disables read-ahead entirely.
    pub pipeline_window: usize,
}

/// Default per-connection pipeline window (see
/// [`ServeConfig::pipeline_window`]).
pub const DEFAULT_PIPELINE_WINDOW: usize = 8;

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 4,
            queue_depth: 64,
            cache_cap: 8,
            default_timeout_ms: None,
            metrics_out: None,
            fault_plan: None,
            session_idle_ms: None,
            store_dir: None,
            pipeline_window: DEFAULT_PIPELINE_WINDOW,
        }
    }
}

/// Hard cap on concurrently open sessions; past it `open` answers with a
/// typed `overloaded` error.
const SESSION_CAP: usize = 64;

/// One held session plus its idle clock; the entry mutex serializes
/// cross-connection access to the same session id (one connection's
/// requests are already ordered by its reader thread).
struct SessionEntry {
    state: Mutex<(crate::session::SessionState, Instant)>,
}

struct Conn {
    stream: Mutex<TcpStream>,
    injector: Option<Arc<FaultInjector>>,
    /// True once the connection negotiated the `LWMB1` binary protocol;
    /// responses then go out as frames instead of JSON lines.
    binary: bool,
    /// Reusable encode buffers: checked out per response, cleared (not
    /// freed) on check-in, so a warm connection encodes without
    /// allocating.
    pool: BufPool,
    /// Ordered-writer state: responses carry the sequence number their
    /// request was read with and go on the wire strictly in that order,
    /// whatever order the workers finish in.
    order: Mutex<OrderState>,
    /// Signalled whenever `next_write` advances; the reader waits on it
    /// when the pipeline window is full.
    wrote: Condvar,
    /// Max requests in flight on this connection (`>= 1`).
    window: u64,
}

#[derive(Default)]
struct OrderState {
    /// Next sequence number to hand to a newly read request.
    next_seq: u64,
    /// Next sequence number allowed on the wire.
    next_write: u64,
    /// Completed responses waiting for their turn.
    parked: HashMap<u64, Outgoing>,
    /// Encoded responses already at their turn but held off the socket
    /// while later requests are still in flight (Nagle-style response
    /// coalescing): a pipelined burst then goes out as one vectored
    /// write instead of one syscall per response. Flushed as soon as
    /// the pipeline drains or `window` responses accumulate, so a
    /// lockstep client never waits on it.
    held: Vec<Vec<u8>>,
}

/// A completed response in the ordered-writer's terms.
enum Outgoing {
    /// Encoded wire bytes: a JSON line (newline included) or a binary
    /// frame *body* (its 12-byte header rides a separate vectored slice
    /// at write time).
    Write(Vec<u8>),
    /// Injected torn write: fully encoded wire bytes of which only half
    /// go out before the socket dies.
    Partial(Vec<u8>),
    /// Injected dropped response: nothing goes on the wire, but ordering
    /// still advances so the pipeline never stalls behind it.
    Dropped,
}

impl Conn {
    fn new(
        stream: TcpStream,
        injector: Option<Arc<FaultInjector>>,
        binary: bool,
        window: u64,
    ) -> Conn {
        Conn {
            stream: Mutex::new(stream),
            injector,
            binary,
            pool: BufPool::new(),
            order: Mutex::new(OrderState::default()),
            wrote: Condvar::new(),
            window: window.max(1),
        }
    }

    /// Reserves the next response slot for a request just read. Blocks
    /// while the pipeline window is full (backpressure: the reader stops
    /// reading ahead); returns `None` once the server stops, so reader
    /// threads never wedge on a window that will not drain.
    fn assign_seq(&self, stopped: &AtomicBool) -> Option<u64> {
        let mut st = self.order.lock().expect("order lock");
        while st.next_seq - st.next_write >= self.window {
            if stopped.load(Ordering::SeqCst) {
                return None;
            }
            let (guard, _) = self
                .wrote
                .wait_timeout(st, Duration::from_millis(20))
                .expect("order lock");
            st = guard;
        }
        let seq = st.next_seq;
        st.next_seq += 1;
        Some(seq)
    }

    /// The response's wire bytes in this connection's negotiated encoding,
    /// in a pooled buffer (JSON: line plus newline; binary: frame body
    /// alone).
    fn encode(&self, resp: &Response) -> Vec<u8> {
        let mut buf = self.pool.checkout_bytes();
        if self.binary {
            encode_value(&resp.to_value(), &mut buf);
        } else {
            let mut line = self.pool.checkout_string();
            resp.write_json(&mut line);
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
            self.pool.checkin_string(line);
        }
        buf
    }

    fn send(&self, seq: u64, resp: &Response) {
        if let Some(inj) = &self.injector {
            match inj.check(InjectionPoint::SockWrite) {
                Some(FaultAction::DropResponse) => {
                    // Simulated write error: the response vanishes, but its
                    // slot is consumed so later responses still flow.
                    self.complete(seq, Outgoing::Dropped);
                    return;
                }
                Some(FaultAction::PartialWrite) => {
                    // A torn write: a prefix of the encoded response goes
                    // out (at its ordered turn), then the connection dies
                    // mid-response.
                    let mut wire = Vec::new();
                    if self.binary {
                        write_frame(&mut wire, &resp.to_frame()).expect("vec write is infallible");
                    } else {
                        let mut line = resp.to_line();
                        line.push('\n');
                        wire = line.into_bytes();
                    }
                    self.complete(seq, Outgoing::Partial(wire));
                    return;
                }
                _ => {}
            }
        }
        let buf = self.encode(resp);
        self.complete(seq, Outgoing::Write(buf));
    }

    /// Hands a completed response to the ordered writer. If `seq` is next
    /// on the wire, this thread stages it — plus every consecutively
    /// parked successor — and flushes the staged bytes in one vectored
    /// write once no earlier request is still in flight; otherwise it
    /// parks until the earlier responses land.
    fn complete(&self, seq: u64, out: Outgoing) {
        let mut st = self.order.lock().expect("order lock");
        if seq != st.next_write {
            st.parked.insert(seq, out);
            return;
        }
        let mut ready = vec![out];
        st.next_write += 1;
        loop {
            let turn = st.next_write;
            let Some(next) = st.parked.remove(&turn) else {
                break;
            };
            ready.push(next);
            st.next_write += 1;
        }
        // Seqs are assigned only after a request is fully read, so every
        // in-flight seq completes without further client input — holding
        // bytes until the pipeline drains cannot deadlock a waiting
        // client. Writing under the order lock is what keeps the byte
        // stream in request order; the window bounds how much can ever
        // be held, so the hold time stays short.
        let drained = st.next_write == st.next_seq;
        self.write_batch(&mut st, ready, drained);
        self.wrote.notify_all();
    }

    fn write_batch(&self, st: &mut OrderState, ready: Vec<Outgoing>, drained: bool) {
        for out in ready {
            match out {
                Outgoing::Write(buf) => st.held.push(buf),
                Outgoing::Dropped => {}
                Outgoing::Partial(wire) => {
                    // Flush everything ahead of the torn response, then
                    // write half of it and kill the socket.
                    let mut stream = self.stream.lock().expect("conn lock");
                    self.flush_batch(&mut stream, &mut st.held);
                    let half = wire.len() / 2;
                    let _ = stream
                        .write_all(&wire[..half])
                        .and_then(|()| stream.flush());
                    let _ = stream.shutdown(Shutdown::Both);
                }
            }
        }
        // Holdback: with later requests still in flight their responses
        // are due shortly, so keep accumulating (up to one window) and
        // pay one syscall for the burst instead of one per response.
        if st.held.is_empty() || (!drained && (st.held.len() as u64) < self.window) {
            return;
        }
        let mut stream = self.stream.lock().expect("conn lock");
        self.flush_batch(&mut stream, &mut st.held);
    }

    /// One vectored write + flush for a batch of encoded responses; write
    /// errors are ignored (a dead peer is not a server error). Buffers
    /// return to the pool.
    fn flush_batch(&self, stream: &mut TcpStream, batch: &mut Vec<Vec<u8>>) {
        match batch.as_slice() {
            [] => return,
            // The common (unbatched) case stays allocation-free: header
            // and body as two stack slices.
            [body] if self.binary => {
                let header = frame_header(body).expect("response fits the frame cap");
                let _ = write_all_vectored(stream, &[&header, body]).and_then(|()| stream.flush());
            }
            [line] => {
                let _ = stream.write_all(line).and_then(|()| stream.flush());
            }
            bodies => {
                let headers: Vec<[u8; 12]> = if self.binary {
                    bodies
                        .iter()
                        .map(|b| frame_header(b).expect("response fits the frame cap"))
                        .collect()
                } else {
                    Vec::new()
                };
                let mut parts: Vec<&[u8]> = Vec::with_capacity(bodies.len() * 2);
                for (i, body) in bodies.iter().enumerate() {
                    if self.binary {
                        parts.push(&headers[i]);
                    }
                    parts.push(body);
                }
                let _ = write_all_vectored(stream, &parts).and_then(|()| stream.flush());
            }
        }
        for buf in batch.drain(..) {
            self.pool.checkin_bytes(buf);
        }
    }
}

/// `write_all` across many buffers in as few syscalls as the platform
/// allows: each round offers every remaining slice to `write_vectored`.
fn write_all_vectored(stream: &mut TcpStream, parts: &[&[u8]]) -> io::Result<()> {
    let mut i = 0;
    let mut off = 0;
    while i < parts.len() {
        let mut slices = Vec::with_capacity(parts.len() - i);
        slices.push(IoSlice::new(&parts[i][off..]));
        slices.extend(parts[i + 1..].iter().map(|p| IoSlice::new(p)));
        let mut n = stream.write_vectored(&slices)?;
        if n == 0 {
            return Err(io::ErrorKind::WriteZero.into());
        }
        while i < parts.len() && n >= parts[i].len() - off {
            n -= parts[i].len() - off;
            i += 1;
            off = 0;
        }
        off += n;
    }
    Ok(())
}

struct JobState {
    id: Option<u64>,
    kind: RequestKind,
    /// The connection-local sequence number of the request, consumed by
    /// the ordered writer when the response (or its injected absence)
    /// goes out.
    seq: u64,
    deadline: Option<Instant>,
    responded: AtomicBool,
    started: Instant,
}

struct Job {
    req: Request,
    conn: Arc<Conn>,
    state: Arc<JobState>,
    /// Single-flight key; `Some` only for coalescible kinds, where this job
    /// is the flight's *leader* (followers never enter the queue).
    key: Option<u64>,
}

struct Pending {
    state: Arc<JobState>,
    conn: Arc<Conn>,
}

/// A request that attached to an identical in-flight computation: it gets
/// the leader's response bytes, re-stamped with its own correlation id.
struct Waiter {
    state: Arc<JobState>,
    conn: Arc<Conn>,
}

struct Shared {
    cfg: ServeConfig,
    queue: BoundedQueue<Job>,
    cache: ContextCache,
    /// The durable design store mounted under the cache (`--store-dir`);
    /// also held here so `stats` can report it without going through the
    /// cache. `None` when the server runs memory-only.
    store: Option<Arc<DesignStore>>,
    metrics: Metrics,
    pending: Mutex<Vec<Pending>>,
    /// In-flight single-flight entries, sharded by coalescing key: key →
    /// waiters attached so far. An entry is inserted when a coalescible
    /// leader is dispatched and removed when its computation completes (or
    /// its queue push fails), so identical requests arriving in between
    /// attach instead of recomputing. Every operation on a key happens
    /// under that key's shard lock alone, so coalescing stays correct per
    /// shard while distinct designs stop serializing on one mutex.
    inflight: Vec<Mutex<HashMap<u64, Vec<Waiter>>>>,
    /// Open interactive sessions by client-chosen id.
    sessions: Mutex<HashMap<String, Arc<SessionEntry>>>,
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    sessions_expired: AtomicU64,
    shutting_down: AtomicBool,
    stopped: AtomicBool,
    /// Live client sockets, keyed by a per-connection id. [`stop`] shuts
    /// every one down so detached reader threads exit promptly and peers
    /// see a closed socket — never a half-dead server that still answers.
    conns: Mutex<HashMap<u64, TcpStream>>,
    next_conn_id: AtomicU64,
    metrics_dumped: AtomicBool,
    jobs_submitted: AtomicU64,
    jobs_completed: AtomicU64,
    /// Requests answered by attaching to another request's computation.
    coalesced: AtomicU64,
    /// Handler executions that actually ran (excludes coalesced followers
    /// and watchdog-answered skips).
    executed: AtomicU64,
    panics: AtomicU64,
    busy_workers: AtomicU64,
    /// Per-encoding connection and request counters, reported in the
    /// `protocol` stats block. A connection is counted once at negotiation
    /// time; every decoded request bumps its encoding's request counter.
    json_conns: AtomicU64,
    binary_conns: AtomicU64,
    json_requests: AtomicU64,
    binary_requests: AtomicU64,
    workers: usize,
    /// Parallelism for nested engine passes, resolved once at startup from
    /// `LOCALWM_THREADS`. Engine passes are parallelism-invariant, so this
    /// only affects speed; parallel work runs on the process-wide engine
    /// worker pool shared by all serve workers.
    engine_par: Parallelism,
    injector: Option<Arc<FaultInjector>>,
}

/// Single-flight shard count: small and fixed — entries are transient
/// (one per distinct in-flight computation), so this bounds lock
/// contention, not memory.
const INFLIGHT_SHARDS: u64 = 8;

impl Shared {
    /// The single-flight shard holding `key` — same SplitMix64 draw the
    /// cache uses, so placement is a pure function of the key.
    fn inflight_shard(&self, key: u64) -> &Mutex<HashMap<u64, Vec<Waiter>>> {
        let z = localwm_prng::SplitMix64::new(key).next_u64();
        &self.inflight[(z % INFLIGHT_SHARDS) as usize]
    }

    /// Sends `resp` unless someone (worker or watchdog) already answered
    /// this job, and records the latency under the winning outcome.
    fn respond_once(&self, state: &JobState, conn: &Conn, resp: &Response, outcome: Outcome) {
        if state.responded.swap(true, Ordering::SeqCst) {
            return;
        }
        self.metrics
            .record(state.kind, state.started.elapsed(), outcome);
        conn.send(state.seq, resp);
    }

    fn stats_value(&self) -> Value {
        let c = self.cache.stats();
        let mut fields = vec![
            ("uptime_ms".to_owned(), self.metrics.uptime_ms().to_value()),
            ("workers".to_owned(), self.workers.to_value()),
            // Instantaneous gauges (not counters): sampled at stats time so
            // a gateway's `cluster_stats` can aggregate live load.
            (
                "busy_workers".to_owned(),
                self.busy_workers.load(Ordering::SeqCst).to_value(),
            ),
            (
                "queue".to_owned(),
                Value::Object(vec![
                    ("depth".to_owned(), self.queue.len().to_value()),
                    ("capacity".to_owned(), self.queue.capacity().to_value()),
                    ("rejected".to_owned(), self.queue.rejected().to_value()),
                ]),
            ),
            (
                "cache".to_owned(),
                Value::Object(vec![
                    // Aggregate view first (sums over shards; existing
                    // consumers keep reading these names), then the
                    // per-shard breakdown.
                    ("hits".to_owned(), c.hits.to_value()),
                    ("misses".to_owned(), c.misses.to_value()),
                    ("evictions".to_owned(), c.evictions.to_value()),
                    ("entries".to_owned(), c.entries.to_value()),
                    ("capacity".to_owned(), c.capacity.to_value()),
                    (
                        "shards".to_owned(),
                        Value::Array(
                            self.cache
                                .shard_stats()
                                .into_iter()
                                .map(|s| {
                                    Value::Object(vec![
                                        ("hits".to_owned(), s.hits.to_value()),
                                        ("misses".to_owned(), s.misses.to_value()),
                                        ("evictions".to_owned(), s.evictions.to_value()),
                                        ("entries".to_owned(), s.entries.to_value()),
                                        ("capacity".to_owned(), s.capacity.to_value()),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ]),
            ),
            (
                "sessions".to_owned(),
                Value::Object(vec![
                    (
                        "open".to_owned(),
                        self.sessions
                            .lock()
                            .expect("sessions lock")
                            .len()
                            .to_value(),
                    ),
                    (
                        "opened".to_owned(),
                        self.sessions_opened.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "closed".to_owned(),
                        self.sessions_closed.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "expired".to_owned(),
                        self.sessions_expired.load(Ordering::SeqCst).to_value(),
                    ),
                ]),
            ),
            (
                "coalesced".to_owned(),
                self.coalesced.load(Ordering::SeqCst).to_value(),
            ),
            (
                "executed".to_owned(),
                self.executed.load(Ordering::SeqCst).to_value(),
            ),
            ("pool".to_owned(), {
                let p = localwm_engine::pool_stats();
                Value::Object(vec![
                    ("threads".to_owned(), p.threads.to_value()),
                    ("jobs".to_owned(), p.jobs.to_value()),
                    ("steals".to_owned(), p.steals.to_value()),
                    (
                        "cross_batch_steals".to_owned(),
                        p.cross_batch_steals.to_value(),
                    ),
                    ("park_wakeups".to_owned(), p.park_wakeups.to_value()),
                ])
            }),
            (
                "panics".to_owned(),
                self.panics.load(Ordering::SeqCst).to_value(),
            ),
            (
                "protocol".to_owned(),
                Value::Object(vec![
                    (
                        "json_conns".to_owned(),
                        self.json_conns.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "binary_conns".to_owned(),
                        self.binary_conns.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "json_requests".to_owned(),
                        self.json_requests.load(Ordering::SeqCst).to_value(),
                    ),
                    (
                        "binary_requests".to_owned(),
                        self.binary_requests.load(Ordering::SeqCst).to_value(),
                    ),
                ]),
            ),
            ("requests".to_owned(), self.metrics.to_value()),
        ];
        if let Some(store) = &self.store {
            let s = store.stats();
            fields.push((
                "store".to_owned(),
                Value::Object(vec![
                    ("segments".to_owned(), s.segments.to_value()),
                    ("bytes".to_owned(), s.bytes.to_value()),
                    ("records".to_owned(), s.records.to_value()),
                    ("hits".to_owned(), s.hits.to_value()),
                    ("misses".to_owned(), s.misses.to_value()),
                    ("puts".to_owned(), s.puts.to_value()),
                    ("recovered".to_owned(), s.recovered.to_value()),
                    ("dropped_tail".to_owned(), s.dropped_tail.to_value()),
                    (
                        "checksum_failures".to_owned(),
                        s.checksum_failures.to_value(),
                    ),
                ]),
            ));
        }
        if let Some(inj) = &self.injector {
            fields.push((
                "faults_fired".to_owned(),
                (inj.trace().len() as u64).to_value(),
            ));
        }
        Value::Object(fields)
    }

    /// Writes the metrics snapshot to `--metrics-out`. `clean` records
    /// whether this was a drained shutdown or a partial flush after a
    /// fault/abort, so chaos runs can tell the two apart.
    fn dump_metrics(&self, clean: bool) {
        if let Some(path) = &self.cfg.metrics_out {
            let mut fields = match self.stats_value() {
                Value::Object(f) => f,
                _ => unreachable!("stats_value returns an object"),
            };
            fields.push(("clean_shutdown".to_owned(), Value::Bool(clean)));
            let json = serde_json::to_string_pretty(&Value::Object(fields))
                .expect("stats serialization is infallible");
            if let Err(e) = std::fs::write(path, json + "\n") {
                eprintln!("localwm-serve: writing {path}: {e}");
            }
        }
    }
}

impl Drop for Shared {
    /// Last-resort metrics flush: if the server went down without a drain
    /// (a panic or fault tore the normal shutdown path), the snapshot is
    /// still written — marked `"clean_shutdown": false` — so chaos runs
    /// always produce their `--metrics-out` file.
    fn drop(&mut self) {
        if !self.metrics_dumped.swap(true, Ordering::SeqCst) {
            self.dump_metrics(false);
        }
    }
}

/// A running server; dropping the handle does **not** stop it — call
/// [`ServerHandle::join`] (wait for a `shutdown` request) or
/// [`ServerHandle::shutdown`].
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (with the actual port when `:0` was requested).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Blocks until the server stops (a `shutdown` request arrives or
    /// [`ServerHandle::shutdown`] is called from another thread).
    pub fn join(self) {
        for t in self.threads {
            let _ = t.join();
        }
    }

    /// Programmatic graceful shutdown: drains queued and in-flight work,
    /// dumps metrics, stops every thread, and waits for them.
    pub fn shutdown(self) {
        drain(&self.shared);
        stop(&self.shared);
        self.join();
    }

    /// Hard stop **without** draining: in-flight work finishes, but nothing
    /// queued is waited on and a *partial* metrics snapshot
    /// (`"clean_shutdown": false`) is flushed immediately. This is the
    /// escape hatch chaos runs use when an injected fault ate the normal
    /// `shutdown` acknowledgement.
    pub fn abort(self) {
        stop(&self.shared);
        if !self.shared.metrics_dumped.swap(true, Ordering::SeqCst) {
            self.shared.dump_metrics(false);
        }
        self.join();
    }

    /// Every fault that fired so far (empty when no fault plan is
    /// installed or the crate was built without `fault-inject`).
    pub fn fault_trace(&self) -> Vec<FiredFault> {
        self.shared
            .injector
            .as_ref()
            .map(|i| i.trace())
            .unwrap_or_default()
    }
}

/// Starts a server; returns once the listener is bound and all threads run.
///
/// # Errors
///
/// Propagates listener bind errors.
pub fn start(cfg: ServeConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let workers = cfg.workers.max(1);
    #[cfg(feature = "fault-inject")]
    let injector = cfg
        .fault_plan
        .as_ref()
        .map(|p| Arc::new(FaultInjector::from_plan(p)));
    #[cfg(not(feature = "fault-inject"))]
    let injector: Option<Arc<FaultInjector>> = {
        if cfg.fault_plan.is_some() {
            eprintln!(
                "localwm-serve: fault plan ignored (built without the `fault-inject` feature)"
            );
        }
        None
    };
    let store = match &cfg.store_dir {
        Some(dir) => Some(Arc::new(DesignStore::open(dir).map_err(|e| {
            io::Error::new(e.kind(), format!("opening design store at {dir}: {e}"))
        })?)),
        None => None,
    };
    let cache = match &store {
        Some(s) => ContextCache::with_store(cfg.cache_cap, Arc::clone(s)),
        None => ContextCache::new(cfg.cache_cap),
    };
    let shared = Arc::new(Shared {
        queue: BoundedQueue::new(cfg.queue_depth),
        cache,
        store,
        metrics: Metrics::new(),
        pending: Mutex::new(Vec::new()),
        inflight: (0..INFLIGHT_SHARDS)
            .map(|_| Mutex::new(HashMap::new()))
            .collect(),
        sessions: Mutex::new(HashMap::new()),
        sessions_opened: AtomicU64::new(0),
        sessions_closed: AtomicU64::new(0),
        sessions_expired: AtomicU64::new(0),
        shutting_down: AtomicBool::new(false),
        stopped: AtomicBool::new(false),
        conns: Mutex::new(HashMap::new()),
        next_conn_id: AtomicU64::new(0),
        metrics_dumped: AtomicBool::new(false),
        jobs_submitted: AtomicU64::new(0),
        jobs_completed: AtomicU64::new(0),
        coalesced: AtomicU64::new(0),
        executed: AtomicU64::new(0),
        panics: AtomicU64::new(0),
        busy_workers: AtomicU64::new(0),
        json_conns: AtomicU64::new(0),
        binary_conns: AtomicU64::new(0),
        json_requests: AtomicU64::new(0),
        binary_requests: AtomicU64::new(0),
        workers,
        engine_par: Parallelism::from_env(),
        injector,
        cfg,
    });

    let mut threads = Vec::with_capacity(workers + 2);
    for i in 0..workers {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name(format!("localwm-worker-{i}"))
                .spawn(move || worker_loop(&shared))
                .expect("spawn worker"),
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("localwm-watchdog".to_owned())
                .spawn(move || watchdog_loop(&shared))
                .expect("spawn watchdog"),
        );
    }
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("localwm-acceptor".to_owned())
                .spawn(move || acceptor_loop(&shared, &listener))
                .expect("spawn acceptor"),
        );
    }
    Ok(ServerHandle {
        addr,
        shared,
        threads,
    })
}

fn acceptor_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    while !shared.stopped.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                // Reader threads are detached: they exit on client
                // disconnect, and never hold work the drain waits on.
                let _ = std::thread::Builder::new()
                    .name("localwm-conn".to_owned())
                    .spawn(move || conn_loop(&shared, stream));
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn conn_loop(shared: &Arc<Shared>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    // Register a handle to the socket so `stop` can close it out from
    // under the blocking read below; deregister on the way out so the
    // table only ever holds live connections.
    let conn_id = shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
    match stream.try_clone() {
        Ok(clone) => {
            let mut conns = shared.conns.lock().expect("conns lock");
            if shared.stopped.load(Ordering::SeqCst) {
                let _ = stream.shutdown(Shutdown::Both);
                return;
            }
            conns.insert(conn_id, clone);
        }
        Err(_) => return,
    }
    // Encoding negotiation: a first line equal to the magic switches this
    // connection to length-prefixed binary frames; anything else is the
    // first JSON request and the connection stays on JSON lines.
    let mut reader = io::BufReader::new(read_half);
    let mut first_line = String::new();
    let binary = match io::BufRead::read_line(&mut reader, &mut first_line) {
        Ok(n) if n > 0 => first_line.trim() == BINARY_MAGIC,
        _ => {
            shared.conns.lock().expect("conns lock").remove(&conn_id);
            return;
        }
    };
    let conn = Arc::new(Conn::new(
        stream,
        shared.injector.clone(),
        binary,
        shared.cfg.pipeline_window as u64,
    ));
    if binary {
        shared.binary_conns.fetch_add(1, Ordering::SeqCst);
        binary_conn_loop(shared, &conn, &mut reader);
    } else {
        shared.json_conns.fetch_add(1, Ordering::SeqCst);
        if handle_json_line(shared, &conn, &first_line) {
            // One recycled line buffer for the whole connection: cleared
            // per request, never freed, so a warm conn reads without
            // allocating.
            let mut line = String::new();
            loop {
                line.clear();
                match io::BufRead::read_line(&mut reader, &mut line) {
                    Ok(0) | Err(_) => break,
                    Ok(_) => {
                        if !handle_json_line(shared, &conn, &line) {
                            break;
                        }
                    }
                }
            }
        }
    }
    shared.conns.lock().expect("conns lock").remove(&conn_id);
}

/// Handles one JSON wire line; returns `false` once the connection should
/// close (injected read fault or server stop).
fn handle_json_line(shared: &Arc<Shared>, conn: &Arc<Conn>, line: &str) -> bool {
    if line.trim().is_empty() {
        return true;
    }
    if let Some(inj) = &shared.injector {
        if matches!(
            inj.check(InjectionPoint::SockRead),
            Some(FaultAction::DropConnection)
        ) {
            // Simulated read error: the request just read is lost and
            // the connection dies before it is processed.
            let s = conn.stream.lock().expect("conn lock");
            let _ = s.shutdown(Shutdown::Both);
            return false;
        }
    }
    shared.json_requests.fetch_add(1, Ordering::SeqCst);
    // Window backpressure: with `pipeline_window` requests in flight the
    // reader parks here instead of reading further ahead.
    let Some(seq) = conn.assign_seq(&shared.stopped) else {
        return false;
    };
    match Request::from_line(line.trim_end_matches(['\r', '\n'])) {
        Err(msg) => conn.send(
            seq,
            &Response::failure(
                None,
                "invalid",
                ServiceError::new(ErrorCode::BadRequest, msg),
            ),
        ),
        Ok(req) => dispatch(shared, conn, req, seq),
    }
    !shared.stopped.load(Ordering::SeqCst)
}

/// The binary-protocol request loop: length-prefixed checksummed frames in,
/// frames out. A frame that decodes to a non-request shape gets a typed
/// `bad_request` answer; a frame failing its checksum gets the same answer
/// and then the connection closes, because stream framing cannot be
/// trusted past a corrupt length prefix.
fn binary_conn_loop(shared: &Arc<Shared>, conn: &Arc<Conn>, reader: &mut io::BufReader<TcpStream>) {
    // One recycled frame buffer for the whole connection.
    let mut body = Vec::new();
    loop {
        match read_frame_into(reader, &mut body) {
            Ok(()) => {}
            // EOF at a frame boundary (or a torn tail from a dying peer):
            // nobody is left to answer.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => {
                if let Some(seq) = conn.assign_seq(&shared.stopped) {
                    conn.send(
                        seq,
                        &Response::failure(
                            None,
                            "invalid",
                            ServiceError::new(
                                ErrorCode::BadRequest,
                                format!("undecodable frame: {e}"),
                            ),
                        ),
                    );
                }
                break;
            }
        }
        if let Some(inj) = &shared.injector {
            if matches!(
                inj.check(InjectionPoint::SockRead),
                Some(FaultAction::DropConnection)
            ) {
                let s = conn.stream.lock().expect("conn lock");
                let _ = s.shutdown(Shutdown::Both);
                break;
            }
        }
        shared.binary_requests.fetch_add(1, Ordering::SeqCst);
        let Some(seq) = conn.assign_seq(&shared.stopped) else {
            break;
        };
        match Request::from_frame(&body) {
            Err(msg) => conn.send(
                seq,
                &Response::failure(
                    None,
                    "invalid",
                    ServiceError::new(ErrorCode::BadRequest, msg),
                ),
            ),
            Ok(req) => dispatch(shared, conn, req, seq),
        }
        if shared.stopped.load(Ordering::SeqCst) {
            break;
        }
    }
}

fn dispatch(shared: &Arc<Shared>, conn: &Arc<Conn>, req: Request, seq: u64) {
    let started = Instant::now();
    match req.kind {
        // Answered inline so they work even when the queue is full.
        RequestKind::Stats => {
            let resp = Response::success(req.id, "stats", shared.stats_value());
            shared
                .metrics
                .record(RequestKind::Stats, started.elapsed(), Outcome::Ok);
            conn.send(seq, &resp);
        }
        // A plain backend cannot answer cluster-wide questions; the typed
        // error keeps the response shape predictable for misdirected
        // clients (the gateway answers this kind itself).
        RequestKind::ClusterStats => {
            let resp = Response::failure(
                req.id,
                "cluster_stats",
                ServiceError::new(
                    ErrorCode::BadRequest,
                    "cluster_stats is answered by localwm-gateway, not a single backend",
                ),
            );
            shared
                .metrics
                .record(RequestKind::ClusterStats, started.elapsed(), Outcome::Error);
            conn.send(seq, &resp);
        }
        RequestKind::Shutdown => {
            let drained = drain(shared);
            let body = Value::Object(vec![
                ("drained_jobs".to_owned(), drained.to_value()),
                (
                    "uptime_ms".to_owned(),
                    shared.metrics.uptime_ms().to_value(),
                ),
            ]);
            shared
                .metrics
                .record(RequestKind::Shutdown, started.elapsed(), Outcome::Ok);
            // Acknowledge before stopping the threads, so the response is on
            // the wire before the process is free to exit.
            conn.send(seq, &Response::success(req.id, "shutdown", body));
            stop(shared);
        }
        kind => {
            if shared.shutting_down.load(Ordering::SeqCst) {
                conn.send(
                    seq,
                    &Response::failure(
                        req.id,
                        kind.as_str(),
                        ServiceError::new(ErrorCode::ShuttingDown, "server is draining"),
                    ),
                );
                return;
            }
            // Session requests run inline on this connection thread: strict
            // per-connection ordering (a mutate never races its follow-up
            // query), naturally excluded from coalescing and the queue, but
            // counted in the submitted/completed pair so drain waits for
            // them.
            if matches!(
                kind,
                RequestKind::Open | RequestKind::Mutate | RequestKind::Close
            ) || req.session.is_some()
            {
                handle_session(shared, conn, &req, started, seq);
                return;
            }
            let timeout = req.timeout_ms.or(shared.cfg.default_timeout_ms);
            let state = Arc::new(JobState {
                id: req.id,
                kind,
                seq,
                deadline: timeout.map(|ms| started + Duration::from_millis(ms)),
                responded: AtomicBool::new(false),
                started,
            });
            if state.deadline.is_some() {
                shared.pending.lock().expect("pending lock").push(Pending {
                    state: Arc::clone(&state),
                    conn: Arc::clone(conn),
                });
            }
            // Single-flight: an identical in-flight analyze/timing request
            // attaches to the leader's computation instead of queueing.
            // The leader's entry is registered here at dispatch time, so
            // requests coalesce even while the leader is still queued.
            let key = coalescing_key(&req);
            if let Some(k) = key {
                let mut inflight = shared.inflight_shard(k).lock().expect("inflight lock");
                if let Some(waiters) = inflight.get_mut(&k) {
                    waiters.push(Waiter {
                        state,
                        conn: Arc::clone(conn),
                    });
                    shared.coalesced.fetch_add(1, Ordering::SeqCst);
                    // Counted as submitted; the leader's worker counts the
                    // completion when it fans the response out, so drain
                    // still waits for every waiter to be answered.
                    shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                inflight.insert(k, Vec::new());
            }
            shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
            let job = Job {
                req,
                conn: Arc::clone(conn),
                state,
                key,
            };
            // Injected queue-full burst: indistinguishable on the wire from
            // a genuine capacity rejection.
            let pushed = match &shared.injector {
                Some(inj)
                    if matches!(
                        inj.check(InjectionPoint::QueuePush),
                        Some(FaultAction::RejectFull)
                    ) =>
                {
                    Err((job, PushError::Full))
                }
                _ => shared.queue.try_push(job),
            };
            if let Err((job, why)) = pushed {
                let err = match why {
                    PushError::Full => ServiceError::new(
                        ErrorCode::Overloaded,
                        "job queue is full; retry with backoff",
                    )
                    .with_detail("queue_capacity", shared.queue.capacity().to_value()),
                    PushError::Closed => {
                        ServiceError::new(ErrorCode::ShuttingDown, "server is draining")
                    }
                };
                // The flight never took off: clear its entry and fail any
                // waiters that raced in between registration and the push.
                let waiters = job
                    .key
                    .and_then(|k| {
                        shared
                            .inflight_shard(k)
                            .lock()
                            .expect("inflight lock")
                            .remove(&k)
                    })
                    .unwrap_or_default();
                for w in waiters {
                    let resp = Response::failure(w.state.id, kind.as_str(), err.clone());
                    shared.respond_once(&w.state, &w.conn, &resp, Outcome::Error);
                    shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
                }
                let resp = Response::failure(job.state.id, kind.as_str(), err);
                shared.respond_once(&job.state, &job.conn, &resp, Outcome::Error);
                shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
}

/// Executes one session request inline and answers it. No deadline is
/// armed: session work is strictly ordered per connection, and a watchdog
/// answer racing an in-place mutation could tear the session's view of
/// which edits were applied.
fn handle_session(
    shared: &Arc<Shared>,
    conn: &Arc<Conn>,
    req: &Request,
    started: Instant,
    seq: u64,
) {
    let state = Arc::new(JobState {
        id: req.id,
        kind: req.kind,
        seq,
        deadline: None,
        responded: AtomicBool::new(false),
        started,
    });
    shared.jobs_submitted.fetch_add(1, Ordering::SeqCst);
    shared.executed.fetch_add(1, Ordering::SeqCst);
    let result =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_session(shared, req)));
    let resp = match result {
        Ok(Ok(body)) => Response::success(req.id, req.kind.as_str(), body),
        Ok(Err(e)) => Response::failure(req.id, req.kind.as_str(), e),
        Err(panic) => {
            shared.panics.fetch_add(1, Ordering::SeqCst);
            let msg = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".to_owned());
            Response::failure(
                req.id,
                req.kind.as_str(),
                ServiceError::new(
                    ErrorCode::Internal,
                    format!("session handler panicked: {msg}"),
                ),
            )
        }
    };
    let outcome = if resp.ok { Outcome::Ok } else { Outcome::Error };
    shared.respond_once(&state, conn, &resp, outcome);
    shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
}

fn session_expired(sid: &str) -> ServiceError {
    ServiceError::new(
        ErrorCode::SessionExpired,
        format!("session `{sid}` is not open on this backend (never opened, idle-evicted, or closed); re-open and replay"),
    )
}

fn run_session(shared: &Arc<Shared>, req: &Request) -> Result<Value, ServiceError> {
    let sid = req
        .session
        .as_deref()
        .ok_or_else(|| ServiceError::new(ErrorCode::BadRequest, "missing `session` id"))?;
    let lookup = |sid: &str| -> Result<Arc<SessionEntry>, ServiceError> {
        shared
            .sessions
            .lock()
            .expect("sessions lock")
            .get(sid)
            .cloned()
            .ok_or_else(|| session_expired(sid))
    };
    match req.kind {
        RequestKind::Open => {
            let design = req.design.as_deref().ok_or_else(|| {
                ServiceError::new(ErrorCode::BadRequest, "missing `design` (CDFG text)")
            })?;
            let state = crate::session::SessionState::open(design)?;
            let body = state.describe(sid);
            let mut table = shared.sessions.lock().expect("sessions lock");
            if table.len() >= SESSION_CAP && !table.contains_key(sid) {
                return Err(ServiceError::new(
                    ErrorCode::Overloaded,
                    "session table is full; close a session and retry",
                )
                .with_detail("session_cap", SESSION_CAP.to_value()));
            }
            // Re-opening an id replaces the held design (deterministic:
            // last open wins).
            table.insert(
                sid.to_owned(),
                Arc::new(SessionEntry {
                    state: Mutex::new((state, Instant::now())),
                }),
            );
            shared.sessions_opened.fetch_add(1, Ordering::SeqCst);
            Ok(body)
        }
        RequestKind::Close => {
            let entry = shared
                .sessions
                .lock()
                .expect("sessions lock")
                .remove(sid)
                .ok_or_else(|| session_expired(sid))?;
            shared.sessions_closed.fetch_add(1, Ordering::SeqCst);
            let entry = Arc::try_unwrap(entry).map_err(|_| {
                ServiceError::new(
                    ErrorCode::Internal,
                    "session is still executing a request on another connection",
                )
            })?;
            let (state, _) = entry.state.into_inner().expect("session lock");
            Ok(state.close(sid))
        }
        RequestKind::Mutate => {
            let edits = req.edits.as_deref().ok_or_else(|| {
                ServiceError::new(ErrorCode::BadRequest, "missing `edits` (edit script)")
            })?;
            let entry = lookup(sid)?;
            let mut guard = entry.state.lock().expect("session lock");
            guard.1 = Instant::now();
            guard.0.mutate(sid, edits)
        }
        RequestKind::Timing => {
            let entry = lookup(sid)?;
            let mut guard = entry.state.lock().expect("session lock");
            guard.1 = Instant::now();
            guard.0.timing(req)
        }
        RequestKind::Analyze => {
            let entry = lookup(sid)?;
            let mut guard = entry.state.lock().expect("session lock");
            guard.1 = Instant::now();
            guard.0.analyze(req, shared.engine_par)
        }
        other => Err(ServiceError::new(
            ErrorCode::BadRequest,
            format!(
                "`{other}` does not accept a `session` (only open/mutate/close/timing/analyze)"
            ),
        )),
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = shared.queue.pop() {
        if let Some(inj) = &shared.injector {
            if let Some(FaultAction::StallMs(ms)) = inj.check(InjectionPoint::WorkerStall) {
                std::thread::sleep(Duration::from_millis(ms));
            }
            if matches!(
                inj.check(InjectionPoint::CacheEvict),
                Some(FaultAction::EvictAll)
            ) {
                shared.cache.evict_all();
            }
        }
        // Execute unless the job is already moot: the leader was answered
        // (watchdog timeout) *and* no waiter needs the result. The decision
        // and the skip-path entry removal happen under the inflight lock,
        // so a waiter can never attach to an entry that is being abandoned.
        let run = match job.key {
            Some(k) => {
                let mut inflight = shared.inflight_shard(k).lock().expect("inflight lock");
                let has_waiters = inflight.get(&k).is_some_and(|w| !w.is_empty());
                if !job.state.responded.load(Ordering::SeqCst) || has_waiters {
                    true
                } else {
                    inflight.remove(&k);
                    false
                }
            }
            None => !job.state.responded.load(Ordering::SeqCst),
        };
        if run {
            // A panicking handler must not kill the worker or leave the
            // request unanswered: contain it, answer with a typed internal
            // error, and count it.
            shared.busy_workers.fetch_add(1, Ordering::SeqCst);
            shared.executed.fetch_add(1, Ordering::SeqCst);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                handlers::execute_with(&shared.cache, &job.req, shared.engine_par)
            }));
            shared.busy_workers.fetch_sub(1, Ordering::SeqCst);
            let resp = match outcome {
                Ok(Ok(body)) => Response::success(job.state.id, job.state.kind.as_str(), body),
                Ok(Err(e)) => Response::failure(job.state.id, job.state.kind.as_str(), e),
                Err(panic) => {
                    shared.panics.fetch_add(1, Ordering::SeqCst);
                    let msg = panic
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_owned())
                        .or_else(|| panic.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "opaque panic payload".to_owned());
                    Response::failure(
                        job.state.id,
                        job.state.kind.as_str(),
                        ServiceError::new(ErrorCode::Internal, format!("handler panicked: {msg}")),
                    )
                }
            };
            let outcome = if resp.ok { Outcome::Ok } else { Outcome::Error };
            // Retire the flight *before* responding, so identical requests
            // arriving from here on start a fresh computation instead of
            // attaching to a finished one.
            let waiters = job
                .key
                .and_then(|k| {
                    shared
                        .inflight_shard(k)
                        .lock()
                        .expect("inflight lock")
                        .remove(&k)
                })
                .unwrap_or_default();
            shared.respond_once(&job.state, &job.conn, &resp, outcome);
            for w in waiters {
                // Same response bytes, re-stamped with the waiter's id.
                let mut r = resp.clone();
                r.id = w.state.id;
                shared.respond_once(&w.state, &w.conn, &r, outcome);
                shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
            }
        }
        shared.jobs_completed.fetch_add(1, Ordering::SeqCst);
    }
}

fn watchdog_loop(shared: &Arc<Shared>) {
    while !shared.stopped.load(Ordering::SeqCst) {
        {
            let mut pending = shared.pending.lock().expect("pending lock");
            let now = Instant::now();
            pending.retain(|p| {
                if p.state.responded.load(Ordering::SeqCst) {
                    return false;
                }
                match p.state.deadline {
                    Some(d) if now >= d => {
                        let resp = Response::failure(
                            p.state.id,
                            p.state.kind.as_str(),
                            ServiceError::new(
                                ErrorCode::DeadlineExceeded,
                                "request deadline elapsed before completion",
                            ),
                        );
                        shared.respond_once(&p.state, &p.conn, &resp, Outcome::Timeout);
                        false
                    }
                    _ => true,
                }
            });
        }
        // Idle-session sweep: evict sessions untouched for longer than the
        // configured idle window. `try_lock` skips entries mid-request —
        // an active session is by definition not idle.
        if let Some(idle_ms) = shared.cfg.session_idle_ms {
            let idle = Duration::from_millis(idle_ms);
            let mut sessions = shared.sessions.lock().expect("sessions lock");
            let before = sessions.len();
            sessions.retain(|_, entry| match entry.state.try_lock() {
                Ok(guard) => guard.1.elapsed() < idle,
                Err(_) => true,
            });
            let evicted = (before - sessions.len()) as u64;
            if evicted > 0 {
                shared.sessions_expired.fetch_add(evicted, Ordering::SeqCst);
            }
        }
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Flips the draining flag and waits for every submitted job to complete,
/// then dumps metrics (once). Returns the number of jobs that had been
/// accepted when the drain finished. Idempotent: concurrent callers all
/// wait on the same completion counters — new work is already refused.
fn drain(shared: &Arc<Shared>) -> u64 {
    shared.shutting_down.store(true, Ordering::SeqCst);
    // Drain: every accepted job (queued or in-flight) must be answered.
    loop {
        let submitted = shared.jobs_submitted.load(Ordering::SeqCst);
        let completed = shared.jobs_completed.load(Ordering::SeqCst);
        if completed >= submitted {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    // Sessions do not survive a drain: close them all (their in-flight
    // requests completed above) so held designs are released and a
    // restarted client starts from a clean, typed `session_expired`.
    {
        let mut sessions = shared.sessions.lock().expect("sessions lock");
        let n = sessions.len() as u64;
        sessions.clear();
        if n > 0 {
            shared.sessions_closed.fetch_add(n, Ordering::SeqCst);
        }
    }
    if !shared.metrics_dumped.swap(true, Ordering::SeqCst) {
        shared.dump_metrics(true);
    }
    shared.jobs_completed.load(Ordering::SeqCst)
}

/// Stops the acceptor, watchdog, and (via queue closure) the workers, and
/// closes every live client socket. Closing the sockets makes the stop
/// *externally deterministic*: peers (and connection pools holding kept-
/// alive sockets to this server) see EOF as soon as the stop lands, instead
/// of racing against detached reader threads that might still answer for a
/// scheduling-dependent moment.
fn stop(shared: &Arc<Shared>) {
    shared.stopped.store(true, Ordering::SeqCst);
    shared.queue.close();
    let conns = shared.conns.lock().expect("conns lock");
    for stream in conns.values() {
        let _ = stream.shutdown(Shutdown::Both);
    }
}
