//! Interactive design sessions: a held, incrementally re-analyzed design.
//!
//! `open` parses a design once into a [`DesignContext`]; `mutate` applies
//! an *edit script* through the context's recording editor so derived
//! analyses are dirty-cone patched instead of recomputed; `timing` and
//! `analyze` requests carrying the session id answer from the held state.
//! The contract is strict: a session's `timing`/`analyze` response is
//! **byte-identical** to re-sending the session's current design text as a
//! from-scratch request — incrementality changes the cost, never the
//! answer. The differential oracle in `localwm-testkit` replays every edit
//! trace both ways and asserts exactly that, typed errors included.
//!
//! # Edit-script grammar
//!
//! One edit per line; blank lines and `#` comments are skipped:
//!
//! ```text
//! add-node <name> <kind>            # kind is an OpKind mnemonic (add, mul, …)
//! set-literal <name> <value>
//! add-edge <data|ctrl|temp> <src> <dst>
//! remove-edge <data|ctrl|temp> <src> <dst>
//! ```
//!
//! Scripts apply transactionally *per line*: the first failing line stops
//! the script with a typed `bad_request` carrying the offending line and an
//! `applied` count; earlier lines stay applied (the response's `applied`
//! field tells the client exactly how far it got).

use localwm_cdfg::{parse_cdfg, EdgeKind, NodeId, OpKind};
use localwm_engine::{DesignContext, DesignEditor, Parallelism};
use localwm_timing::CriticalityCache;
use serde::{object, Serialize, Value};

use crate::handlers::{self, bad_request, HandlerResult};
use crate::protocol::{Request, ServiceError};

/// One held session: the design context plus the incremental Monte-Carlo
/// state, both surviving across mutations.
pub struct SessionState {
    ctx: DesignContext,
    crit: CriticalityCache,
    mutations: u64,
}

impl SessionState {
    /// Opens a session by parsing the design text.
    ///
    /// # Errors
    ///
    /// Typed `bad_request` for unparseable designs.
    pub fn open(design: &str) -> Result<SessionState, ServiceError> {
        let g = parse_cdfg(design).map_err(|e| bad_request(format!("bad design: {e}")))?;
        Ok(SessionState {
            ctx: DesignContext::new(g),
            crit: CriticalityCache::new(),
            mutations: 0,
        })
    }

    /// The `open` response body: `{session, nodes, edges}`.
    pub fn describe(&self, session: &str) -> Value {
        object(vec![
            ("session", session.to_value()),
            ("nodes", self.ctx.graph().node_count().to_value()),
            ("edges", self.ctx.graph().edge_count().to_value()),
        ])
    }

    /// The `close` response body: `{session, mutations}`.
    pub fn close(self, session: &str) -> Value {
        object(vec![
            ("session", session.to_value()),
            ("mutations", self.mutations.to_value()),
        ])
    }

    /// Applies an edit script; returns `{session, applied, nodes, edges}`.
    ///
    /// # Errors
    ///
    /// Typed `bad_request` naming the first failing line, with an
    /// `applied` detail for the retained prefix.
    pub fn mutate(&mut self, session: &str, edits: &str) -> HandlerResult {
        self.mutations += 1;
        let outcome = self.ctx.mutate(|ed| apply_script(ed, edits));
        let applied = match outcome {
            Ok(n) => n,
            Err((n, e)) => {
                return Err(e.with_detail("applied", n.to_value()));
            }
        };
        Ok(object(vec![
            ("session", session.to_value()),
            ("applied", applied.to_value()),
            ("nodes", self.ctx.graph().node_count().to_value()),
            ("edges", self.ctx.graph().edge_count().to_value()),
        ]))
    }

    /// Answers a `timing` request from the held context.
    ///
    /// # Errors
    ///
    /// Same as the from-scratch `timing` handler.
    pub fn timing(&self, req: &Request) -> HandlerResult {
        handlers::timing_body(&self.ctx, req)
    }

    /// Answers an `analyze` request from the held context, reusing the
    /// incremental criticality capture across mutations.
    ///
    /// # Errors
    ///
    /// Same as the from-scratch `analyze` handler.
    pub fn analyze(&mut self, req: &Request, par: Parallelism) -> HandlerResult {
        let model = handlers::bounds(req)?;
        let samples = req.samples.unwrap_or(100);
        let seed = req.seed.unwrap_or(0);
        let report = self
            .crit
            .criticality_in(&self.ctx, &model, samples, seed, par);
        handlers::analyze_body(&self.ctx, req, &report)
    }

    /// The held design's current node count (for stats/tests).
    pub fn node_count(&self) -> usize {
        self.ctx.graph().node_count()
    }

    /// Mutations applied so far.
    pub fn mutations(&self) -> u64 {
        self.mutations
    }
}

/// Applies every line of the script; `Err((applied, error))` stops at the
/// first failing line with the count of lines already applied.
fn apply_script(ed: &mut DesignEditor, edits: &str) -> Result<usize, (usize, ServiceError)> {
    let mut applied = 0usize;
    for (ln, raw) in edits.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        apply_line(ed, line)
            .map_err(|msg| (applied, bad_request(format!("edit line {}: {msg}", ln + 1))))?;
        applied += 1;
    }
    Ok(applied)
}

fn edge_kind(tok: &str) -> Result<EdgeKind, String> {
    match tok {
        "data" => Ok(EdgeKind::Data),
        "ctrl" => Ok(EdgeKind::Control),
        "temp" => Ok(EdgeKind::Temporal),
        other => Err(format!("unknown edge kind `{other}` (data|ctrl|temp)")),
    }
}

fn node_ref(ed: &DesignEditor, name: &str) -> Result<NodeId, String> {
    ed.node_by_name(name)
        .ok_or_else(|| format!("unknown node `{name}`"))
}

fn apply_line(ed: &mut DesignEditor, line: &str) -> Result<(), String> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    match toks.as_slice() {
        ["add-node", name, kind] => {
            let kind: OpKind = kind.parse().map_err(|e| format!("{e}"))?;
            ed.try_add_named_node(kind, *name)
                .map_err(|e| e.to_string())?;
            Ok(())
        }
        ["set-literal", name, value] => {
            let id = node_ref(ed, name)?;
            let value: i64 = value
                .parse()
                .map_err(|_| format!("bad literal value `{value}`"))?;
            ed.set_literal(id, value);
            Ok(())
        }
        ["add-edge", kind, src, dst] => {
            let kind = edge_kind(kind)?;
            let s = node_ref(ed, src)?;
            let d = node_ref(ed, dst)?;
            ed.add_edge_acyclic(kind, s, d).map_err(|e| e.to_string())?;
            Ok(())
        }
        ["remove-edge", kind_tok, src, dst] => {
            let kind = edge_kind(kind_tok)?;
            let s = node_ref(ed, src)?;
            let d = node_ref(ed, dst)?;
            let id = ed
                .edge_ids()
                .find(|&e| {
                    ed.edge(e)
                        .is_some_and(|x| x.kind() == kind && x.src() == s && x.dst() == d)
                })
                .ok_or_else(|| format!("no live {kind_tok} edge {src} -> {dst}"))?;
            ed.remove_edge(id).map_err(|e| e.to_string())?;
            Ok(())
        }
        _ => Err(format!(
            "unrecognized edit `{line}` (add-node|set-literal|add-edge|remove-edge)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ContextCache;
    use crate::protocol::{ErrorCode, RequestKind};
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::write_cdfg;

    fn open_iir4() -> SessionState {
        SessionState::open(&write_cdfg(&iir4_parallel())).expect("valid design")
    }

    #[test]
    fn open_mutate_close_bodies_are_deterministic() {
        let mut s = open_iir4();
        let d = s.describe("s-1");
        assert_eq!(d.field("session"), Some(&Value::Str("s-1".to_owned())));
        let nodes0 = s.node_count();
        let body = s
            .mutate("s-1", "add-node t9 not\nadd-edge data A9 t9\n")
            .expect("valid script");
        assert_eq!(body.field("applied"), Some(&Value::Int(2)));
        assert_eq!(s.node_count(), nodes0 + 1);
        let closed = s.close("s-1");
        assert_eq!(closed.field("mutations"), Some(&Value::Int(1)));
    }

    #[test]
    fn session_analysis_matches_from_scratch_byte_for_byte() {
        let mut s = open_iir4();
        // Ends in a state the text format can round-trip (data-edge arity
        // is validated by the parser), while still exercising node
        // addition, edge addition, and edge removal.
        s.mutate(
            "s",
            "add-node t9 not\nadd-edge data A9 t9\nadd-edge temp A2 A6\nremove-edge temp A2 A6\nadd-edge temp A1 A5\n",
        )
        .expect("valid script");

        // Re-derive the session's current design text and ask the stock
        // handlers: both paths must produce identical result objects.
        let current = write_cdfg_current(&s);
        let cache = ContextCache::new(2);
        for kind in [RequestKind::Timing, RequestKind::Analyze] {
            let mut req = Request::new(kind);
            req.design = Some(current.clone());
            req.samples = Some(64);
            req.seed = Some(7);
            let scratch = handlers::execute(&cache, &req).expect("scratch path");
            let held = match kind {
                RequestKind::Timing => s.timing(&req).expect("session timing"),
                _ => s
                    .analyze(&req, Parallelism::Serial)
                    .expect("session analyze"),
            };
            assert_eq!(
                serde_json::to_string(&held).unwrap(),
                serde_json::to_string(&scratch).unwrap(),
                "{kind} diverged between session and scratch"
            );
        }
    }

    fn write_cdfg_current(s: &SessionState) -> String {
        localwm_cdfg::write_cdfg(s.ctx.graph())
    }

    #[test]
    fn failing_line_reports_position_and_retained_prefix() {
        let mut s = open_iir4();
        let nodes0 = s.node_count();
        let err = s
            .mutate("s", "add-node ok1 not\nadd-edge data nope ok1\n")
            .expect_err("unknown node must fail");
        assert_eq!(err.code, ErrorCode::BadRequest);
        assert!(err.message.contains("edit line 2"), "{}", err.message);
        assert_eq!(
            err.details.iter().find(|(k, _)| k == "applied"),
            Some(&("applied".to_owned(), Value::Int(1)))
        );
        // The prefix stayed applied.
        assert_eq!(s.node_count(), nodes0 + 1);
    }

    #[test]
    fn cycles_and_duplicates_are_typed_errors() {
        let mut s = open_iir4();
        let err = s
            .mutate("s", "add-edge temp A9 A1\n")
            .expect_err("back edge must cycle");
        assert_eq!(err.code, ErrorCode::BadRequest);
        let err = s
            .mutate("s", "add-node A9 not\n")
            .expect_err("duplicate name");
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let mut s = open_iir4();
        let body = s
            .mutate("s", "# nothing\n\n  \nadd-node t1 not\n")
            .expect("valid");
        assert_eq!(body.field("applied"), Some(&Value::Int(1)));
    }
}
