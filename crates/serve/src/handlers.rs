//! Request execution: pure functions from a request (plus the shared
//! context cache) to a result object or a typed [`ServiceError`].
//!
//! Handlers run on worker threads with [`Parallelism::Serial`] — the
//! service's concurrency comes from the worker pool, not from nested
//! fan-out — and every handler is deterministic in its request, so
//! concurrent and serial executions of the same request stream produce
//! byte-identical responses.

use std::sync::Arc;

use localwm_attack::{AttackConfig, AttackKind, StrengthConfig};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature, WatermarkError};
use localwm_engine::{DesignContext, KindBounds, Parallelism};
use localwm_sched::{parse_schedule, write_schedule};
use localwm_timing::criticality_in;
use serde::{object, Serialize, Value};

use crate::cache::ContextCache;
use crate::protocol::{ErrorCode, Request, RequestKind, ServiceError};

pub(crate) type HandlerResult = Result<Value, ServiceError>;

pub(crate) fn bad_request(msg: impl Into<String>) -> ServiceError {
    ServiceError::new(ErrorCode::BadRequest, msg)
}

/// Resolves the request's design text through the shared context cache.
fn design_context(cache: &ContextCache, req: &Request) -> Result<Arc<DesignContext>, ServiceError> {
    let text = req
        .design
        .as_deref()
        .ok_or_else(|| bad_request("missing `design` (CDFG text)"))?;
    cache
        .get_or_parse(text)
        .map_err(|e| bad_request(format!("bad design: {e}")))
}

pub(crate) fn bounds(req: &Request) -> Result<KindBounds, ServiceError> {
    let lo = req.lo.unwrap_or(1);
    let hi = req.hi.unwrap_or(3);
    if lo > hi {
        return Err(bad_request(format!("bad delay bounds: lo {lo} > hi {hi}")));
    }
    Ok(KindBounds::uniform(lo, hi))
}

/// Executes one queued request against the shared cache with
/// [`Parallelism::Serial`] (the service's default — concurrency comes from
/// the worker pool).
///
/// # Errors
///
/// Returns a typed [`ServiceError`]; `stats` and `shutdown` are answered
/// inline by the connection thread and never reach this function.
pub fn execute(cache: &ContextCache, req: &Request) -> HandlerResult {
    execute_with(cache, req, Parallelism::Serial)
}

/// [`execute`] with an explicit [`Parallelism`] for the engine passes.
///
/// Every engine entry point is parallelism-invariant, so any `par` choice
/// produces byte-identical results — the differential oracle in
/// `localwm-testkit` runs request streams through `Serial` and `Threads(n)`
/// lanes and asserts exactly that.
///
/// # Errors
///
/// Same as [`execute`].
pub fn execute_with(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    match req.kind {
        RequestKind::Embed => embed(cache, req, par),
        RequestKind::Detect => detect(cache, req, par),
        RequestKind::Analyze => analyze(cache, req, par),
        RequestKind::Timing => timing(cache, req),
        RequestKind::Stats | RequestKind::Shutdown | RequestKind::ClusterStats => Err(
            ServiceError::new(ErrorCode::Internal, "stats/shutdown are handled inline"),
        ),
        RequestKind::Open | RequestKind::Mutate | RequestKind::Close => Err(ServiceError::new(
            ErrorCode::Internal,
            "session requests are handled inline by the connection thread",
        )),
        RequestKind::Attack => attack(cache, req, par),
        RequestKind::Strength => strength(cache, req, par),
    }
}

fn signature(req: &Request) -> Result<Signature, ServiceError> {
    req.author
        .as_deref()
        .map(Signature::from_author)
        .ok_or_else(|| bad_request("missing `author`"))
}

fn wm_config(req: &Request) -> SchedWmConfig {
    let mut config = SchedWmConfig::default();
    if let Some(f) = req.fraction {
        config = SchedWmConfig::with_node_fraction(f);
    }
    if let Some(k) = req.k {
        config.k = k;
    }
    config
}

fn watermarker(req: &Request) -> SchedulingWatermarker {
    SchedulingWatermarker::new(wm_config(req))
}

/// Maps embedding-side watermark failures to typed wire errors; shared by
/// `embed` and the robustness kinds so a serial design produces the same
/// `no_incomparable_pairs` diagnostic everywhere.
fn embed_error(e: WatermarkError) -> ServiceError {
    match e {
        WatermarkError::NoIncomparablePairs {
            domain_size,
            pairs_examined,
        } => ServiceError::new(ErrorCode::NoIncomparablePairs, e.to_string())
            .with_detail("domain_size", domain_size.to_value())
            .with_detail("pairs_examined", pairs_examined.to_value()),
        other => ServiceError::new(ErrorCode::EmbedFailed, other.to_string()),
    }
}

fn embed(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    let sig = signature(req)?;
    let wm = watermarker(req);
    let emb = wm.embed_in(&ctx, &sig, par).map_err(embed_error)?;
    Ok(object(vec![
        ("edges", emb.edges.len().to_value()),
        ("localities", emb.domains.len().to_value()),
        ("schedule_length", emb.schedule.length().to_value()),
        ("available_steps", emb.available_steps.to_value()),
        (
            "schedule",
            write_schedule(ctx.graph(), &emb.schedule).to_value(),
        ),
    ]))
}

fn detect(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    let sig = signature(req)?;
    let text = req
        .schedule
        .as_deref()
        .ok_or_else(|| bad_request("missing `schedule` (schedule text)"))?;
    let schedule =
        parse_schedule(ctx.graph(), text).map_err(|e| bad_request(format!("bad schedule: {e}")))?;
    let wm = watermarker(req);
    let ev = wm
        .detect_in(&schedule, &ctx, &sig, par)
        .map_err(|e| ServiceError::new(ErrorCode::DetectFailed, e.to_string()))?;
    let satisfied = ev.checks.iter().filter(|&&(_, _, ok)| ok).count();
    Ok(object(vec![
        ("match", ev.is_match().to_value()),
        ("satisfied", satisfied.to_value()),
        ("checked", ev.checks.len().to_value()),
        ("log10_pc", ev.log10_pc.to_value()),
    ]))
}

fn timing(cache: &ContextCache, req: &Request) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    timing_body(&ctx, req)
}

/// The `timing` result object for an already-resolved context. Shared by
/// the cached from-scratch path and the session path, so a session's
/// response is byte-identical to re-sending the current design text.
pub(crate) fn timing_body(ctx: &DesignContext, req: &Request) -> HandlerResult {
    let cp = ctx.critical_path();
    let deadline = req.deadline.unwrap_or(cp);
    let w = ctx
        .windows(deadline)
        .map_err(|e| bad_request(e.to_string()))?;
    let g = ctx.graph();
    let zero_mobility = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && w.mobility(n) == 0)
        .count();
    let model = bounds(req)?;
    let interval = ctx.bounded_critical_path(&model);
    let maybe = ctx.possibly_critical_shared(&model);
    Ok(object(vec![
        ("ops", g.op_count().to_value()),
        ("critical_path", cp.to_value()),
        ("deadline", deadline.to_value()),
        ("zero_mobility", zero_mobility.to_value()),
        ("bounded_lo", interval.lo.to_value()),
        ("bounded_hi", interval.hi.to_value()),
        ("possibly_critical", maybe.len().to_value()),
    ]))
}

fn analyze(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    let model = bounds(req)?;
    let samples = req.samples.unwrap_or(100);
    let seed = req.seed.unwrap_or(0);
    let report = criticality_in(&ctx, &model, samples, seed, par);
    analyze_body(&ctx, req, &report)
}

/// The `analyze` result object for an already-resolved context and a
/// precomputed criticality report. The session path feeds this from its
/// incremental [`CriticalityCache`](localwm_timing::CriticalityCache),
/// whose reports are byte-identical to [`criticality_in`] — so the merged
/// body is too.
pub(crate) fn analyze_body(
    ctx: &DesignContext,
    req: &Request,
    report: &localwm_timing::CriticalityReport,
) -> HandlerResult {
    let base = timing_body(ctx, req)?;
    let samples = req.samples.unwrap_or(100);
    let seed = req.seed.unwrap_or(0);
    let g = ctx.graph();
    let mut hot: Vec<(f64, localwm_cdfg::NodeId)> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .map(|n| (report.probability(n), n))
        .collect();
    hot.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
    let top: Vec<Value> = hot
        .iter()
        .take(5)
        .map(|&(p, n)| {
            let name = g
                .node_name(n)
                .map_or_else(|| format!("n{}", n.index()), str::to_owned);
            Value::Array(vec![Value::Str(name), Value::Float(p)])
        })
        .collect();
    let mut fields = match base {
        Value::Object(f) => f,
        _ => unreachable!("timing returns an object"),
    };
    fields.push(("samples".to_owned(), samples.to_value()));
    fields.push(("seed".to_owned(), seed.to_value()));
    fields.push((
        "delay_p50".to_owned(),
        report.delay_quantile(0.5).to_value(),
    ));
    fields.push((
        "delay_p95".to_owned(),
        report.delay_quantile(0.95).to_value(),
    ));
    fields.push(("top_critical".to_owned(), Value::Array(top)));
    Ok(Value::Object(fields))
}

fn attack(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    let sig = signature(req)?;
    let kind_name = req.attack.as_deref().unwrap_or("reschedule");
    let kind = AttackKind::parse(kind_name)
        .ok_or_else(|| bad_request(format!("unknown attack kind `{kind_name}`")))?;
    let budget = req.budget.unwrap_or(0.25);
    if !(0.0..=1.0).contains(&budget) {
        return Err(bad_request(format!("budget {budget} outside [0, 1]")));
    }
    let seed = req.seed.unwrap_or(0);
    let run = localwm_attack::attack_once_in(
        &ctx,
        &sig,
        par,
        &AttackConfig { kind, budget, seed },
        &wm_config(req),
    )
    .map_err(embed_error)?;
    let mut fields = match run.cell.to_value() {
        Value::Object(f) => f,
        _ => unreachable!("cells serialize as objects"),
    };
    fields.push(("seed".to_owned(), seed.to_value()));
    fields.push(("baseline_length".to_owned(), run.baseline_length.to_value()));
    fields.push(("wm_edges".to_owned(), run.wm_edges.to_value()));
    fields.push((
        "schedule".to_owned(),
        write_schedule(&run.outcome.graph, &run.outcome.schedule).to_value(),
    ));
    Ok(Value::Object(fields))
}

fn parse_budgets(req: &Request) -> Result<Vec<f64>, ServiceError> {
    let Some(text) = req.budgets.as_deref() else {
        return Ok(localwm_attack::DEFAULT_BUDGETS.to_vec());
    };
    let mut out = Vec::new();
    for part in text.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let b: f64 = part
            .parse()
            .map_err(|_| bad_request(format!("bad budget `{part}`")))?;
        if !(0.0..=1.0).contains(&b) {
            return Err(bad_request(format!("budget {b} outside [0, 1]")));
        }
        out.push(b);
    }
    if out.is_empty() {
        return Err(bad_request("empty `budgets` list"));
    }
    Ok(out)
}

fn strength(cache: &ContextCache, req: &Request, par: Parallelism) -> HandlerResult {
    let ctx = design_context(cache, req)?;
    let sig = signature(req)?;
    let cfg = StrengthConfig {
        budgets: parse_budgets(req)?,
        seed: req.seed.unwrap_or(0),
        wm: wm_config(req),
    };
    let report = localwm_attack::strength_report_in(&ctx, &sig, par, &cfg).map_err(embed_error)?;
    Ok(report.to_value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;
    use localwm_cdfg::write_cdfg;

    fn req_with_design(kind: RequestKind) -> Request {
        let mut r = Request::new(kind);
        r.design = Some(write_cdfg(&iir4_parallel()));
        r
    }

    #[test]
    fn timing_reports_critical_path() {
        let cache = ContextCache::new(2);
        let out = execute(&cache, &req_with_design(RequestKind::Timing)).unwrap();
        assert_eq!(out.field("critical_path"), Some(&Value::Int(6)));
        assert!(matches!(out.field("bounded_hi"), Some(Value::Int(_))));
    }

    #[test]
    fn embed_then_detect_round_trips_through_the_wire_formats() {
        let cache = ContextCache::new(2);
        let mut embed_req = req_with_design(RequestKind::Embed);
        embed_req.author = Some("server-test".to_owned());
        let emb = execute(&cache, &embed_req).unwrap();
        let schedule = match emb.field("schedule") {
            Some(Value::Str(s)) => s.clone(),
            other => panic!("expected schedule text, got {other:?}"),
        };
        let mut detect_req = req_with_design(RequestKind::Detect);
        detect_req.author = Some("server-test".to_owned());
        detect_req.schedule = Some(schedule);
        let ev = execute(&cache, &detect_req).unwrap();
        assert_eq!(ev.field("match"), Some(&Value::Bool(true)));
        // The cache served both requests from one context.
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn missing_fields_are_bad_requests() {
        let cache = ContextCache::new(2);
        let no_design = Request::new(RequestKind::Timing);
        let err = execute(&cache, &no_design).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
        let no_author = req_with_design(RequestKind::Embed);
        let err = execute(&cache, &no_author).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadRequest);
    }

    #[test]
    fn attack_measures_and_is_deterministic() {
        let cache = ContextCache::new(2);
        let mut req = req_with_design(RequestKind::Attack);
        req.author = Some("server-test".to_owned());
        req.attack = Some("reschedule".to_owned());
        req.budget = Some(0.5);
        req.seed = Some(3);
        let a = execute(&cache, &req).unwrap();
        let b = execute_with(&cache, &req, Parallelism::Auto).unwrap();
        assert_eq!(a, b, "seeded attacks are parallelism-invariant");
        assert!(matches!(a.field("survived"), Some(Value::Bool(_))));
        assert!(matches!(a.field("strength"), Some(Value::Float(_))));
        assert!(matches!(a.field("schedule"), Some(Value::Str(_))));
    }

    #[test]
    fn strength_sweeps_the_requested_budgets() {
        let cache = ContextCache::new(2);
        let mut req = req_with_design(RequestKind::Strength);
        req.author = Some("server-test".to_owned());
        req.budgets = Some("0, 0.3".to_owned());
        req.seed = Some(5);
        let out = execute(&cache, &req).unwrap();
        match out.field("rows") {
            Some(Value::Array(rows)) => assert_eq!(rows.len(), 2),
            other => panic!("expected rows array, got {other:?}"),
        }
        match out.field("cells") {
            Some(Value::Array(cells)) => assert_eq!(cells.len(), 8),
            other => panic!("expected cells array, got {other:?}"),
        }
        let mut bad = req.clone();
        bad.budgets = Some("0,nope".to_owned());
        assert_eq!(
            execute(&cache, &bad).unwrap_err().code,
            ErrorCode::BadRequest
        );
        let mut out_of_range = req.clone();
        out_of_range.budgets = Some("0,1.5".to_owned());
        assert_eq!(
            execute(&cache, &out_of_range).unwrap_err().code,
            ErrorCode::BadRequest
        );
    }

    #[test]
    fn robustness_kinds_surface_typed_embed_errors() {
        use localwm_cdfg::designs::{table2_design, table2_designs};
        let cache = ContextCache::new(2);
        for kind in [RequestKind::Attack, RequestKind::Strength] {
            let mut req = Request::new(kind);
            req.design = Some(write_cdfg(&table2_design(&table2_designs()[1])));
            req.author = Some("anyone".to_owned());
            let err = execute(&cache, &req).unwrap_err();
            assert_eq!(err.code, ErrorCode::NoIncomparablePairs, "{kind}");
        }
    }

    #[test]
    fn serial_design_yields_typed_no_incomparable_pairs() {
        use localwm_cdfg::designs::{table2_design, table2_designs};
        let cache = ContextCache::new(2);
        let mut req = Request::new(RequestKind::Embed);
        req.design = Some(write_cdfg(&table2_design(&table2_designs()[1])));
        req.author = Some("anyone".to_owned());
        let err = execute(&cache, &req).unwrap_err();
        assert_eq!(err.code, ErrorCode::NoIncomparablePairs);
        assert!(err.details.iter().any(|(k, _)| k == "domain_size"));
        assert!(err.details.iter().any(|(k, _)| k == "pairs_examined"));
    }
}
