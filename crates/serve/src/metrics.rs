//! Live service metrics: per-kind request counters and latency histograms.
//!
//! Lock-free (atomic) recording on the worker path; snapshots are exposed
//! through the `stats` request and dumped to JSON on exit via
//! `--metrics-out`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use serde::Value;

use crate::protocol::RequestKind;

/// Power-of-two microsecond buckets: `< 1µs, < 2µs, …, < 16.4ms, ≥ 16.4ms`.
const BUCKETS: usize = 16;

/// How a request finished, for counter purposes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// A success response was sent.
    Ok,
    /// A typed error response was sent.
    Error,
    /// The watchdog answered with `deadline_exceeded`.
    Timeout,
}

#[derive(Default)]
struct KindMetrics {
    requests: AtomicU64,
    errors: AtomicU64,
    timeouts: AtomicU64,
    total_us: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl KindMetrics {
    fn record(&self, latency: Duration, outcome: Outcome) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        match outcome {
            Outcome::Ok => {}
            Outcome::Error => {
                self.errors.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Timeout => {
                self.timeouts.fetch_add(1, Ordering::Relaxed);
            }
        }
        let us = u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        let idx = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn to_value(&self) -> Value {
        let hist: Vec<Value> = self
            .buckets
            .iter()
            .map(|b| Value::UInt(b.load(Ordering::Relaxed)))
            .collect();
        Value::Object(vec![
            (
                "count".to_owned(),
                Value::UInt(self.requests.load(Ordering::Relaxed)),
            ),
            (
                "errors".to_owned(),
                Value::UInt(self.errors.load(Ordering::Relaxed)),
            ),
            (
                "timeouts".to_owned(),
                Value::UInt(self.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "total_us".to_owned(),
                Value::UInt(self.total_us.load(Ordering::Relaxed)),
            ),
            ("histogram_us_pow2".to_owned(), Value::Array(hist)),
        ])
    }
}

/// The server-wide metrics registry.
pub struct Metrics {
    started: Instant,
    kinds: [KindMetrics; RequestKind::ALL.len()],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// An empty registry; the uptime clock starts now.
    pub fn new() -> Self {
        Metrics {
            started: Instant::now(),
            kinds: Default::default(),
        }
    }

    /// Records one finished request.
    pub fn record(&self, kind: RequestKind, latency: Duration, outcome: Outcome) {
        self.kinds[kind.index()].record(latency, outcome);
    }

    /// Total requests recorded for one kind.
    pub fn count(&self, kind: RequestKind) -> u64 {
        self.kinds[kind.index()].requests.load(Ordering::Relaxed)
    }

    /// Total timeouts recorded for one kind.
    pub fn timeouts(&self, kind: RequestKind) -> u64 {
        self.kinds[kind.index()].timeouts.load(Ordering::Relaxed)
    }

    /// Milliseconds since the registry was created.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The per-kind snapshot as a JSON object keyed by wire name.
    pub fn to_value(&self) -> Value {
        Value::Object(
            RequestKind::ALL
                .iter()
                .map(|k| (k.as_str().to_owned(), self.kinds[k.index()].to_value()))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcomes_land_in_the_right_counters() {
        let m = Metrics::new();
        m.record(RequestKind::Timing, Duration::from_micros(3), Outcome::Ok);
        m.record(
            RequestKind::Timing,
            Duration::from_micros(9),
            Outcome::Error,
        );
        m.record(
            RequestKind::Embed,
            Duration::from_millis(2),
            Outcome::Timeout,
        );
        assert_eq!(m.count(RequestKind::Timing), 2);
        assert_eq!(m.count(RequestKind::Embed), 1);
        assert_eq!(m.timeouts(RequestKind::Embed), 1);
        let v = m.to_value();
        let timing = v.field("timing").unwrap();
        assert_eq!(timing.field("count"), Some(&Value::UInt(2)));
        assert_eq!(timing.field("errors"), Some(&Value::UInt(1)));
    }

    #[test]
    fn histogram_buckets_are_log2_of_microseconds() {
        let m = Metrics::new();
        // 0µs -> bucket 0, 1µs -> bucket 1, 1ms (=2^10µs) -> bucket 11.
        m.record(RequestKind::Stats, Duration::from_micros(0), Outcome::Ok);
        m.record(RequestKind::Stats, Duration::from_micros(1), Outcome::Ok);
        m.record(RequestKind::Stats, Duration::from_micros(1024), Outcome::Ok);
        let v = m.to_value();
        let hist = match v.field("stats").unwrap().field("histogram_us_pow2") {
            Some(Value::Array(a)) => a.clone(),
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(hist[0], Value::UInt(1));
        assert_eq!(hist[1], Value::UInt(1));
        assert_eq!(hist[11], Value::UInt(1));
    }
}
