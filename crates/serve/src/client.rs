//! A minimal blocking client for the JSON-lines protocol, shared by the
//! CLI's `localwm request`, the gateway's backend pools, the integration
//! tests, and the load benches.
//!
//! One [`Client`] is one TCP connection; every call reuses it, so repeated
//! requests ride the warm path (no reconnect, no fresh slow-start). The
//! CLI's `--repeat N` and the gateway's per-backend pools both lean on
//! that keep-alive behavior.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use crate::protocol::{Request, Response};

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Connects, retrying for up to `wait` while the server is starting.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `wait` elapses.
    pub fn connect_within(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Applies a read timeout to subsequent [`Client::recv`] calls (`None`
    /// blocks forever). A timed-out read surfaces as a `WouldBlock` /
    /// `TimedOut` I/O error — the chaos harness uses this to classify
    /// dropped responses without hanging.
    ///
    /// # Errors
    ///
    /// Propagates socket option errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request line.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_line(&req.to_line())
    }

    /// Sends one already-encoded request line verbatim (the gateway's
    /// forwarding path: the client's bytes go upstream untouched, so
    /// responses stay byte-identical to a direct backend call).
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next raw response line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Fails on socket errors or a server-closed connection.
    pub fn recv_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads and decodes the next response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an undecodable response line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let line = self.recv_line()?;
        Response::from_line(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends `req` and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] and [`Client::recv`] errors.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Calls `req` `n` times over this one keep-alive connection, returning
    /// the last response and each call's wall-clock latency. The first
    /// latency is the cold-path cost (server parses and caches the design);
    /// the rest measure the warm path without reconnect overhead — this is
    /// what `localwm request --repeat N` reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Client::call`] error; `n` is clamped to ≥ 1.
    pub fn call_repeated(
        &mut self,
        req: &Request,
        n: usize,
    ) -> io::Result<(Response, Vec<Duration>)> {
        let n = n.max(1);
        let mut latencies = Vec::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let start = Instant::now();
            let resp = self.call(req)?;
            latencies.push(start.elapsed());
            last = Some(resp);
        }
        Ok((last.expect("n >= 1"), latencies))
    }
}
