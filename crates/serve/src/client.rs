//! A minimal blocking client for the wire protocol, shared by the CLI's
//! `localwm request`, the gateway's backend pools, the integration tests,
//! and the load benches. Speaks JSON lines by default; [`Client::connect_binary`]
//! negotiates the `LWMB1` framed binary encoding instead, behind the same
//! API — line-level methods transcode at the boundary, so callers (and
//! differential tests) see byte-identical JSON either way.
//!
//! One [`Client`] is one TCP connection; every call reuses it, so repeated
//! requests ride the warm path (no reconnect, no fresh slow-start). The
//! CLI's `--repeat N` and the gateway's per-backend pools both lean on
//! that keep-alive behavior.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use localwm_store::binval::{decode_value, read_frame, value_to_bytes, write_frame};
use serde::Value;

use crate::protocol::{Request, Response, BINARY_MAGIC};

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            binary: false,
        })
    }

    /// Connects and negotiates the `LWMB1` binary protocol: the magic line
    /// goes out immediately, and every subsequent request/response on this
    /// connection is a length-prefixed checksummed frame.
    ///
    /// # Errors
    ///
    /// Propagates connection and negotiation-write errors.
    pub fn connect_binary(addr: &str) -> io::Result<Client> {
        let mut client = Client::connect(addr)?;
        client.writer.write_all(BINARY_MAGIC.as_bytes())?;
        client.writer.write_all(b"\n")?;
        client.writer.flush()?;
        client.binary = true;
        Ok(client)
    }

    /// Whether this connection negotiated the binary encoding.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Connects, retrying for up to `wait` while the server is starting.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `wait` elapses.
    pub fn connect_within(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// [`Client::connect_binary`], retrying for up to `wait` while the
    /// server is starting.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `wait` elapses.
    pub fn connect_binary_within(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect_binary(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Applies a read timeout to subsequent [`Client::recv`] calls (`None`
    /// blocks forever). A timed-out read surfaces as a `WouldBlock` /
    /// `TimedOut` I/O error — the chaos harness uses this to classify
    /// dropped responses without hanging.
    ///
    /// # Errors
    ///
    /// Propagates socket option errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request in this connection's negotiated encoding.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        if self.binary {
            write_frame(&mut self.writer, &req.to_frame())
        } else {
            self.send_line(&req.to_line())
        }
    }

    /// Sends one already-encoded JSON request line verbatim (the gateway's
    /// forwarding path: the client's bytes go upstream untouched, so
    /// responses stay byte-identical to a direct backend call). On a binary
    /// connection the line is transcoded to a frame at this boundary —
    /// same value tree, different envelope.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors, or `InvalidInput` when a binary
    /// connection is handed an unparseable line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        if self.binary {
            let value: Value = serde_json::from_str(line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            return write_frame(&mut self.writer, &value_to_bytes(&value));
        }
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    /// Reads the next raw response line (without the trailing newline). On
    /// a binary connection the next frame is read and re-rendered to JSON —
    /// the protocol's codecs are bijective, so the returned line is
    /// byte-identical to what a JSON connection would have received.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-closed connection, or (binary) a
    /// corrupt frame.
    pub fn recv_line(&mut self) -> io::Result<String> {
        if self.binary {
            let body = read_frame(&mut self.reader)?;
            let value =
                decode_value(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            return Ok(serde_json::to_string(&value).expect("value serialization is infallible"));
        }
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads and decodes the next response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an undecodable response line.
    pub fn recv(&mut self) -> io::Result<Response> {
        let line = self.recv_line()?;
        Response::from_line(&line).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Sends `req` and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] and [`Client::recv`] errors.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Calls `req` `n` times over this one keep-alive connection, returning
    /// the last response and each call's wall-clock latency. The first
    /// latency is the cold-path cost (server parses and caches the design);
    /// the rest measure the warm path without reconnect overhead — this is
    /// what `localwm request --repeat N` reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Client::call`] error; `n` is clamped to ≥ 1.
    pub fn call_repeated(
        &mut self,
        req: &Request,
        n: usize,
    ) -> io::Result<(Response, Vec<Duration>)> {
        let n = n.max(1);
        let mut latencies = Vec::with_capacity(n);
        let mut last = None;
        for _ in 0..n {
            let start = Instant::now();
            let resp = self.call(req)?;
            latencies.push(start.elapsed());
            last = Some(resp);
        }
        Ok((last.expect("n >= 1"), latencies))
    }
}
