//! A minimal blocking client for the wire protocol, shared by the CLI's
//! `localwm request`, the gateway's backend pools, the integration tests,
//! and the load benches. Speaks JSON lines by default; [`Client::connect_binary`]
//! negotiates the `LWMB1` framed binary encoding instead, behind the same
//! API — line-level methods transcode at the boundary, so callers (and
//! differential tests) see byte-identical JSON either way.
//!
//! One [`Client`] is one TCP connection; every call reuses it, so repeated
//! requests ride the warm path (no reconnect, no fresh slow-start). The
//! CLI's `--repeat N` and the gateway's per-backend pools both lean on
//! that keep-alive behavior.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use localwm_store::binval::{decode_value, read_frame_into, value_to_bytes, write_frame};

use crate::protocol::{Request, Response, BINARY_MAGIC};

/// One connection to a running server.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    binary: bool,
    /// Recycled wire buffers: every send encodes into `send_buf` (one
    /// write syscall per request or burst) and every binary receive lands
    /// in `frame_buf`; both are cleared per use, never freed, so a warm
    /// connection does request/response IO without allocating.
    send_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    line_buf: String,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7171`).
    ///
    /// # Errors
    ///
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client {
            reader,
            writer,
            binary: false,
            send_buf: Vec::new(),
            frame_buf: Vec::new(),
            line_buf: String::new(),
        })
    }

    /// Connects and negotiates the `LWMB1` binary protocol: the magic line
    /// goes out immediately, and every subsequent request/response on this
    /// connection is a length-prefixed checksummed frame.
    ///
    /// # Errors
    ///
    /// Propagates connection and negotiation-write errors.
    pub fn connect_binary(addr: &str) -> io::Result<Client> {
        let mut client = Client::connect(addr)?;
        client.writer.write_all(BINARY_MAGIC.as_bytes())?;
        client.writer.write_all(b"\n")?;
        client.writer.flush()?;
        client.binary = true;
        Ok(client)
    }

    /// Whether this connection negotiated the binary encoding.
    pub fn is_binary(&self) -> bool {
        self.binary
    }

    /// Connects, retrying for up to `wait` while the server is starting.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `wait` elapses.
    pub fn connect_within(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// [`Client::connect_binary`], retrying for up to `wait` while the
    /// server is starting.
    ///
    /// # Errors
    ///
    /// Returns the last connection error once `wait` elapses.
    pub fn connect_binary_within(addr: &str, wait: Duration) -> io::Result<Client> {
        let deadline = std::time::Instant::now() + wait;
        loop {
            match Client::connect_binary(addr) {
                Ok(c) => return Ok(c),
                Err(e) if std::time::Instant::now() >= deadline => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    }

    /// Applies a read timeout to subsequent [`Client::recv`] calls (`None`
    /// blocks forever). A timed-out read surfaces as a `WouldBlock` /
    /// `TimedOut` I/O error — the chaos harness uses this to classify
    /// dropped responses without hanging.
    ///
    /// # Errors
    ///
    /// Propagates socket option errors.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Sends one request in this connection's negotiated encoding.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors.
    pub fn send(&mut self, req: &Request) -> io::Result<()> {
        self.send_buf.clear();
        encode_request(req, self.binary, &mut self.send_buf);
        self.writer.write_all(&self.send_buf)?;
        self.writer.flush()
    }

    /// Sends one already-encoded JSON request line verbatim (the gateway's
    /// forwarding path: the client's bytes go upstream untouched, so
    /// responses stay byte-identical to a direct backend call). On a binary
    /// connection the line is transcoded to a frame at this boundary —
    /// same value tree, different envelope.
    ///
    /// # Errors
    ///
    /// Propagates socket write errors, or `InvalidInput` when a binary
    /// connection is handed an unparseable line.
    pub fn send_line(&mut self, line: &str) -> io::Result<()> {
        if self.binary {
            let value = serde_json::from_str_value(line)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            return write_frame(&mut self.writer, &value_to_bytes(&value));
        }
        self.send_buf.clear();
        self.send_buf.extend_from_slice(line.as_bytes());
        self.send_buf.push(b'\n');
        self.writer.write_all(&self.send_buf)?;
        self.writer.flush()
    }

    /// Reads the next raw response line (without the trailing newline). On
    /// a binary connection the next frame is read and re-rendered to JSON —
    /// the protocol's codecs are bijective, so the returned line is
    /// byte-identical to what a JSON connection would have received.
    ///
    /// # Errors
    ///
    /// Fails on socket errors, a server-closed connection, or (binary) a
    /// corrupt frame.
    pub fn recv_line(&mut self) -> io::Result<String> {
        if self.binary {
            read_frame_into(&mut self.reader, &mut self.frame_buf)?;
            let value = decode_value(&self.frame_buf)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
            return Ok(serde_json::to_string(&value).expect("value serialization is infallible"));
        }
        let mut line = String::new();
        let n = self.reader.read_line(&mut line)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while line.ends_with('\n') || line.ends_with('\r') {
            line.pop();
        }
        Ok(line)
    }

    /// Reads the next raw response into this connection's recycled buffer
    /// (no per-read allocation); decode the result with
    /// [`Response::from_line`]. The hot-path primitive under [`Client::recv`],
    /// [`Client::call_repeated`], and [`Client::call_pipelined`].
    fn recv_reused(&mut self) -> io::Result<()> {
        if self.binary {
            return read_frame_into(&mut self.reader, &mut self.frame_buf);
        }
        self.line_buf.clear();
        let n = self.reader.read_line(&mut self.line_buf)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        while self.line_buf.ends_with('\n') || self.line_buf.ends_with('\r') {
            self.line_buf.pop();
        }
        Ok(())
    }

    /// Decodes the response last read by [`Client::recv_reused`].
    fn decode_reused(&self) -> io::Result<Response> {
        let decoded = if self.binary {
            Response::from_frame(&self.frame_buf)
        } else {
            Response::from_line(&self.line_buf)
        };
        decoded.map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Reads and decodes the next response.
    ///
    /// # Errors
    ///
    /// Fails on socket errors or an undecodable response.
    pub fn recv(&mut self) -> io::Result<Response> {
        self.recv_reused()?;
        self.decode_reused()
    }

    /// Sends `req` and waits for its response.
    ///
    /// # Errors
    ///
    /// Propagates [`Client::send`] and [`Client::recv`] errors.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        self.send(req)?;
        self.recv()
    }

    /// Calls `req` `n` times over this one keep-alive connection, returning
    /// the last response and each call's wall-clock latency. The first
    /// latency is the cold-path cost (server parses and caches the design);
    /// the rest measure the warm path without reconnect overhead — this is
    /// what `localwm request --repeat N` reports.
    ///
    /// # Errors
    ///
    /// Propagates the first [`Client::send`]/receive error; `n` is clamped
    /// to ≥ 1. The request is encoded once and its wire bytes replayed
    /// every iteration; responses land in one recycled buffer, and only
    /// the final one is decoded — the warm path allocates nothing per
    /// iteration.
    pub fn call_repeated(
        &mut self,
        req: &Request,
        n: usize,
    ) -> io::Result<(Response, Vec<Duration>)> {
        let n = n.max(1);
        let mut wire = std::mem::take(&mut self.send_buf);
        wire.clear();
        encode_request(req, self.binary, &mut wire);
        let mut latencies = Vec::with_capacity(n);
        for _ in 0..n {
            let start = Instant::now();
            let sent = self
                .writer
                .write_all(&wire)
                .and_then(|()| self.writer.flush())
                .and_then(|()| self.recv_reused());
            if let Err(e) = sent {
                self.send_buf = wire;
                return Err(e);
            }
            latencies.push(start.elapsed());
        }
        self.send_buf = wire;
        Ok((self.decode_reused()?, latencies))
    }

    /// Relays a burst of already-encoded JSON request lines pipelined:
    /// every line goes out in one buffered write, then the raw response
    /// lines come back in request order. The verbatim-forwarding sibling
    /// of [`Client::call_pipelined`] — the gateway's burst relay uses it
    /// to fan a read-ahead burst upstream in one round trip while keeping
    /// the forwarded bytes untouched. On a binary connection each line is
    /// transcoded to a frame at this boundary, exactly as
    /// [`Client::send_line`] does.
    ///
    /// # Errors
    ///
    /// Propagates socket errors and (binary) unparseable lines; on error
    /// the connection should be discarded — responses may still be in
    /// flight.
    pub fn pipeline_lines(&mut self, lines: &[&str]) -> io::Result<Vec<String>> {
        let mut wire = std::mem::take(&mut self.send_buf);
        wire.clear();
        for line in lines {
            if self.binary {
                let parsed = serde_json::from_str_value(line);
                let value = match parsed {
                    Ok(v) => v,
                    Err(e) => {
                        self.send_buf = wire;
                        return Err(io::Error::new(io::ErrorKind::InvalidInput, e.to_string()));
                    }
                };
                write_frame(&mut wire, &value_to_bytes(&value)).expect("vec write is infallible");
            } else {
                wire.extend_from_slice(line.as_bytes());
                wire.push(b'\n');
            }
        }
        let sent = self
            .writer
            .write_all(&wire)
            .and_then(|()| self.writer.flush());
        self.send_buf = wire;
        sent?;
        let mut responses = Vec::with_capacity(lines.len());
        for _ in lines {
            responses.push(self.recv_line()?);
        }
        Ok(responses)
    }

    /// Sends a burst of requests back-to-back — one buffered write, one
    /// flush — and reads their responses in request order. This is the
    /// client half of connection pipelining: the server's ordered writer
    /// guarantees response `i` answers request `i`, so the byte stream is
    /// identical to `reqs.len()` lockstep [`Client::call`]s while paying
    /// one round trip.
    ///
    /// # Errors
    ///
    /// Propagates socket write/read errors and undecodable responses; on
    /// error, responses already read are lost (the connection should be
    /// discarded, as in-flight responses may still be arriving).
    pub fn call_pipelined(&mut self, reqs: &[Request]) -> io::Result<Vec<Response>> {
        let mut wire = std::mem::take(&mut self.send_buf);
        wire.clear();
        for req in reqs {
            encode_request(req, self.binary, &mut wire);
        }
        let sent = self
            .writer
            .write_all(&wire)
            .and_then(|()| self.writer.flush());
        self.send_buf = wire;
        sent?;
        let mut responses = Vec::with_capacity(reqs.len());
        for _ in reqs {
            responses.push(self.recv()?);
        }
        Ok(responses)
    }
}

/// Appends `req`'s wire bytes — a framed body or a JSON line plus
/// newline — to `out`.
fn encode_request(req: &Request, binary: bool, out: &mut Vec<u8>) {
    if binary {
        write_frame(out, &req.to_frame()).expect("vec write is infallible");
    } else {
        out.extend_from_slice(req.to_line().as_bytes());
        out.push(b'\n');
    }
}
