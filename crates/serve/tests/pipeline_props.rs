//! Property-based tests for connection pipelining: whatever mix of
//! requests a client keeps in flight — fast kinds the reader answers
//! inline (`stats`), pooled analysis kinds (`timing`/`analyze`), cache
//! hits, and typed errors — the ordered writer must deliver response `i`
//! for request `i`, never reordering, dropping, or duplicating.

use std::time::Duration;

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{layered, LayeredConfig};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig};
use proptest::prelude::*;

/// The request mix one in-flight slot can carry. Inline-answered and
/// pool-queued kinds deliberately interleave: inline responses are
/// produced on the reader thread while earlier pooled responses are still
/// executing, which is exactly the overtaking the ordered writer must
/// park.
#[derive(Debug, Clone, Copy)]
enum Slot {
    /// `timing` on a small design — pooled, cacheable.
    TimingA,
    /// `timing` on a second design — pooled, different cache entry.
    TimingB,
    /// `analyze` on the first design — pooled, heavier.
    Analyze,
    /// `stats` — answered inline on the reader thread.
    Stats,
    /// `timing` on an unparseable design — a typed error, still pooled.
    BadDesign,
}

fn request_for(slot: Slot, id: u64, design_a: &str, design_b: &str) -> Request {
    let mut req = match slot {
        Slot::TimingA => {
            let mut r = Request::new(RequestKind::Timing);
            r.design = Some(design_a.to_owned());
            r
        }
        Slot::TimingB => {
            let mut r = Request::new(RequestKind::Timing);
            r.design = Some(design_b.to_owned());
            r
        }
        Slot::Analyze => {
            let mut r = Request::new(RequestKind::Analyze);
            r.design = Some(design_a.to_owned());
            r.samples = Some(16);
            r.seed = Some(7);
            r
        }
        Slot::Stats => Request::new(RequestKind::Stats),
        Slot::BadDesign => {
            let mut r = Request::new(RequestKind::Timing);
            r.design = Some("node a not_an_op\n".to_owned());
            r
        }
    };
    req.id = Some(id);
    req
}

const SLOTS: [Slot; 5] = [
    Slot::TimingA,
    Slot::TimingB,
    Slot::Analyze,
    Slot::Stats,
    Slot::BadDesign,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any interleaving of in-flight requests comes back in request order:
    /// response `i` echoes request `i`'s correlation id and kind, typed
    /// errors included, for every window size.
    #[test]
    fn pipelined_responses_never_reorder(
        slot_picks in proptest::collection::vec(0usize..SLOTS.len(), 1..20),
        window in 1usize..10,
    ) {
        let slots: Vec<Slot> = slot_picks.iter().map(|&i| SLOTS[i]).collect();
        let design_a = write_cdfg(&iir4_parallel());
        let design_b = write_cdfg(&layered(&LayeredConfig {
            ops: 24,
            layers: 4,
            seed: 11,
            ..LayeredConfig::default()
        }));
        let handle = localwm_serve::start(ServeConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            queue_depth: 64,
            cache_cap: 4,
            default_timeout_ms: None,
            metrics_out: None,
            fault_plan: None,
            session_idle_ms: None,
            store_dir: None,
            pipeline_window: window,
        })
        .expect("bind loopback");
        let addr = handle.addr().to_string();
        let mut client =
            Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");

        let requests: Vec<Request> = slots
            .iter()
            .enumerate()
            .map(|(i, &slot)| request_for(slot, i as u64, &design_a, &design_b))
            .collect();
        let responses = client.call_pipelined(&requests).expect("pipelined burst");
        handle.shutdown();

        prop_assert_eq!(responses.len(), requests.len());
        for (i, (slot, resp)) in slots.iter().zip(&responses).enumerate() {
            prop_assert_eq!(
                resp.id,
                Some(i as u64),
                "response {} answers request {} (slot {:?})",
                i,
                i,
                slot
            );
            let want_kind = match slot {
                Slot::TimingA | Slot::TimingB | Slot::BadDesign => "timing",
                Slot::Analyze => "analyze",
                Slot::Stats => "stats",
            };
            prop_assert_eq!(resp.kind.as_str(), want_kind);
            prop_assert_eq!(resp.ok, !matches!(slot, Slot::BadDesign));
        }
    }
}
