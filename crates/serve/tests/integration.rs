//! End-to-end tests: a real server on a loopback socket, driven through
//! the blocking [`Client`] over the JSON-lines wire format.

use std::time::Duration;

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::write_cdfg;
use localwm_serve::{Client, Request, RequestKind, ServeConfig};
use serde::Value;

fn start_server(workers: usize, queue_depth: usize) -> localwm_serve::ServerHandle {
    localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        queue_depth,
        cache_cap: 4,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback")
}

fn connect(handle: &localwm_serve::ServerHandle) -> Client {
    Client::connect_within(&handle.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

fn timing_request(id: u64, design: &str) -> Request {
    let mut r = Request::new(RequestKind::Timing);
    r.id = Some(id);
    r.design = Some(design.to_owned());
    r
}

/// An analyze request heavy enough to occupy a worker for a while. The
/// seed is derived from the id so requests with distinct ids are distinct
/// jobs (single-flight coalescing never merges them).
fn slow_request(id: u64, design: &str) -> Request {
    let mut r = Request::new(RequestKind::Analyze);
    r.id = Some(id);
    r.design = Some(design.to_owned());
    // Heavy enough that the stats-gauge polling below reliably observes
    // the busy/queued states; debug builds run the Monte-Carlo kernel an
    // order of magnitude slower, so they get a smaller sample count.
    r.samples = Some(if cfg!(debug_assertions) {
        400_000
    } else {
        2_000_000
    });
    r.seed = Some(id);
    r
}

/// Polls inline `stats` (answered on the connection thread, never queued)
/// until `pred` holds on the result object. The tests that need a precise
/// worker/queue interleaving wait on live gauges instead of sleeping for
/// a machine-speed-dependent amount of time.
fn wait_for_stats(handle: &localwm_serve::ServerHandle, pred: impl Fn(&Value) -> bool) {
    let mut c = connect(handle);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let resp = c.call(&Request::new(RequestKind::Stats)).expect("stats");
        let result = resp.result.as_ref().expect("stats body");
        if pred(result) {
            return;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server never reached the expected worker/queue state"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn int_gauge(result: &Value, path: &[&str]) -> i64 {
    let mut v = result;
    for p in path {
        v = v.field(p).unwrap_or(&Value::Null);
    }
    match v {
        Value::Int(i) => *i,
        Value::UInt(u) => *u as i64,
        _ => -1,
    }
}

#[test]
fn warm_cache_timing_is_byte_identical_to_cold() {
    let handle = start_server(2, 16);
    let mut c = connect(&handle);
    let design = write_cdfg(&iir4_parallel());

    c.send(&timing_request(1, &design)).unwrap();
    let cold = c.recv_line().unwrap();
    c.send(&timing_request(1, &design)).unwrap();
    let warm = c.recv_line().unwrap();
    assert_eq!(cold, warm, "cache hits must not change the response bytes");

    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    let cache = stats.result_field("cache").expect("cache stats");
    assert_eq!(
        cache.field("hits"),
        Some(&Value::Int(1)),
        "second request hit the context cache"
    );

    handle.shutdown();
}

#[test]
fn concurrent_clients_get_byte_identical_responses_to_serial() {
    let apps = mediabench_apps();
    let designs: Vec<String> = vec![
        write_cdfg(&iir4_parallel()),
        write_cdfg(&mediabench(&apps[0], 0)),
        write_cdfg(&mediabench(&apps[1], 0)),
    ];
    let requests: Vec<Request> = (0..9u64)
        .map(|i| {
            let design = &designs[usize::try_from(i).unwrap() % designs.len()];
            let mut r = if i % 3 == 0 {
                let mut e = Request::new(RequestKind::Embed);
                e.author = Some(format!("author-{}", i % 2));
                e
            } else if i % 3 == 1 {
                let mut a = Request::new(RequestKind::Analyze);
                a.samples = Some(50);
                a
            } else {
                Request::new(RequestKind::Timing)
            };
            r.id = Some(i);
            r.design = Some(design.clone());
            r
        })
        .collect();

    // Serial reference: one connection, one request at a time.
    let serial_server = start_server(1, 16);
    let mut serial = Vec::new();
    {
        let mut c = connect(&serial_server);
        for r in &requests {
            c.send(r).unwrap();
            serial.push((r.id.unwrap(), c.recv_line().unwrap()));
        }
    }
    serial_server.shutdown();

    // Concurrent run: one connection per request, all in flight at once.
    let concurrent_server = start_server(4, 16);
    let addr = concurrent_server.addr().to_string();
    let threads: Vec<_> = requests
        .iter()
        .cloned()
        .map(|r| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");
                c.send(&r).unwrap();
                (r.id.unwrap(), c.recv_line().unwrap())
            })
        })
        .collect();
    let mut concurrent: Vec<(u64, String)> =
        threads.into_iter().map(|t| t.join().unwrap()).collect();
    concurrent_server.shutdown();

    concurrent.sort_by_key(|&(id, _)| id);
    assert_eq!(
        serial, concurrent,
        "scheduling must not leak into responses"
    );
}

#[test]
fn full_queue_yields_typed_overloaded_without_stalling_the_acceptor() {
    let handle = start_server(1, 1);
    let design = write_cdfg(&iir4_parallel());

    // Occupy the single worker, then fill the single queue slot. The
    // stats gauges confirm each stage landed before the next request
    // goes out — fixed sleeps race a fast machine.
    let mut busy1 = connect(&handle);
    busy1.send(&slow_request(1, &design)).unwrap();
    wait_for_stats(&handle, |r| int_gauge(r, &["busy_workers"]) == 1);
    let mut busy2 = connect(&handle);
    busy2.send(&slow_request(2, &design)).unwrap();
    wait_for_stats(&handle, |r| int_gauge(r, &["queue", "depth"]) == 1);

    // A third request must bounce immediately with a typed error.
    let mut probe = connect(&handle);
    let resp = probe.call(&timing_request(3, &design)).unwrap();
    assert!(!resp.ok);
    let err = resp.error.expect("typed error");
    assert_eq!(err.code.as_str(), "overloaded");
    assert!(err.details.iter().any(|(k, _)| k == "queue_capacity"));

    // The accept loop is alive: a brand-new connection gets stats inline.
    let mut fresh = connect(&handle);
    let stats = fresh.call(&Request::new(RequestKind::Stats)).unwrap();
    assert!(stats.ok);
    let queue = stats.result_field("queue").expect("queue stats");
    assert_eq!(queue.field("rejected"), Some(&Value::Int(1)));

    // The displaced work itself still completes.
    assert!(busy1.recv().unwrap().ok);
    assert!(busy2.recv().unwrap().ok);
    handle.shutdown();
}

#[test]
fn identical_inflight_analyses_coalesce_into_one_execution() {
    let handle = start_server(1, 16);
    let design = write_cdfg(&iir4_parallel());

    // Park the single worker on a distinct slow job so the identical batch
    // below all arrives while its leader is still queued.
    let mut blocker = connect(&handle);
    blocker.send(&slow_request(99, &design)).unwrap();
    let mut stats_conn = connect(&handle);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = stats_conn.call(&Request::new(RequestKind::Stats)).unwrap();
        if stats.result_field("busy_workers") == Some(&Value::Int(1)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "worker never picked the blocker up"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let before = stats_conn.call(&Request::new(RequestKind::Stats)).unwrap();
    let executed_before = match before.result_field("executed") {
        Some(Value::Int(n)) => *n,
        other => panic!("expected executed counter, got {other:?}"),
    };

    // N identical analyze requests (same id, same parameters) from N
    // connections: one leader queues, the rest attach to its flight.
    const N: usize = 4;
    let mut req = Request::new(RequestKind::Analyze);
    req.id = Some(42);
    req.design = Some(design.clone());
    req.samples = Some(500);
    req.seed = Some(123);
    let mut clients: Vec<Client> = (0..N).map(|_| connect(&handle)).collect();
    for c in &mut clients {
        c.send(&req).unwrap();
    }

    let lines: Vec<String> = clients.iter_mut().map(|c| c.recv_line().unwrap()).collect();
    assert!(
        lines.iter().all(|l| l == &lines[0]),
        "fanned-out responses must be byte-identical"
    );
    let parsed: Value = serde_json::from_str(&lines[0]).expect("response is JSON");
    assert_eq!(parsed.field("ok"), Some(&Value::Bool(true)));
    assert!(blocker.recv().unwrap().ok);

    let stats = stats_conn.call(&Request::new(RequestKind::Stats)).unwrap();
    assert_eq!(
        stats.result_field("coalesced"),
        Some(&Value::Int(i64::try_from(N).unwrap() - 1)),
        "all but the leader coalesced"
    );
    match stats.result_field("executed") {
        Some(Value::Int(n)) => assert_eq!(
            *n - executed_before,
            1,
            "the identical batch ran the kernel exactly once"
        ),
        other => panic!("expected executed counter, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_work() {
    let handle = start_server(1, 16);
    let design = write_cdfg(&iir4_parallel());

    let mut worker_conn = connect(&handle);
    for id in 0..4u64 {
        worker_conn.send(&slow_request(id, &design)).unwrap();
    }
    std::thread::sleep(Duration::from_millis(50));

    let mut admin = connect(&handle);
    let resp = admin.call(&Request::new(RequestKind::Shutdown)).unwrap();
    assert!(resp.ok);
    match resp.result_field("drained_jobs") {
        Some(Value::Int(n)) => assert_eq!(*n, 4, "every accepted job drained"),
        other => panic!("expected drained_jobs count, got {other:?}"),
    }

    // All four queued requests were answered, none dropped.
    for _ in 0..4 {
        assert!(worker_conn.recv().unwrap().ok, "drained job succeeded");
    }
    handle.join();
}

#[test]
fn metrics_are_flushed_even_on_abort_and_flag_the_unclean_shutdown() {
    let dir = std::env::temp_dir();
    let aborted = dir.join(format!("localwm-metrics-abort-{}.json", std::process::id()));
    let drained = dir.join(format!("localwm-metrics-drain-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&aborted);
    let _ = std::fs::remove_file(&drained);
    let design = write_cdfg(&iir4_parallel());

    // Abort path: the server dies without draining — the metrics snapshot
    // must still land on disk, marked as a partial flush.
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 8,
        cache_cap: 2,
        default_timeout_ms: None,
        metrics_out: Some(aborted.to_string_lossy().into_owned()),
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback");
    let mut c = connect(&handle);
    assert!(c.call(&timing_request(1, &design)).unwrap().ok);
    handle.abort();
    let dump = std::fs::read_to_string(&aborted).expect("abort still flushed metrics");
    let v: Value = serde_json::from_str(&dump).expect("metrics dump is JSON");
    assert_eq!(v.field("clean_shutdown"), Some(&Value::Bool(false)));

    // Drain path: the same snapshot, marked clean.
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 8,
        cache_cap: 2,
        default_timeout_ms: None,
        metrics_out: Some(drained.to_string_lossy().into_owned()),
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback");
    let mut c = connect(&handle);
    assert!(c.call(&timing_request(1, &design)).unwrap().ok);
    handle.shutdown();
    let dump = std::fs::read_to_string(&drained).expect("drain flushed metrics");
    let v: Value = serde_json::from_str(&dump).expect("metrics dump is JSON");
    assert_eq!(v.field("clean_shutdown"), Some(&Value::Bool(true)));

    let _ = std::fs::remove_file(&aborted);
    let _ = std::fs::remove_file(&drained);
}

#[test]
fn expired_deadlines_get_a_typed_timeout_response() {
    let handle = start_server(1, 4);
    let design = write_cdfg(&iir4_parallel());
    let mut c = connect(&handle);
    let mut r = slow_request(7, &design);
    r.timeout_ms = Some(1);
    let resp = c.call(&r).unwrap();
    assert!(!resp.ok);
    assert_eq!(
        resp.error.expect("typed error").code.as_str(),
        "deadline_exceeded"
    );
    handle.shutdown();
}

#[test]
fn repeated_designs_raise_the_cache_hit_counter() {
    let handle = start_server(2, 16);
    let design = write_cdfg(&iir4_parallel());
    let mut c = connect(&handle);
    for id in 0..5u64 {
        assert!(c.call(&timing_request(id, &design)).unwrap().ok);
    }
    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    let cache = stats.result_field("cache").expect("cache stats");
    assert_eq!(cache.field("hits"), Some(&Value::Int(4)));
    assert_eq!(cache.field("misses"), Some(&Value::Int(1)));

    // Requests after shutdown are refused with a typed error.
    handle.shutdown();
}

#[test]
fn requests_during_drain_are_refused_as_shutting_down() {
    let handle = start_server(1, 16);
    let design = write_cdfg(&iir4_parallel());
    let mut busy = connect(&handle);
    busy.send(&slow_request(1, &design)).unwrap();
    wait_for_stats(&handle, |r| int_gauge(r, &["busy_workers"]) == 1);

    let mut admin = connect(&handle);
    admin.send(&Request::new(RequestKind::Shutdown)).unwrap();

    // While the drain is in progress, new work is refused. The drain can
    // also finish first on a fast box, so a refused or closed connection
    // is an acceptable outcome too.
    if let Ok(mut late) =
        Client::connect_within(&handle.addr().to_string(), Duration::from_millis(500))
    {
        if let Ok(resp) = late.call(&timing_request(9, &design)) {
            assert!(!resp.ok);
            assert_eq!(
                resp.error.expect("typed error").code.as_str(),
                "shutting_down"
            );
        }
    }

    assert!(busy.recv().unwrap().ok, "in-flight job still drained");
    assert!(admin.recv().unwrap().ok);
    handle.join();
}

#[test]
fn stats_exposes_live_gauges_for_cluster_aggregation() {
    let handle = start_server(3, 16);
    let mut c = connect(&handle);
    let design = write_cdfg(&iir4_parallel());
    c.call(&timing_request(1, &design)).unwrap();

    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    let result = stats.result.as_ref().expect("stats body");
    // The gauges a gateway's `cluster_stats` sums across the fleet.
    assert_eq!(result.field("workers"), Some(&Value::Int(3)));
    assert_eq!(
        result.field("busy_workers"),
        Some(&Value::Int(0)),
        "idle at stats time"
    );
    let queue = result.field("queue").expect("queue gauges");
    assert_eq!(queue.field("depth"), Some(&Value::Int(0)));
    assert_eq!(queue.field("capacity"), Some(&Value::Int(16)));

    handle.shutdown();
}

#[test]
fn busy_worker_gauge_rises_while_a_slow_request_runs() {
    let handle = start_server(1, 16);
    let mut slow = connect(&handle);
    let design = write_cdfg(&iir4_parallel());
    slow.send(&slow_request(1, &design)).unwrap();

    // Poll stats (answered inline, never queued) until the worker picks
    // the slow job up; the gauge must read 1 while it runs.
    let mut c = connect(&handle);
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
        let busy = stats.result_field("busy_workers").cloned();
        if busy == Some(Value::Int(1)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "busy_workers never rose: {busy:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(slow.recv().unwrap().ok);

    handle.shutdown();
}

#[test]
fn cluster_stats_on_a_single_backend_is_a_typed_bad_request() {
    let handle = start_server(2, 16);
    let mut c = connect(&handle);
    let mut req = Request::new(RequestKind::ClusterStats);
    req.id = Some(4);
    let resp = c.call(&req).unwrap();
    assert!(!resp.ok);
    assert_eq!(resp.id, Some(4));
    assert_eq!(resp.kind, "cluster_stats");
    let err = resp.error.expect("typed error");
    assert_eq!(err.code, localwm_serve::ErrorCode::BadRequest);
    assert!(err.message.contains("localwm-gateway"));
    handle.shutdown();
}

fn session_request(kind: RequestKind, id: u64, session: &str) -> Request {
    let mut r = Request::new(kind);
    r.id = Some(id);
    r.session = Some(session.to_owned());
    r
}

#[test]
fn session_analysis_over_the_wire_matches_from_scratch() {
    let handle = start_server(2, 16);
    let mut c = connect(&handle);
    let design = write_cdfg(&iir4_parallel());

    // Open, mutate twice, analyze through the session.
    let mut open = session_request(RequestKind::Open, 1, "wire-1");
    open.design = Some(design.clone());
    let resp = c.call(&open).unwrap();
    assert!(resp.ok, "open failed: {:?}", resp.error);

    let mut m1 = session_request(RequestKind::Mutate, 2, "wire-1");
    m1.edits = Some("add-node t9 not\nadd-edge data A9 t9\n".to_owned());
    assert!(c.call(&m1).unwrap().ok);
    let mut m2 = session_request(RequestKind::Mutate, 3, "wire-1");
    m2.edits = Some("add-edge temp A1 A5\n".to_owned());
    assert!(c.call(&m2).unwrap().ok);

    let mut q = session_request(RequestKind::Analyze, 4, "wire-1");
    q.samples = Some(64);
    q.seed = Some(9);
    let held = c.call(&q).unwrap();
    assert!(held.ok);

    // From-scratch reference: the same final design as one analyze request.
    let mut g = iir4_parallel();
    let t9 = g.add_named_node(localwm_cdfg::OpKind::Not, "t9");
    let a9 = g.node_by_name("A9").unwrap();
    g.add_data_edge(a9, t9).unwrap();
    let a1 = g.node_by_name("A1").unwrap();
    let a5 = g.node_by_name("A5").unwrap();
    g.add_edge(localwm_cdfg::EdgeKind::Temporal, a1, a5)
        .unwrap();
    let mut scratch_req = Request::new(RequestKind::Analyze);
    scratch_req.id = Some(4); // same id so the response lines match exactly
    scratch_req.design = Some(write_cdfg(&g));
    scratch_req.samples = Some(64);
    scratch_req.seed = Some(9);
    let scratch = c.call(&scratch_req).unwrap();
    assert!(scratch.ok);
    assert_eq!(
        held.to_line(),
        scratch.to_line(),
        "session analyze must be byte-identical to from-scratch"
    );

    // Close reports the mutation count; a second close is typed expired.
    let resp = c
        .call(&session_request(RequestKind::Close, 5, "wire-1"))
        .unwrap();
    assert!(resp.ok);
    assert_eq!(resp.result_field("mutations"), Some(&Value::Int(2)));
    let resp = c
        .call(&session_request(RequestKind::Close, 6, "wire-1"))
        .unwrap();
    assert!(!resp.ok);
    assert_eq!(
        resp.error.expect("typed error").code.as_str(),
        "session_expired"
    );
    handle.shutdown();
}

#[test]
fn idle_sessions_are_evicted_with_a_typed_error() {
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 8,
        cache_cap: 2,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: Some(30),
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback");
    let mut c = connect(&handle);
    let mut open = session_request(RequestKind::Open, 1, "idle-1");
    open.design = Some(write_cdfg(&iir4_parallel()));
    assert!(c.call(&open).unwrap().ok);

    // Let the watchdog sweep the idle session out.
    std::thread::sleep(Duration::from_millis(200));
    let resp = c
        .call(&session_request(RequestKind::Timing, 2, "idle-1"))
        .unwrap();
    assert!(!resp.ok);
    assert_eq!(
        resp.error.expect("typed error").code.as_str(),
        "session_expired"
    );

    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    let sessions = stats.result_field("sessions").expect("session stats");
    assert_eq!(sessions.field("expired"), Some(&Value::Int(1)));
    assert_eq!(sessions.field("open"), Some(&Value::Int(0)));
    handle.shutdown();
}

#[test]
fn drain_closes_open_sessions_cleanly() {
    let handle = start_server(1, 8);
    let mut c = connect(&handle);
    let mut open = session_request(RequestKind::Open, 1, "drain-1");
    open.design = Some(write_cdfg(&iir4_parallel()));
    assert!(c.call(&open).unwrap().ok);

    let mut admin = connect(&handle);
    assert!(admin.call(&Request::new(RequestKind::Shutdown)).unwrap().ok);
    handle.join();
    // The server exited with a session still open: the drain closed it
    // (released the held design) rather than leaking or hanging.
}

#[test]
fn session_queries_against_unknown_ids_are_typed_expired() {
    let handle = start_server(1, 8);
    let mut c = connect(&handle);
    for kind in [
        RequestKind::Mutate,
        RequestKind::Timing,
        RequestKind::Analyze,
    ] {
        let mut r = session_request(kind, 1, "ghost");
        r.edits = Some("add-node t1 not\n".to_owned());
        let resp = c.call(&r).unwrap();
        assert!(!resp.ok);
        assert_eq!(
            resp.error.expect("typed error").code.as_str(),
            "session_expired",
            "{kind}"
        );
    }
    // A session-tagged embed is a bad request, not a silent fallback.
    let mut r = session_request(RequestKind::Embed, 2, "ghost");
    r.design = Some(write_cdfg(&iir4_parallel()));
    r.author = Some("x".to_owned());
    let resp = c.call(&r).unwrap();
    assert!(!resp.ok);
    assert_eq!(
        resp.error.expect("typed error").code.as_str(),
        "bad_request"
    );
    handle.shutdown();
}

#[test]
fn call_repeated_reuses_one_connection_for_the_warm_path() {
    let handle = start_server(2, 16);
    let mut c = connect(&handle);
    let design = write_cdfg(&iir4_parallel());
    let (last, latencies) = c.call_repeated(&timing_request(1, &design), 5).unwrap();
    assert!(last.ok);
    assert_eq!(latencies.len(), 5);

    let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
    let cache = stats.result_field("cache").expect("cache stats");
    assert_eq!(
        cache.field("hits"),
        Some(&Value::Int(4)),
        "repeats 2..=5 hit the context cache over the kept-alive connection"
    );
    handle.shutdown();
}

#[test]
fn binary_connection_gets_byte_identical_responses_and_is_counted() {
    let handle = start_server(2, 16);
    let design = write_cdfg(&iir4_parallel());
    let req = timing_request(7, &design);

    // Reference bytes over a JSON-lines connection.
    let mut json = connect(&handle);
    json.send(&req).unwrap();
    let reference = json.recv_line().unwrap();

    // Same request over a negotiated binary connection: the re-rendered
    // frame must be byte-identical, typed errors included.
    let mut bin = Client::connect_binary_within(&handle.addr().to_string(), Duration::from_secs(5))
        .expect("binary connect");
    assert!(bin.is_binary());
    bin.send(&req).unwrap();
    assert_eq!(
        bin.recv_line().unwrap(),
        reference,
        "binary frames must decode to the same response bytes"
    );
    let mut bad = Request::new(RequestKind::Timing);
    bad.id = Some(8);
    bad.design = Some("this is not a cdfg".to_owned());
    json.send(&bad).unwrap();
    bin.send(&bad).unwrap();
    let bad_json = json.recv_line().unwrap();
    assert!(bad_json.contains("\"ok\":false"));
    assert_eq!(bin.recv_line().unwrap(), bad_json);

    let stats = bin.call(&Request::new(RequestKind::Stats)).unwrap();
    let protocol = stats.result_field("protocol").expect("protocol stats");
    assert_eq!(protocol.field("json_conns"), Some(&Value::Int(1)));
    assert_eq!(protocol.field("binary_conns"), Some(&Value::Int(1)));
    assert_eq!(protocol.field("json_requests"), Some(&Value::Int(2)));
    assert_eq!(
        protocol.field("binary_requests"),
        Some(&Value::Int(3)),
        "timing + bad request + this stats call"
    );
    handle.shutdown();
}

#[test]
fn restarted_server_answers_from_the_store_without_reparsing() {
    let dir = std::env::temp_dir().join(format!("localwm-serve-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store_cfg = || ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 2,
        queue_depth: 16,
        cache_cap: 4,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: Some(dir.to_string_lossy().into_owned()),
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    };
    let apps = mediabench_apps();
    let designs = [
        write_cdfg(&iir4_parallel()),
        write_cdfg(&mediabench(&apps[0], 0)),
    ];

    // First life: populate the store through parse misses.
    let first = localwm_serve::start(store_cfg()).expect("bind first life");
    let mut reference = Vec::new();
    {
        let mut c = connect(&first);
        for (i, d) in designs.iter().enumerate() {
            c.send(&timing_request(i as u64, d)).unwrap();
            reference.push(c.recv_line().unwrap());
        }
        let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
        let store = stats.result_field("store").expect("store stats");
        assert_eq!(
            store.field("records"),
            Some(&Value::Int(4)),
            "design + alias per design"
        );
        assert_eq!(store.field("puts"), Some(&Value::Int(4)));
    }
    first.shutdown();

    // Second life, same --store-dir: byte-identical answers, served from
    // the store (store hits, no new puts — nothing was reparsed).
    let second = localwm_serve::start(store_cfg()).expect("bind second life");
    {
        let mut c = connect(&second);
        for (i, d) in designs.iter().enumerate() {
            c.send(&timing_request(i as u64, d)).unwrap();
            assert_eq!(
                c.recv_line().unwrap(),
                reference[i],
                "a warm restart must not change response bytes"
            );
        }
        let stats = c.call(&Request::new(RequestKind::Stats)).unwrap();
        let store = stats.result_field("store").expect("store stats");
        assert_eq!(
            store.field("hits"),
            Some(&Value::Int(4)),
            "alias + design lookup per design"
        );
        assert_eq!(store.field("puts"), Some(&Value::Int(0)));
        assert_eq!(store.field("dropped_tail"), Some(&Value::Int(0)));
        let cache = stats.result_field("cache").expect("cache stats");
        assert_eq!(
            cache.field("misses"),
            Some(&Value::Int(2)),
            "store loads still count as cache misses"
        );
    }
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
