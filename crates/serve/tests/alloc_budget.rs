//! Allocation-budget regression test for the warm request hot path.
//!
//! Gated on the `alloc-count` feature: the test binary registers
//! [`localwm_engine::CountingAlloc`] as its global allocator, drives a
//! real server over loopback TCP, and asserts that a warm cache-hit
//! `timing` request — client encode, server decode, cache hit, response
//! encode, client decode, the whole round trip — stays under a fixed
//! allocation budget per request. Run it with
//!
//! ```text
//! cargo test -p localwm-serve --features alloc-count --test alloc_budget
//! ```
//!
//! The budget is deliberately a hard constant, not a recorded baseline:
//! pooled IO buffers, interned graphs, and reused response buffers are
//! what keep the warm path this lean, and an accidental per-request
//! `String`/`Vec` shows up here as a hard failure. (`throughput_load
//! --baseline` is the complementary check against recorded numbers with a
//! 20% tolerance.)
#![cfg(feature = "alloc-count")]

use std::time::Duration;

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::write_cdfg;
use localwm_engine::{alloc_stats, CountingAlloc};
use localwm_serve::{Client, Request, RequestKind, ServeConfig};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Allocator calls one warm cache-hit `timing` round trip may spend,
/// averaged over the measured batch (which also absorbs watchdog and
/// accept-loop background noise). The warm path measured ~122 allocations
/// per request before this PR's pooling work and ~19–21 after it (direct
/// JSON writers, owned wire decode, memoized possibly-critical set); the
/// budget leaves about 2x headroom over the measured number so scheduler
/// noise cannot flake the test, while a regression toward the old
/// per-request `String` churn still fails loudly.
const WARM_TIMING_ALLOC_BUDGET: u64 = 40;

#[test]
fn warm_cache_hit_timing_stays_under_the_alloc_budget() {
    let handle = localwm_serve::start(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers: 1,
        queue_depth: 64,
        cache_cap: 4,
        default_timeout_ms: None,
        metrics_out: None,
        fault_plan: None,
        session_idle_ms: None,
        store_dir: None,
        pipeline_window: localwm_serve::server::DEFAULT_PIPELINE_WINDOW,
    })
    .expect("bind loopback");
    let addr = handle.addr().to_string();
    let mut client = Client::connect_within(&addr, Duration::from_secs(5)).expect("connect");

    let mut req = Request::new(RequestKind::Timing);
    req.design = Some(write_cdfg(&iir4_parallel()));

    // Warm everything: the design enters the context cache, the client's
    // recycled buffers grow to their steady-state capacities.
    let (resp, _) = client.call_repeated(&req, 32).expect("warm-up pass");
    assert!(resp.ok, "warm-up timing request succeeds");

    const ITERS: u64 = 256;
    let before = alloc_stats();
    let (resp, _) = client
        .call_repeated(&req, ITERS as usize)
        .expect("measured pass");
    let delta = alloc_stats().delta(&before);
    assert!(resp.ok, "measured timing request succeeds");

    let per_request = delta.allocs as f64 / ITERS as f64;
    assert!(
        per_request <= WARM_TIMING_ALLOC_BUDGET as f64,
        "warm cache-hit timing spent {per_request:.1} allocations per \
         request (budget {WARM_TIMING_ALLOC_BUDGET}); the hot path has \
         regressed toward per-request churn"
    );
    handle.shutdown();
}
