//! Property-based tests for the sharded context cache: exact capacity
//! splits, pure shard placement, counter identities under insert storms,
//! and a model-checked LRU (aliases included) that would catch any stale
//! alias hit.

use std::collections::HashMap;

use localwm_cdfg::generators::{layered, mediabench, mediabench_apps, LayeredConfig};
use localwm_cdfg::write_cdfg;
use localwm_serve::ContextCache;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The capacity split across shards is exact: per-shard capacities sum
    /// to the configured total (no padding, no truncation), every shard
    /// holds at least one design, and the shard count is clamped to
    /// `1..=capacity`.
    #[test]
    fn capacity_split_is_exact(capacity in 0usize..200, shards in 0usize..40) {
        let cache = ContextCache::with_shards(capacity, shards);
        let total = capacity.max(1);
        let per_shard: Vec<usize> =
            cache.shard_stats().iter().map(|s| s.capacity).collect();
        prop_assert_eq!(per_shard.iter().sum::<usize>(), total);
        prop_assert!(per_shard.iter().all(|&c| c >= 1));
        prop_assert_eq!(cache.shard_count(), shards.clamp(1, total));
        prop_assert_eq!(cache.stats().capacity, total);
        // The split is as even as an exact split can be.
        let (min, max) = (
            per_shard.iter().min().copied().unwrap_or(0),
            per_shard.iter().max().copied().unwrap_or(0),
        );
        prop_assert!(max - min <= 1, "split is balanced: {:?}", per_shard);
    }

    /// Shard placement is a pure function of the content hash and the
    /// shard count: stable on one cache, identical across caches with the
    /// same shard count, always in range.
    #[test]
    fn shard_choice_is_a_pure_function(
        capacity in 1usize..64,
        shards in 1usize..16,
        keys in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let a = ContextCache::with_shards(capacity, shards);
        // A second cache with a different capacity but the same effective
        // shard count must place every key identically.
        let b = ContextCache::with_shards(capacity * 3 + shards, a.shard_count());
        prop_assert_eq!(a.shard_count(), b.shard_count());
        for &k in &keys {
            let s = a.shard_of(k);
            prop_assert!(s < a.shard_count());
            prop_assert_eq!(a.shard_of(k), s, "stable on one cache");
            prop_assert_eq!(b.shard_of(k), s, "same count, same placement");
        }
    }

    /// Under a random insert storm, every shard's eviction counter is
    /// monotone, the identity `evictions == misses - entries` holds per
    /// shard and in aggregate after every operation, no shard exceeds its
    /// capacity slice, and the aggregate view is the exact sum of shards.
    #[test]
    fn insert_storms_keep_every_shard_accounted(
        capacity in 1usize..6,
        shards in 1usize..5,
        ops in proptest::collection::vec(0usize..12, 1..25),
    ) {
        let cache = ContextCache::with_shards(capacity, shards);
        let apps = mediabench_apps();
        let mut last_evictions = vec![0u64; cache.shard_count()];
        for &op in &ops {
            // 12 distinct designs: 3 mediabench apps x 4 salts.
            cache.get_or_insert(mediabench(&apps[op % 3], (op / 3) as u64));
            let per_shard = cache.shard_stats();
            for (i, s) in per_shard.iter().enumerate() {
                prop_assert!(s.evictions >= last_evictions[i], "shard {} went backwards", i);
                last_evictions[i] = s.evictions;
                prop_assert_eq!(s.evictions, s.misses - s.entries as u64);
                prop_assert!(s.entries <= s.capacity);
            }
            let agg = cache.stats();
            prop_assert_eq!(agg.hits, per_shard.iter().map(|s| s.hits).sum::<u64>());
            prop_assert_eq!(agg.misses, per_shard.iter().map(|s| s.misses).sum::<u64>());
            prop_assert_eq!(
                agg.evictions,
                per_shard.iter().map(|s| s.evictions).sum::<u64>()
            );
            prop_assert_eq!(
                agg.entries,
                per_shard.iter().map(|s| s.entries).sum::<usize>()
            );
            prop_assert_eq!(agg.evictions, agg.misses - agg.entries as u64);
        }
    }

    /// Model-checked single-shard LRU over `get_or_parse`: a reference
    /// model replays every lookup and predicts hit/miss/eviction counts
    /// exactly. A text alias surviving its entry's eviction would show up
    /// as an unpredicted hit; an alias dying too early as an unpredicted
    /// miss.
    #[test]
    fn text_aliases_die_with_their_entries(
        capacity in 1usize..4,
        ops in proptest::collection::vec(0usize..5, 1..30),
    ) {
        // Five distinct small designs, spelled once each (so the alias
        // fast path is exercised on every repeat).
        let texts: Vec<String> = (0..5)
            .map(|seed| {
                write_cdfg(&layered(&LayeredConfig {
                    ops: 12,
                    layers: 3,
                    seed,
                    ..LayeredConfig::default()
                }))
            })
            .collect();
        // One shard: global LRU order is strict, so the model is exact.
        let cache = ContextCache::with_shards(capacity, 1);
        let mut key_of: HashMap<usize, u64> = HashMap::new();
        // Content keys in recency order, least recent first.
        let mut lru: Vec<u64> = Vec::new();
        let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
        for &i in &ops {
            let expect_hit =
                key_of.get(&i).is_some_and(|k| lru.contains(k));
            let ctx = cache.get_or_parse(&texts[i]).expect("valid design");
            let key = ctx.content_hash();
            if let Some(&known) = key_of.get(&i) {
                prop_assert_eq!(known, key, "content hash is stable");
            }
            key_of.insert(i, key);
            if expect_hit {
                hits += 1;
                lru.retain(|&k| k != key);
            } else {
                misses += 1;
                if lru.len() >= capacity {
                    lru.remove(0);
                    evictions += 1;
                }
            }
            lru.push(key);
            let s = cache.stats();
            prop_assert_eq!(
                (s.hits, s.misses, s.evictions, s.entries),
                (hits, misses, evictions, lru.len()),
                "cache diverged from the LRU model"
            );
        }
    }
}
