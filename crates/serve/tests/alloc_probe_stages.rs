//! Diagnostic (ignored) breakdown of where the warm timing hot path
//! allocates: parse, execute, encode. Run with
//! `cargo test -p localwm-serve --features alloc-count --release --test
//! alloc_probe_stages -- --ignored --nocapture`.
#![cfg(feature = "alloc-count")]

use localwm_cdfg::designs::iir4_parallel;
use localwm_cdfg::write_cdfg;
use localwm_engine::{alloc_stats, CountingAlloc};
use localwm_serve::{ContextCache, Request, RequestKind, Response};

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
#[ignore = "diagnostic probe, not a regression gate"]
fn stage_breakdown() {
    let design = write_cdfg(&iir4_parallel());
    let mut req = Request::new(RequestKind::Timing);
    req.id = Some(1);
    req.design = Some(design);
    let line = req.to_line();
    let cache = ContextCache::new(4);
    let parsed = Request::from_line(&line).unwrap();
    let result = localwm_serve::handlers::execute(&cache, &parsed).unwrap();
    let resp = Response::success(parsed.id, parsed.kind.as_str(), result);
    let wire = resp.to_line();
    const N: u64 = 1000;

    let before = alloc_stats();
    for _ in 0..N {
        let r = Request::from_line(&line).unwrap();
        std::hint::black_box(&r);
    }
    let d = alloc_stats().delta(&before);
    println!("parse: {:.1} allocs/iter", d.allocs as f64 / N as f64);

    let before = alloc_stats();
    for _ in 0..N {
        let out = localwm_serve::handlers::execute(&cache, &parsed).unwrap();
        std::hint::black_box(&out);
    }
    let d = alloc_stats().delta(&before);
    println!(
        "execute(warm): {:.1} allocs/iter",
        d.allocs as f64 / N as f64
    );

    let mut s = String::new();
    let before = alloc_stats();
    for _ in 0..N {
        s.clear();
        resp.write_json(&mut s);
        std::hint::black_box(&s);
    }
    let d = alloc_stats().delta(&before);
    println!("encode resp: {:.1} allocs/iter", d.allocs as f64 / N as f64);

    let before = alloc_stats();
    for _ in 0..N {
        let r = Response::from_line(&wire).unwrap();
        std::hint::black_box(&r);
    }
    let d = alloc_stats().delta(&before);
    println!(
        "client decode resp: {:.1} allocs/iter",
        d.allocs as f64 / N as f64
    );
}
