//! Compiling (cycle-scheduling) a CDFG onto the machine.

use localwm_cdfg::{Cdfg, NodeId};
use localwm_engine::DesignContext;
use localwm_sched::{OpClass, Schedule};

use crate::Machine;

/// A compiled program: the cycle assignment and the makespan.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    schedule: Schedule,
    cycles: u32,
}

impl CompiledProgram {
    /// Total execution cycles.
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// The cycle-accurate schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }
}

/// Compiles a CDFG onto a [`Machine`]: critical-path-priority list
/// scheduling under the machine's issue width and per-class functional-unit
/// limits. Every edge kind — including watermark temporal edges — is a
/// strict dependence.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn compile(g: &Cdfg, machine: &Machine) -> CompiledProgram {
    compile_in(&DesignContext::from(g), machine)
}

/// [`compile`] against a shared [`DesignContext`], reusing its memoized
/// unit-delay timing for the priority function.
///
/// # Panics
///
/// Panics if the graph is cyclic.
pub fn compile_in(ctx: &DesignContext, machine: &Machine) -> CompiledProgram {
    let g = ctx.graph();
    let timing = ctx.unit_timing();
    let mut schedule = Schedule::empty(g);

    let mut pending: Vec<usize> = g
        .node_ids()
        .map(|n| g.preds(n).filter(|&p| g.kind(p).is_schedulable()).count())
        .collect();
    let mut ready: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && pending[n.index()] == 0)
        .collect();
    let mut earliest: Vec<u32> = vec![1; g.node_count()];

    let mut remaining = g.op_count();
    let mut cycle: u32 = 0;
    while remaining > 0 {
        cycle += 1;
        let mut candidates: Vec<NodeId> = ready
            .iter()
            .copied()
            .filter(|&n| earliest[n.index()] <= cycle)
            .collect();
        candidates.sort_by_key(|&n| (std::cmp::Reverse(timing.laxity(n)), n));

        let mut issued = 0usize;
        let mut used = [0usize; OpClass::COUNT];
        let mut placed: Vec<NodeId> = Vec::new();
        for n in candidates {
            if issued == machine.issue_width() {
                break;
            }
            let class = OpClass::of(g.kind(n));
            // ALUs are shared between Alu and Multiplier classes.
            let pool_used = match class {
                OpClass::Alu | OpClass::Multiplier => {
                    used[OpClass::Alu as usize] + used[OpClass::Multiplier as usize]
                }
                c => used[c as usize],
            };
            if pool_used >= machine.units_for(class) {
                continue;
            }
            used[class as usize] += 1;
            issued += 1;
            schedule.set_step(n, cycle);
            placed.push(n);
        }
        for n in placed {
            ready.retain(|&r| r != n);
            remaining -= 1;
            for s in g.succs(n) {
                earliest[s.index()] = earliest[s.index()].max(cycle + 1);
                if g.kind(s).is_schedulable() {
                    pending[s.index()] -= 1;
                    if pending[s.index()] == 0 {
                        ready.push(s);
                    }
                }
            }
        }
    }

    let cycles = schedule.length();
    CompiledProgram { schedule, cycles }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};
    use localwm_cdfg::{Cdfg, OpKind};

    #[test]
    fn issue_width_caps_parallelism() {
        // 8 independent ALU ops on a 4-issue machine: 2 cycles.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        for _ in 0..8 {
            let n = g.add_node(OpKind::Not);
            g.add_data_edge(x, n).unwrap();
        }
        let prog = compile(&g, &Machine::paper_default());
        assert_eq!(prog.cycles(), 2);
    }

    #[test]
    fn memory_units_cap_loads() {
        // 4 independent loads, 2 memory units: 2 cycles even at 4-issue.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        for _ in 0..4 {
            let n = g.add_node(OpKind::Load);
            g.add_data_edge(x, n).unwrap();
        }
        let prog = compile(&g, &Machine::paper_default());
        assert_eq!(prog.cycles(), 2);
    }

    #[test]
    fn dependences_serialize() {
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let mut prev = x;
        for _ in 0..5 {
            let n = g.add_node(OpKind::Not);
            g.add_data_edge(prev, n).unwrap();
            prev = n;
        }
        let prog = compile(&g, &Machine::paper_default());
        assert_eq!(prog.cycles(), 5);
    }

    #[test]
    fn schedule_is_valid_and_complete() {
        let g = mediabench(&mediabench_apps()[3], 1);
        let prog = compile(&g, &Machine::paper_default());
        assert!(prog.schedule().validate(&g).is_ok());
        assert!(prog.cycles() >= (g.op_count() as u32).div_ceil(4));
    }

    #[test]
    fn temporal_edges_cost_cycles_when_tight() {
        // Two independent 2-chains; tie the end of one before the start of
        // the other with a temporal edge: makespan doubles.
        let mut g = Cdfg::new();
        let x = g.add_node(OpKind::Input);
        let a1 = g.add_node(OpKind::Not);
        let a2 = g.add_node(OpKind::Not);
        let b1 = g.add_node(OpKind::Not);
        let b2 = g.add_node(OpKind::Not);
        g.add_data_edge(x, a1).unwrap();
        g.add_data_edge(a1, a2).unwrap();
        g.add_data_edge(x, b1).unwrap();
        g.add_data_edge(b1, b2).unwrap();
        let base = compile(&g, &Machine::paper_default()).cycles();
        g.add_temporal_edge(a2, b1).unwrap();
        let constrained = compile(&g, &Machine::paper_default()).cycles();
        assert_eq!(base, 2);
        assert_eq!(constrained, 4);
    }
}
