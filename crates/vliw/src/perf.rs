//! Performance-overhead measurement.

use localwm_cdfg::Cdfg;

use crate::{compile, Machine};

/// Baseline-vs-watermarked cycle comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfComparison {
    /// Cycles of the unwatermarked program.
    pub base_cycles: u32,
    /// Cycles of the watermarked program.
    pub marked_cycles: u32,
}

impl PerfComparison {
    /// Overhead as a percentage (the paper's "Perf. OH" column).
    pub fn overhead_percent(&self) -> f64 {
        if self.base_cycles == 0 {
            return 0.0;
        }
        100.0 * (f64::from(self.marked_cycles) - f64::from(self.base_cycles))
            / f64::from(self.base_cycles)
    }
}

/// Compiles both graphs and reports the execution-time increase the
/// watermark induced.
pub fn overhead_percent(base: &Cdfg, marked: &Cdfg, machine: &Machine) -> PerfComparison {
    PerfComparison {
        base_cycles: compile(base, machine).cycles(),
        marked_cycles: compile(marked, machine).cycles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::generators::{mediabench, mediabench_apps};

    #[test]
    fn identical_graphs_have_zero_overhead() {
        let g = mediabench(&mediabench_apps()[0], 0);
        let cmp = overhead_percent(&g, &g, &Machine::paper_default());
        assert_eq!(cmp.base_cycles, cmp.marked_cycles);
        assert_eq!(cmp.overhead_percent(), 0.0);
    }

    #[test]
    fn a_few_temporal_edges_cost_little() {
        let base = mediabench(&mediabench_apps()[1], 0);
        let mut marked = base.clone();
        // Tie a handful of far-apart slack pairs together.
        let schedulable: Vec<_> = marked
            .node_ids()
            .filter(|&n| marked.kind(n).is_schedulable())
            .collect();
        let mut added = 0;
        let mut i = 0;
        while added < 5 && i + 40 < schedulable.len() {
            let (a, b) = (schedulable[i], schedulable[i + 40]);
            if marked
                .add_edge_acyclic(localwm_cdfg::EdgeKind::Temporal, a, b)
                .is_ok()
            {
                added += 1;
            }
            i += 17;
        }
        assert!(added > 0);
        let cmp = overhead_percent(&base, &marked, &Machine::paper_default());
        assert!(cmp.marked_cycles >= cmp.base_cycles);
        assert!(
            cmp.overhead_percent() < 20.0,
            "slack edges should be cheap, got {}%",
            cmp.overhead_percent()
        );
    }
}
