//! The VLIW evaluation machine.
//!
//! The paper measures the performance overhead of scheduling watermarks on
//! programs "compiled for a four-issue very long instruction word machine
//! with four arithmetic-logic units, two branch and two memory units"
//! (§V). This crate models that machine and compiles CDFGs onto it with a
//! cycle-accurate list scheduler, so watermark overhead can be measured as
//! an execution-cycle ratio.
//!
//! The 8-KB cache of the original testbed is intentionally omitted: the
//! watermark's overhead comes from added unit operations and serialization
//! edges — issue-slot and dependence pressure — which the resource model
//! captures; a cache would add identical latency to the baseline and the
//! watermarked binary (see `DESIGN.md` §4).
//!
//! # Example
//!
//! ```
//! use localwm_cdfg::generators::{mediabench, mediabench_apps};
//! use localwm_vliw::{compile, Machine};
//!
//! let g = mediabench(&mediabench_apps()[0], 0);
//! let prog = compile(&g, &Machine::paper_default());
//! assert!(prog.cycles() > 0);
//! assert_eq!(prog.schedule().iter().count(), g.op_count());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compile;
mod machine;
mod perf;

pub use compile::{compile, compile_in, CompiledProgram};
pub use machine::Machine;
pub use perf::{overhead_percent, PerfComparison};
