//! Machine description.

use localwm_sched::OpClass;

/// A VLIW machine: a total issue width plus per-class functional-unit
/// counts. Multiplies execute on the ALUs (the paper's machine description
/// lists only ALU, branch and memory units).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Machine {
    issue_width: usize,
    alus: usize,
    branch_units: usize,
    memory_units: usize,
}

impl Machine {
    /// The paper's evaluation machine: 4-issue, 4 ALUs, 2 branch units,
    /// 2 memory units.
    pub fn paper_default() -> Self {
        Machine {
            issue_width: 4,
            alus: 4,
            branch_units: 2,
            memory_units: 2,
        }
    }

    /// A custom machine.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero.
    pub fn new(issue_width: usize, alus: usize, branch_units: usize, memory_units: usize) -> Self {
        assert!(
            issue_width > 0 && alus > 0 && branch_units > 0 && memory_units > 0,
            "machine parameters must be positive"
        );
        Machine {
            issue_width,
            alus,
            branch_units,
            memory_units,
        }
    }

    /// Ops issued per cycle, across all classes.
    pub fn issue_width(&self) -> usize {
        self.issue_width
    }

    /// Functional units available for an operation class.
    pub fn units_for(&self, class: OpClass) -> usize {
        match class {
            OpClass::Alu | OpClass::Multiplier => self.alus,
            OpClass::Memory => self.memory_units,
            OpClass::Branch => self.branch_units,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_machine_shape() {
        let m = Machine::paper_default();
        assert_eq!(m.issue_width(), 4);
        assert_eq!(m.units_for(OpClass::Alu), 4);
        assert_eq!(m.units_for(OpClass::Multiplier), 4);
        assert_eq!(m.units_for(OpClass::Branch), 2);
        assert_eq!(m.units_for(OpClass::Memory), 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_issue_width_panics() {
        let _ = Machine::new(0, 1, 1, 1);
    }
}
