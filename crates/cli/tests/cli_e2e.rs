//! End-to-end flows through the real `localwm` binary: generate → embed →
//! detect on disk, the typed no-incomparable-pairs diagnostic, and a full
//! serve/request round trip over a loopback socket.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};

fn localwm() -> Command {
    Command::new(env!("CARGO_BIN_EXE_localwm"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("localwm-cli-e2e-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn run_ok(cmd: &mut Command) -> String {
    let out = cmd.output().expect("spawn localwm");
    assert!(
        out.status.success(),
        "command failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf-8 stdout")
}

#[test]
fn gen_embed_detect_round_trips_on_disk() {
    let dir = tmp_dir("flow");
    let design = dir.join("iir4.cdfg");
    let schedule = dir.join("schedule.txt");

    run_ok(localwm().args(["gen", "iir4", "-o", design.to_str().unwrap()]));
    let out = run_ok(localwm().args([
        "embed",
        design.to_str().unwrap(),
        "--author",
        "cli-e2e",
        "-o",
        schedule.to_str().unwrap(),
    ]));
    assert!(out.contains("embedded"), "embed reports its edges: {out}");
    let out = run_ok(localwm().args([
        "detect",
        design.to_str().unwrap(),
        schedule.to_str().unwrap(),
        "--author",
        "cli-e2e",
    ]));
    assert!(
        out.contains("MATCH"),
        "detect confirms the watermark: {out}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serial_designs_get_the_typed_no_incomparable_pairs_diagnostic() {
    let dir = tmp_dir("serial");
    let design = dir.join("linear-ge.cdfg");
    run_ok(localwm().args(["gen", "linear-ge", "-o", design.to_str().unwrap()]));
    let out = localwm()
        .args(["embed", design.to_str().unwrap(), "--author", "cli-e2e"])
        .output()
        .expect("spawn localwm");
    assert!(!out.status.success(), "embed on a serial design fails");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("no incomparable slack pairs"),
        "typed diagnostic names the failure: {stderr}"
    );
    assert!(
        stderr.contains("template watermark"),
        "diagnostic suggests the fallback scheme: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

struct ServerProc {
    child: Child,
    addr: String,
    // Keeps the stdout pipe open so the server's shutdown message doesn't
    // hit a closed pipe.
    _stdout: BufReader<std::process::ChildStdout>,
}

fn spawn_server(metrics_out: Option<&Path>) -> ServerProc {
    let mut cmd = localwm();
    cmd.args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"]);
    if let Some(path) = metrics_out {
        cmd.args(["--metrics-out", path.to_str().unwrap()]);
    }
    let mut child = cmd
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn localwm serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read listen line");
    let addr = first
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on listen line")
        .to_owned();
    ServerProc {
        child,
        addr,
        _stdout: reader,
    }
}

#[test]
fn serve_and_request_round_trip_over_the_wire() {
    let dir = tmp_dir("serve");
    let design = dir.join("iir4.cdfg");
    let schedule = dir.join("schedule.txt");
    let metrics = dir.join("metrics.json");
    run_ok(localwm().args(["gen", "iir4", "-o", design.to_str().unwrap()]));

    let mut server = spawn_server(Some(&metrics));
    let addr = server.addr.clone();

    let out = run_ok(localwm().args([
        "request",
        "embed",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
        "--author",
        "cli-e2e",
        "--schedule-out",
        schedule.to_str().unwrap(),
    ]));
    assert!(out.contains("\"ok\": true"), "embed succeeded: {out}");
    assert!(schedule.exists(), "--schedule-out wrote the schedule");

    let out = run_ok(localwm().args([
        "request",
        "detect",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
        "--author",
        "cli-e2e",
        "--schedule",
        schedule.to_str().unwrap(),
    ]));
    assert!(out.contains("\"match\": true"), "detect matched: {out}");

    let out = run_ok(localwm().args(["request", "stats", "--addr", &addr]));
    assert!(
        out.contains("\"cache\""),
        "stats exposes cache counters: {out}"
    );

    let out = run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
    assert!(
        out.contains("\"drained_jobs\""),
        "shutdown reports drain: {out}"
    );

    let status = server.child.wait().expect("server exit");
    assert!(status.success(), "server exits cleanly after shutdown");
    let dumped = std::fs::read_to_string(&metrics).expect("metrics dump exists");
    assert!(dumped.contains("\"requests\""), "metrics dump has counters");
    std::fs::remove_dir_all(&dir).ok();
}

fn spawn_gateway(backends: &str) -> ServerProc {
    let mut child = localwm()
        .args([
            "gateway",
            "--backends",
            backends,
            "--addr",
            "127.0.0.1:0",
            "--health-interval-ms",
            "off",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn localwm gateway");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read listen line");
    assert!(
        first.starts_with("localwm-gateway routing"),
        "gateway announces its fleet: {first}"
    );
    let addr = first
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on listen line")
        .to_owned();
    ServerProc {
        child,
        addr,
        _stdout: reader,
    }
}

/// The full cluster quickstart through real processes: two backends, one
/// gateway, keep-alive `--repeat` requests routed through it, fleet-wide
/// `cluster_stats`, and a gateway drain that leaves the backends running.
#[test]
fn gateway_routes_requests_and_aggregates_cluster_stats() {
    let dir = tmp_dir("gateway");
    let design = dir.join("iir4.cdfg");
    run_ok(localwm().args(["gen", "iir4", "-o", design.to_str().unwrap()]));

    let mut b0 = spawn_server(None);
    let mut b1 = spawn_server(None);
    let backends = format!("b0={},b1={}", b0.addr, b1.addr);
    let mut gw = spawn_gateway(&backends);
    let addr = gw.addr.clone();

    let out = run_ok(localwm().args([
        "request",
        "timing",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
        "--repeat",
        "4",
    ]));
    assert!(
        out.contains("\"ok\": true"),
        "timing routed upstream: {out}"
    );
    assert!(
        out.contains("repeat 4 over one keep-alive connection"),
        "--repeat prints the warm-path summary: {out}"
    );

    let out = run_ok(localwm().args(["request", "cluster_stats", "--addr", &addr]));
    assert!(out.contains("\"ok\": true"), "cluster_stats ok: {out}");
    assert!(
        out.contains("\"aggregate\"") && out.contains("\"gateway\""),
        "cluster_stats carries fleet sections: {out}"
    );

    // Draining the gateway must not touch the backends.
    run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
    let status = gw.child.wait().expect("gateway exit");
    assert!(status.success(), "gateway exits cleanly after shutdown");
    for b in [&mut b0, &mut b1] {
        let addr = b.addr.clone();
        let out = run_ok(localwm().args(["request", "stats", "--addr", &addr]));
        assert!(
            out.contains("\"ok\": true"),
            "backend survives gateway drain: {out}"
        );
        run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
        assert!(b.child.wait().expect("backend exit").success());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `localwm chaos --gateway` runs the seeded backend-kill scenario end to
/// end and reports a clean invariant sheet on a healthy seed.
#[test]
fn gateway_chaos_subcommand_reports_clean_invariants() {
    let dir = tmp_dir("gw-chaos");
    let report = dir.join("report.json");
    let out = run_ok(localwm().args([
        "chaos",
        "--gateway",
        "--seed",
        "5",
        "--requests",
        "12",
        "--report-out",
        report.to_str().unwrap(),
    ]));
    assert!(
        out.contains("invariants: all held"),
        "clean run reports held invariants: {out}"
    );
    let dumped = std::fs::read_to_string(&report).expect("report written");
    assert!(
        dumped.contains("\"fates_by_kind\"") && dumped.contains("\"seed\": 5"),
        "report carries the seeded fate accounting: {dumped}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

fn spawn_store_server(store_dir: &Path) -> ServerProc {
    let mut child = localwm()
        .args([
            "serve",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--store-dir",
            store_dir.to_str().unwrap(),
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn localwm serve --store-dir");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut reader = BufReader::new(stdout);
    let mut first = String::new();
    reader.read_line(&mut first).expect("read listen line");
    let addr = first
        .trim()
        .rsplit(' ')
        .next()
        .expect("address on listen line")
        .to_owned();
    ServerProc {
        child,
        addr,
        _stdout: reader,
    }
}

/// The persistence quickstart through real processes: a `--store-dir`
/// server populates its store, the `localwm store` maintenance commands
/// walk it (`ls`, `get`, `verify`, `compact`), a restarted server answers
/// byte-identically from the store, and `verify` exits nonzero once a
/// record's bytes are flipped.
#[test]
fn store_subcommands_manage_a_populated_store_dir() {
    let dir = tmp_dir("store");
    let design = dir.join("iir4.cdfg");
    let store_dir = dir.join("store");
    run_ok(localwm().args(["gen", "iir4", "-o", design.to_str().unwrap()]));

    // First life: a timing request writes the design through to the store.
    let mut server = spawn_store_server(&store_dir);
    let addr = server.addr.clone();
    let first_life = run_ok(localwm().args([
        "request",
        "timing",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
    ]));
    assert!(first_life.contains("\"ok\": true"));
    run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
    assert!(server.child.wait().expect("server exit").success());

    // The maintenance walk sees the design + alias pair.
    let sd = store_dir.to_str().unwrap();
    let ls = run_ok(localwm().args(["store", "ls", "--dir", sd]));
    assert!(
        ls.contains("design") && ls.contains("alias") && ls.contains("2 record(s)"),
        "ls lists both records: {ls}"
    );
    let hash = ls
        .lines()
        .find(|l| l.starts_with("design"))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("design hash in ls output")
        .to_owned();
    let got = run_ok(localwm().args(["store", "get", &hash, "--dir", sd]));
    assert_eq!(
        got,
        std::fs::read_to_string(&design).unwrap(),
        "get round-trips the stored design to its exact CDFG text"
    );
    let verify = run_ok(localwm().args(["store", "verify", "--dir", sd]));
    assert!(verify.contains("verified 2 record(s)"), "{verify}");
    let compact = run_ok(localwm().args(["store", "compact", "--dir", sd]));
    assert!(compact.contains("compacted 2 live record(s)"), "{compact}");

    // Second life, same store: byte-identical response, no reparse (the
    // store block reports hits and zero new puts).
    let mut server = spawn_store_server(&store_dir);
    let addr = server.addr.clone();
    let second_life = run_ok(localwm().args([
        "request",
        "timing",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
    ]));
    let body = |out: &str| {
        out.lines()
            .take_while(|l| !l.starts_with("repeat "))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        body(&second_life),
        body(&first_life),
        "a warm restart serves byte-identical responses"
    );
    let stats = run_ok(localwm().args(["request", "stats", "--addr", &addr]));
    assert!(
        stats.contains("\"store\"") && stats.contains("\"puts\": 0"),
        "stats exposes the store block with no reparse-writes: {stats}"
    );
    run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
    assert!(server.child.wait().expect("server exit").success());

    // Flip one payload byte behind the index: verify must exit nonzero and
    // name the corrupt segment.
    let seg = store_dir.join("seg-000000.lwm");
    let mut bytes = std::fs::read(&seg).expect("read segment");
    let last = bytes.len() - 1;
    bytes[last] ^= 0x01;
    std::fs::write(&seg, bytes).expect("corrupt segment");
    let out = localwm()
        .args(["store", "verify", "--dir", sd])
        .output()
        .expect("spawn verify");
    assert!(
        !out.status.success(),
        "verify exits nonzero on checksum mismatch"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("seg-000000.lwm"),
        "verify names the corrupt segment: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `localwm request --binary` negotiates the framed encoding and prints
/// the same response a JSON connection would.
#[test]
fn request_binary_flag_round_trips_through_the_framed_encoding() {
    let dir = tmp_dir("binary");
    let design = dir.join("iir4.cdfg");
    run_ok(localwm().args(["gen", "iir4", "-o", design.to_str().unwrap()]));
    let mut server = spawn_server(None);
    let addr = server.addr.clone();

    let json = run_ok(localwm().args([
        "request",
        "timing",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
    ]));
    let binary = run_ok(localwm().args([
        "request",
        "timing",
        "--addr",
        &addr,
        "--design",
        design.to_str().unwrap(),
        "--binary",
    ]));
    assert_eq!(binary, json, "both encodings print the same response");

    let stats = run_ok(localwm().args(["request", "stats", "--addr", &addr]));
    assert!(
        stats.contains("\"binary_conns\": 1"),
        "the binary connection was counted: {stats}"
    );
    run_ok(localwm().args(["request", "shutdown", "--addr", &addr]));
    assert!(server.child.wait().expect("server exit").success());
    std::fs::remove_dir_all(&dir).ok();
}
