//! `localwm gateway` — run the routing tier over N backends.

use localwm_gateway::{BackendSpec, GatewayConfig};

use crate::commands::flag_value;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad value for {flag}: `{raw}`")),
    }
}

/// Runs `localwm gateway --backends [name=]H:P,[name=]H:P,... [--addr A]
/// [--replicas N] [--max-retries N] [--backoff-base-ms N]
/// [--backoff-cap-ms N] [--recv-timeout-ms N] [--health-interval-ms N|off]`.
///
/// The gateway speaks the backend protocol unchanged; point `localwm
/// request` at it like any server. `cluster_stats` aggregates the fleet.
///
/// # Errors
///
/// Returns a message for bad flags or bind failures.
pub fn gateway(args: &[String]) -> Result<(), String> {
    let raw = flag_value(args, "--backends")
        .ok_or("gateway: --backends [name=]host:port[,...] is required")?;
    let backends: Vec<BackendSpec> = raw
        .split(',')
        .filter(|s| !s.trim().is_empty())
        .map(BackendSpec::parse)
        .collect::<Result<_, _>>()?;

    let mut cfg = GatewayConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7272")
            .to_owned(),
        backends,
        ..GatewayConfig::default()
    };
    if let Some(n) = parse_flag::<usize>(args, "--replicas")? {
        cfg.replicas = n.max(1);
    }
    if let Some(n) = parse_flag::<u32>(args, "--max-retries")? {
        cfg.max_retries = n;
    }
    if let Some(n) = parse_flag::<u64>(args, "--backoff-base-ms")? {
        cfg.backoff_base_ms = n;
    }
    if let Some(n) = parse_flag::<u64>(args, "--backoff-cap-ms")? {
        cfg.backoff_cap_ms = n;
    }
    if let Some(n) = parse_flag::<u64>(args, "--recv-timeout-ms")? {
        cfg.recv_timeout_ms = n;
    }
    cfg.health_interval_ms = match flag_value(args, "--health-interval-ms") {
        None => cfg.health_interval_ms,
        Some("off") => None,
        Some(raw) => Some(
            raw.parse::<u64>()
                .map_err(|_| format!("bad value for --health-interval-ms: `{raw}`"))?,
        ),
    };

    let names: Vec<String> = cfg.backends.iter().map(|b| b.name.clone()).collect();
    let handle = localwm_gateway::start(cfg).map_err(|e| format!("gateway start failed: {e}"))?;
    println!(
        "localwm-gateway routing {} backends [{}] on {}",
        names.len(),
        names.join(", "),
        handle.addr()
    );
    handle.join();
    println!("localwm-gateway stopped");
    Ok(())
}
