//! `localwm serve` / `localwm request` — the service front end.

use std::fs;
use std::time::Duration;

use localwm_serve::{Client, Request, RequestKind, ServeConfig};
use serde::Value;

type CliResult = Result<(), String>;

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, String> {
    match flag_value(args, flag) {
        None => Ok(None),
        Some(raw) => raw
            .parse::<T>()
            .map(Some)
            .map_err(|_| format!("bad value for {flag}: `{raw}`")),
    }
}

/// `localwm serve [--addr A] [--workers N] [--queue-depth N] [--cache-cap N]
/// [--default-timeout-ms N] [--session-idle-ms N] [--metrics-out FILE]
/// [--store-dir DIR]`
pub fn serve(args: &[String]) -> CliResult {
    let mut cfg = ServeConfig {
        addr: flag_value(args, "--addr")
            .unwrap_or("127.0.0.1:7171")
            .to_owned(),
        ..ServeConfig::default()
    };
    if let Some(n) = parse_flag::<usize>(args, "--workers")? {
        cfg.workers = n;
    }
    if let Some(n) = parse_flag::<usize>(args, "--queue-depth")? {
        cfg.queue_depth = n;
    }
    if let Some(n) = parse_flag::<usize>(args, "--cache-cap")? {
        cfg.cache_cap = n;
    }
    cfg.default_timeout_ms = parse_flag::<u64>(args, "--default-timeout-ms")?;
    cfg.session_idle_ms = parse_flag::<u64>(args, "--session-idle-ms")?;
    cfg.metrics_out = flag_value(args, "--metrics-out").map(str::to_owned);
    cfg.store_dir = flag_value(args, "--store-dir").map(str::to_owned);

    let handle = localwm_serve::start(cfg).map_err(|e| format!("bind failed: {e}"))?;
    println!("localwm-serve listening on {}", handle.addr());
    handle.join();
    println!("localwm-serve stopped");
    Ok(())
}

/// `localwm request <kind> [--addr A] [--design FILE] [--author ID]
/// [--schedule FILE] [--fraction F] [--k K] [--deadline N] [--lo N --hi N]
/// [--samples N] [--seed N] [--attack KIND] [--budget B] [--budgets LIST]
/// [--timeout-ms N] [--schedule-out FILE]
/// [--repeat N] [--session ID] [--edits FILE] [--binary]`
///
/// `--binary` negotiates the `LWMB1` framed encoding for the connection;
/// responses decode to the same bytes, so output is unchanged.
///
/// Or: `localwm request --edit-trace FILE --design FILE [--session ID]
/// [--addr A]` — replays a whole edit trace (see `localwm-testkit`'s trace
/// grammar) through one held session.
///
/// `--repeat N` issues the same request N times over one keep-alive
/// connection and prints a cold-vs-warm latency summary after the (last)
/// response; with a gateway address this exercises the pooled route path.
pub fn request(args: &[String]) -> CliResult {
    if args.iter().any(|a| a == "--edit-trace") {
        return replay_edit_trace(args);
    }
    let kind_raw = args.first().map(String::as_str).ok_or(
        "usage: localwm request <embed|detect|analyze|timing|attack|strength|open|mutate|close|stats|cluster_stats|shutdown> ...",
    )?;
    let kind =
        RequestKind::parse(kind_raw).ok_or_else(|| format!("unknown request kind `{kind_raw}`"))?;
    let args = &args[1..];
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7171");

    let mut req = Request::new(kind);
    req.id = parse_flag::<u64>(args, "--id")?;
    if let Some(path) = flag_value(args, "--design") {
        req.design = Some(fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?);
    }
    req.author = flag_value(args, "--author").map(str::to_owned);
    if let Some(path) = flag_value(args, "--schedule") {
        req.schedule = Some(fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?);
    }
    req.session = flag_value(args, "--session").map(str::to_owned);
    if let Some(path) = flag_value(args, "--edits") {
        req.edits = Some(fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?);
    }
    req.fraction = parse_flag::<f64>(args, "--fraction")?;
    req.k = parse_flag::<usize>(args, "--k")?;
    req.deadline = parse_flag::<u32>(args, "--deadline")?;
    req.lo = parse_flag::<u64>(args, "--lo")?;
    req.hi = parse_flag::<u64>(args, "--hi")?;
    req.samples = parse_flag::<usize>(args, "--samples")?;
    req.seed = parse_flag::<u64>(args, "--seed")?;
    req.attack = flag_value(args, "--attack").map(str::to_owned);
    req.budget = parse_flag::<f64>(args, "--budget")?;
    req.budgets = flag_value(args, "--budgets").map(str::to_owned);
    req.timeout_ms = parse_flag::<u64>(args, "--timeout-ms")?;

    let repeat = parse_flag::<usize>(args, "--repeat")?.unwrap_or(1).max(1);

    let wait = Duration::from_secs(5);
    let mut client = if args.iter().any(|a| a == "--binary") {
        Client::connect_binary_within(addr, wait)
    } else {
        Client::connect_within(addr, wait)
    }
    .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let (resp, latencies) = client
        .call_repeated(&req, repeat)
        .map_err(|e| format!("request failed: {e}"))?;

    if let Some(out) = flag_value(args, "--schedule-out") {
        match resp.result_field("schedule") {
            Some(Value::Str(text)) => {
                fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
            }
            _ => return Err("response carries no schedule text".to_owned()),
        }
    }

    let rendered = serde_json::to_string_pretty(&resp).expect("response serialization");
    println!("{rendered}");
    if repeat > 1 {
        let cold = latencies[0];
        let warm = &latencies[1..];
        let min = warm.iter().min().copied().unwrap_or_default();
        let max = warm.iter().max().copied().unwrap_or_default();
        let mean = warm.iter().sum::<Duration>() / u32::try_from(warm.len()).unwrap_or(1);
        println!(
            "repeat {repeat} over one keep-alive connection: cold {:?}; \
             warm min {min:?} / mean {mean:?} / max {max:?}",
            cold
        );
    }
    if resp.ok {
        Ok(())
    } else {
        let detail = resp
            .error
            .as_ref()
            .map_or_else(|| "unknown error".to_owned(), ToString::to_string);
        Err(format!("server returned an error: {detail}"))
    }
}

/// Replays an edit trace through one held session: `open` with the design,
/// one `mutate` per edit batch, `timing`/`analyze` queries as written, and
/// a final `close`. One response line is printed per step (typed errors
/// included — a failed edit line leaves the session on its last good
/// state), then a summary from the `close` acknowledgement.
fn replay_edit_trace(args: &[String]) -> CliResult {
    let path = flag_value(args, "--edit-trace").ok_or("--edit-trace needs a file path")?;
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let steps = localwm_testkit::trace::parse_trace(&text).map_err(|e| format!("{path}: {e}"))?;
    let design_path = flag_value(args, "--design").ok_or("--edit-trace needs --design FILE")?;
    let design =
        fs::read_to_string(design_path).map_err(|e| format!("reading {design_path}: {e}"))?;
    let session = flag_value(args, "--session").unwrap_or("cli-trace");
    let addr = flag_value(args, "--addr").unwrap_or("127.0.0.1:7171");

    let mut client = Client::connect_within(addr, Duration::from_secs(5))
        .map_err(|e| format!("connecting to {addr}: {e}"))?;
    let call = |client: &mut Client, req: &Request| {
        client.call(req).map_err(|e| format!("request failed: {e}"))
    };

    let mut open = Request::new(RequestKind::Open);
    open.id = Some(0);
    open.session = Some(session.to_owned());
    open.design = Some(design);
    let resp = call(&mut client, &open)?;
    if !resp.ok {
        return Err(format!("open failed: {}", resp.to_line()));
    }

    let mut failures = 0usize;
    for (i, step) in steps.iter().enumerate() {
        use localwm_testkit::trace::TraceStep;
        let mut req = match step {
            TraceStep::Edits(edits) => {
                let mut r = Request::new(RequestKind::Mutate);
                r.edits = Some(edits.clone());
                r
            }
            TraceStep::Timing { deadline } => {
                let mut r = Request::new(RequestKind::Timing);
                r.deadline = *deadline;
                r
            }
            TraceStep::Analyze { samples, seed } => {
                let mut r = Request::new(RequestKind::Analyze);
                r.samples = Some(*samples);
                r.seed = Some(*seed);
                r
            }
        };
        req.id = Some(i as u64 + 1);
        req.session = Some(session.to_owned());
        let resp = call(&mut client, &req)?;
        if !resp.ok {
            failures += 1;
        }
        println!("{}", resp.to_line());
    }

    let mut close = Request::new(RequestKind::Close);
    close.id = Some(steps.len() as u64 + 1);
    close.session = Some(session.to_owned());
    let resp = call(&mut client, &close)?;
    let mutations = resp.result_field("mutations").map_or_else(
        || "?".to_owned(),
        |v| serde_json::to_string(v).expect("json"),
    );
    println!(
        "replayed {} steps over session `{session}` ({failures} typed errors, {mutations} mutate requests)",
        steps.len()
    );
    Ok(())
}
