//! `localwm attack` / `localwm strength` — the adversarial robustness
//! front end.
//!
//! `attack` runs one seeded, budgeted transformation against a freshly
//! watermarked schedule and reports what evidence survives; `strength`
//! sweeps every attack kind over a budget grid and prints the design's
//! robustness table (or, with `--corpus DIR`, the corpus-wide aggregate).
//! Both are pure functions of `(design, author, seed)` — rerunning with
//! the same arguments reproduces the same bytes.

use std::fs;
use std::path::PathBuf;

use localwm_attack::{
    aggregate, attack_once_in, strength_report_in, AttackConfig, AttackKind, BudgetRow,
    StrengthConfig, StrengthReport, DEFAULT_BUDGETS,
};
use localwm_core::Signature;
use localwm_engine::{DesignContext, Parallelism};
use localwm_sched::write_schedule;
use serde::{object, Serialize, Value};

use crate::commands::{flag_value, load_design, positional, signature, wm_config};

type CliResult = Result<(), String>;

fn parse_seed(args: &[String]) -> Result<u64, String> {
    match flag_value(args, "--seed") {
        None => Ok(0),
        Some(raw) => raw.parse().map_err(|_| format!("bad seed `{raw}`")),
    }
}

fn parse_budget_value(raw: &str) -> Result<f64, String> {
    let b: f64 = raw
        .trim()
        .parse()
        .map_err(|_| format!("bad budget `{raw}`"))?;
    if !(0.0..=1.0).contains(&b) {
        return Err(format!("budget `{raw}` outside [0, 1]"));
    }
    Ok(b)
}

fn parse_budgets(args: &[String]) -> Result<Vec<f64>, String> {
    match flag_value(args, "--budgets") {
        None => Ok(DEFAULT_BUDGETS.to_vec()),
        Some(raw) => {
            let budgets: Vec<f64> = raw
                .split(',')
                .filter(|s| !s.trim().is_empty())
                .map(parse_budget_value)
                .collect::<Result<_, _>>()?;
            if budgets.is_empty() {
                return Err("--budgets lists no budget levels".to_owned());
            }
            Ok(budgets)
        }
    }
}

/// `localwm attack <design.cdfg> --author ID [--attack KIND] [--budget B]
/// [--seed N] [--fraction F | --k K] [-o schedule.txt] [--trace-out FILE]`
pub fn attack(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("attack: missing design file")?;
    let ctx = DesignContext::new(load_design(path)?);
    let sig = signature(args)?;
    let kind_raw = flag_value(args, "--attack").unwrap_or("reschedule");
    let kind = AttackKind::parse(kind_raw).ok_or_else(|| {
        format!("unknown attack kind `{kind_raw}` (reschedule|rewire|resynth|strip)")
    })?;
    let budget = match flag_value(args, "--budget") {
        None => 0.25,
        Some(raw) => parse_budget_value(raw)?,
    };
    let seed = parse_seed(args)?;
    let run = attack_once_in(
        &ctx,
        &sig,
        Parallelism::from_env(),
        &AttackConfig { kind, budget, seed },
        &wm_config(args)?,
    )
    .map_err(|e| e.to_string())?;

    let cell = &run.cell;
    println!("attack          {kind} at budget {budget} (seed {seed})");
    println!("edits applied   {}", cell.edits);
    println!("wm edges        {}", run.wm_edges);
    println!(
        "constraints     {}/{} still satisfied",
        cell.satisfied, cell.checked
    );
    println!(
        "schedule length {} -> {} ({:+} steps)",
        run.baseline_length, cell.schedule_length, cell.steps_delta
    );
    println!(
        "coincidence     ~10^{:.1} (strength {:.6})",
        cell.log10_pc, cell.strength
    );
    if let Some(out) = flag_value(args, "-o") {
        let text = write_schedule(&run.outcome.graph, &run.outcome.schedule);
        fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote attacked schedule to {out}");
    }
    if let Some(out) = flag_value(args, "--trace-out") {
        fs::write(out, run.outcome.trace.render()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote attack trace to {out}");
    }
    if cell.survived {
        println!("SURVIVED: the watermark still attributes authorship");
    } else {
        println!("DEFEATED: detection no longer attributes authorship");
    }
    Ok(())
}

/// `localwm strength <design.cdfg> --author ID [--budgets B,B,...] [--seed N]
/// [--fraction F | --k K] [--json] [-o FILE]`, or
/// `localwm strength --corpus DIR --author ID [...]` for the corpus-wide
/// aggregated table.
pub fn strength(args: &[String]) -> CliResult {
    let sig = signature(args)?;
    let cfg = StrengthConfig {
        budgets: parse_budgets(args)?,
        seed: parse_seed(args)?,
        wm: wm_config(args)?,
    };
    let par = Parallelism::from_env();
    let json = args.iter().any(|a| a == "--json");
    let out = flag_value(args, "-o");

    if let Some(dir) = flag_value(args, "--corpus") {
        return corpus_strength(dir, &sig, par, &cfg, json, out);
    }

    let path = positional(args, 0).ok_or("strength: missing design file (or --corpus DIR)")?;
    let ctx = DesignContext::new(load_design(path)?);
    let report = strength_report_in(&ctx, &sig, par, &cfg).map_err(|e| e.to_string())?;
    if json {
        emit(&report.to_value(), out)
    } else {
        println!("design          {path}");
        print_report(&report);
        Ok(())
    }
}

/// Sweeps every `.cdfg` design under `dir` (in name order, so the table is
/// deterministic) and aggregates the per-budget rows corpus-wide. Designs
/// that cannot host the watermark (e.g. fully serial ones) are reported on
/// stderr and skipped, not fatal: their typed error is part of the answer.
fn corpus_strength(
    dir: &str,
    sig: &Signature,
    par: Parallelism,
    cfg: &StrengthConfig,
    json: bool,
    out: Option<&str>,
) -> CliResult {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)
        .map_err(|e| format!("reading {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "cdfg"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("{dir} holds no .cdfg designs"));
    }

    let mut reports: Vec<(String, StrengthReport)> = Vec::new();
    let mut skipped: Vec<(String, String)> = Vec::new();
    for path in &paths {
        let shown = path.to_str().ok_or("non-UTF-8 path in corpus")?;
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or(shown)
            .to_owned();
        let ctx = DesignContext::new(load_design(shown)?);
        match strength_report_in(&ctx, sig, par, cfg) {
            Ok(report) => reports.push((name, report)),
            Err(e) => {
                eprintln!("{name}: skipped ({e})");
                skipped.push((name, e.to_string()));
            }
        }
    }
    if reports.is_empty() {
        return Err("no design in the corpus accepted the watermark".to_owned());
    }
    let rows = aggregate(reports.iter().map(|(_, r)| r));

    if json {
        let designs: Vec<Value> = reports
            .iter()
            .map(|(name, report)| {
                object(vec![
                    ("name", name.to_value()),
                    ("report", report.to_value()),
                ])
            })
            .collect();
        let skips: Vec<Value> = skipped
            .iter()
            .map(|(name, error)| {
                object(vec![("name", name.to_value()), ("error", error.to_value())])
            })
            .collect();
        let value = object(vec![
            ("seed", cfg.seed.to_value()),
            ("designs", Value::Array(designs)),
            ("skipped", Value::Array(skips)),
            ("aggregate", rows.to_value()),
        ]);
        emit(&value, out)
    } else {
        for (name, report) in &reports {
            println!("design          {name}");
            print_report(report);
            println!();
        }
        println!(
            "corpus          {} design(s), {} skipped",
            reports.len(),
            skipped.len()
        );
        print_rows(&rows);
        Ok(())
    }
}

fn print_report(report: &StrengthReport) {
    println!("operations      {}", report.ops);
    println!("wm edges        {}", report.wm_edges);
    println!(
        "baseline        length {}, coincidence ~10^{:.1}",
        report.baseline_length, report.baseline_log10_pc
    );
    println!("seed            {}", report.seed);
    print_rows(&report.rows);
}

fn print_rows(rows: &[BudgetRow]) {
    println!(
        "{:>8}  {:>9}  {:>9}  {:>11}",
        "budget", "survival", "strength", "steps-delta"
    );
    for row in rows {
        println!(
            "{:>8.2}  {:>8.0}%  {:>9.6}  {:>+11.2}",
            row.budget,
            100.0 * row.survival_rate,
            row.mean_strength,
            row.mean_steps_delta
        );
    }
}

fn emit(value: &Value, out: Option<&str>) -> CliResult {
    let mut rendered = serde_json::to_string_pretty(value).expect("report serialization");
    rendered.push('\n');
    match out {
        Some(path) => {
            fs::write(path, rendered).map_err(|e| format!("writing {path}: {e}"))?;
            println!("wrote report to {path}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use std::fs;

    use crate::commands::run;

    fn temp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(name);
        let _ = fs::create_dir_all(&dir);
        dir
    }

    #[test]
    fn attack_subcommand_writes_schedule_and_trace() {
        let dir = temp("localwm-cli-attack");
        let design = dir.join("d.cdfg");
        let sched = dir.join("attacked.txt");
        let trace = dir.join("trace.txt");
        let d = design.to_str().unwrap().to_owned();
        run(&["gen".into(), "iir4".into(), "-o".into(), d.clone()]).unwrap();
        run(&[
            "attack".into(),
            d.clone(),
            "--author".into(),
            "cli-attack".into(),
            "--attack".into(),
            "rewire".into(),
            "--budget".into(),
            "0.4".into(),
            "--seed".into(),
            "9".into(),
            "-o".into(),
            sched.to_str().unwrap().into(),
            "--trace-out".into(),
            trace.to_str().unwrap().into(),
        ])
        .unwrap();
        assert!(fs::read_to_string(&sched)
            .unwrap()
            .starts_with("# localwm schedule v1"));
        assert!(fs::read_to_string(&trace)
            .unwrap()
            .starts_with("attack rewire"));
        // Unknown kinds and out-of-range budgets are rejected.
        assert!(run(&[
            "attack".into(),
            d.clone(),
            "--author".into(),
            "a".into(),
            "--attack".into(),
            "bogus".into(),
        ])
        .is_err());
        assert!(run(&[
            "attack".into(),
            d,
            "--author".into(),
            "a".into(),
            "--budget".into(),
            "1.5".into(),
        ])
        .is_err());
    }

    #[test]
    fn strength_subcommand_sweeps_one_design() {
        let dir = temp("localwm-cli-strength");
        let design = dir.join("d.cdfg");
        let d = design.to_str().unwrap().to_owned();
        run(&["gen".into(), "iir4".into(), "-o".into(), d.clone()]).unwrap();
        run(&[
            "strength".into(),
            d.clone(),
            "--author".into(),
            "cli-strength".into(),
            "--budgets".into(),
            "0,0.3".into(),
            "--seed".into(),
            "5".into(),
        ])
        .unwrap();
        // Malformed budget lists are rejected.
        assert!(run(&[
            "strength".into(),
            d.clone(),
            "--author".into(),
            "a".into(),
            "--budgets".into(),
            "0,nope".into(),
        ])
        .is_err());
        assert!(run(&[
            "strength".into(),
            d,
            "--author".into(),
            "a".into(),
            "--budgets".into(),
            ", ,".into(),
        ])
        .is_err());
    }

    #[test]
    fn corpus_strength_is_deterministic_and_skips_serial_designs() {
        let dir = temp("localwm-cli-corpus");
        let corpus = dir.join("designs");
        let _ = fs::create_dir_all(&corpus);
        let a = corpus.join("a.cdfg");
        let b = corpus.join("b.cdfg");
        run(&[
            "gen".into(),
            "iir4".into(),
            "-o".into(),
            a.to_str().unwrap().into(),
        ])
        .unwrap();
        // linear-ge is fully serial: it cannot host the watermark and must
        // be skipped with its typed error, not abort the sweep.
        run(&[
            "gen".into(),
            "linear-ge".into(),
            "-o".into(),
            b.to_str().unwrap().into(),
        ])
        .unwrap();
        let sweep = |out: &str| {
            run(&[
                "strength".into(),
                "--corpus".into(),
                corpus.to_str().unwrap().into(),
                "--author".into(),
                "cli-corpus".into(),
                "--budgets".into(),
                "0,0.25".into(),
                "--seed".into(),
                "2".into(),
                "--json".into(),
                "-o".into(),
                out.into(),
            ])
            .unwrap();
        };
        let r1 = dir.join("r1.json");
        let r2 = dir.join("r2.json");
        sweep(r1.to_str().unwrap());
        sweep(r2.to_str().unwrap());
        let j1 = fs::read_to_string(&r1).unwrap();
        assert_eq!(
            j1,
            fs::read_to_string(&r2).unwrap(),
            "corpus sweep must be reproducible"
        );
        assert!(j1.contains("\"aggregate\""));
        assert!(j1.contains("a.cdfg"));
        assert!(j1.contains("\"skipped\""));
        assert!(
            j1.contains("b.cdfg"),
            "serial design lands in the skipped list"
        );
    }
}
