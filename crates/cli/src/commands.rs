//! Subcommand implementations.

use std::fs;
use std::sync::Arc;

use localwm_cdfg::designs::{iir4_parallel, table2_design, table2_designs};
use localwm_cdfg::generators::{mediabench, mediabench_apps};
use localwm_cdfg::{parse_cdfg, write_cdfg, Cdfg};
use localwm_core::{SchedWmConfig, SchedulingWatermarker, Signature};
use localwm_engine::{DesignContext, KindBounds, Parallelism, RecordingProbe};
use localwm_sched::{
    alap_schedule_in, force_directed_schedule_in, list_schedule_in, parse_schedule, write_schedule,
    OpClass, ResourceSet,
};
use localwm_sim::{interpret_in, Inputs};
use localwm_timing::criticality_in;

type CliResult = Result<(), String>;

/// Dispatches a parsed argument vector.
pub fn run(args: &[String]) -> CliResult {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        Some("gen") => gen(&args[1..]),
        Some("info") => info(&args[1..]),
        Some("dot") => dot(&args[1..]),
        Some("embed") => embed(&args[1..]),
        Some("detect") => detect(&args[1..]),
        Some("attack") => crate::attack_cmd::attack(&args[1..]),
        Some("strength") => crate::attack_cmd::strength(&args[1..]),
        Some("schedule") => schedule_cmd(&args[1..]),
        Some("simulate") => simulate(&args[1..]),
        Some("analyze") => analyze(&args[1..]),
        Some("serve") => crate::serve_cmd::serve(&args[1..]),
        Some("gateway") => crate::gateway_cmd::gateway(&args[1..]),
        Some("request") => crate::serve_cmd::request(&args[1..]),
        Some("store") => crate::store_cmd::store(&args[1..]),
        Some("chaos") => crate::chaos_cmd::chaos(&args[1..]),
        Some("help") | None => {
            println!("{HELP}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand `{other}`; try `localwm help`")),
    }
}

const HELP: &str = "localwm — local watermarking of behavioral-synthesis solutions

USAGE:
  localwm gen <design> [--seed N] [-o FILE]
  localwm info <design.cdfg>
  localwm dot <design.cdfg>
  localwm embed <design.cdfg> --author ID [--fraction F | --k K] \\
                [-o schedule.txt] [--marked marked.cdfg]
  localwm detect <design.cdfg> <schedule.txt> --author ID
  localwm attack <design.cdfg> --author ID [--fraction F | --k K] \\
                 [--attack reschedule|rewire|resynth|strip] [--budget B]
                 [--seed N] [-o schedule.txt] [--trace-out FILE]
  localwm strength <design.cdfg> --author ID [--fraction F | --k K]
                   [--budgets B1,B2,...] [--seed N] [--json] [-o FILE]
  localwm strength --corpus DIR --author ID [--budgets B1,B2,...] [--seed N]
                   [--json] [-o FILE]
  localwm schedule <design.cdfg> [--scheduler list|fds|alap] [--steps N]
                   [--alu N] [--mult N] [--mem N] [--branch N]
  localwm simulate <design.cdfg> [--seed N]
  localwm analyze <design.cdfg> [--deadline N] [--lo N --hi N]
                  [--samples N] [--seed N] [--probe-out FILE]
  localwm serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
                [--cache-cap N] [--default-timeout-ms N]
                [--session-idle-ms N] [--metrics-out FILE]
                [--store-dir DIR]
  localwm store <ls|get HASH|verify|compact> --dir DIR [-o FILE]
  localwm gateway --backends [name=]HOST:PORT[,...] [--addr HOST:PORT]
                  [--replicas N] [--max-retries N] [--backoff-base-ms N]
                  [--backoff-cap-ms N] [--recv-timeout-ms N]
                  [--health-interval-ms N|off]
  localwm request <embed|detect|analyze|timing|attack|strength|open|mutate|
                   close|stats|cluster_stats|shutdown>
                  [--addr HOST:PORT] [--design FILE] [--author ID]
                  [--schedule FILE] [--schedule-out FILE] [--fraction F]
                  [--k K] [--deadline N] [--lo N --hi N] [--samples N]
                  [--seed N] [--attack KIND] [--budget B] [--budgets LIST]
                  [--timeout-ms N] [--repeat N]
                  [--session ID] [--edits FILE] [--binary]
  localwm request --edit-trace FILE --design FILE [--session ID]
                  [--addr HOST:PORT]
  localwm chaos [--seed N] [--requests N] [--faults-per-point N]
                [--workers N] [--queue-depth N] [--cache-cap N]
                [--recv-timeout-ms N] [--json] [--report-out FILE]
  localwm chaos --gateway [--seed N] [--requests N] [--backends N]
                [--replicas N] [--no-kill] [--no-restart] [--json]
                [--recv-timeout-ms N] [--report-out FILE]

DESIGNS (for gen):
  iir4 | cf-iir | linear-ge | wavelet | modem | volterra2 | volterra3 |
  dac | echo | mediabench:<dac|g721|epic|pegwit|pgp|gsm|jpeg|mpeg2>";

pub(crate) fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

pub(crate) fn positional(args: &[String], idx: usize) -> Option<&str> {
    args.iter()
        .filter(|a| !a.starts_with('-'))
        .scan(false, |skip, a| {
            // Skip flag values: a positional preceded by a flag token is a
            // value, not a positional. Handled by the caller passing only
            // leading positionals in our grammar; keep it simple here.
            let _ = skip;
            Some(a)
        })
        .nth(idx)
        .map(String::as_str)
}

pub(crate) fn load_design(path: &str) -> Result<Cdfg, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    parse_cdfg(&text).map_err(|e| format!("parsing {path}: {e}"))
}

fn gen(args: &[String]) -> CliResult {
    let name = positional(args, 0).ok_or("gen: missing design name")?;
    let seed: u64 = flag_value(args, "--seed")
        .map(|s| s.parse().map_err(|_| format!("bad seed `{s}`")))
        .transpose()?
        .unwrap_or(0);
    let g = build_design(name, seed)?;
    let text = write_cdfg(&g);
    match flag_value(args, "-o") {
        Some(path) => {
            fs::write(path, text).map_err(|e| format!("writing {path}: {e}"))?;
            println!(
                "wrote {path}: {} ops, {} edges",
                g.op_count(),
                g.edge_count()
            );
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn build_design(name: &str, seed: u64) -> Result<Cdfg, String> {
    if name == "iir4" {
        return Ok(iir4_parallel());
    }
    let table2_keys = [
        "cf-iir",
        "linear-ge",
        "wavelet",
        "modem",
        "volterra2",
        "volterra3",
        "dac",
        "echo",
    ];
    if let Some(i) = table2_keys.iter().position(|&k| k == name) {
        return Ok(table2_design(&table2_designs()[i]));
    }
    if let Some(app) = name.strip_prefix("mediabench:") {
        let keys = [
            "dac", "g721", "epic", "pegwit", "pgp", "gsm", "jpeg", "mpeg2",
        ];
        let i = keys
            .iter()
            .position(|&k| k == app)
            .ok_or_else(|| format!("unknown mediabench app `{app}`"))?;
        return Ok(mediabench(&mediabench_apps()[i], seed));
    }
    Err(format!("unknown design `{name}`; try `localwm help`"))
}

fn info(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("info: missing design file")?;
    let ctx = DesignContext::new(load_design(path)?);
    let g = ctx.graph();
    let t = ctx.unit_timing();
    let stats = localwm_cdfg::analysis::design_stats(g);
    println!("design          {path}");
    println!("nodes           {}", g.node_count());
    println!("operations      {}", g.op_count());
    println!("edges           {}", g.edge_count());
    println!("variables       {}", g.variable_count());
    println!("critical path   {} control steps", t.critical_path());
    println!("parallelism     {:.1} ops/step", stats.parallelism);
    let mix: Vec<String> = stats
        .op_mix
        .iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect();
    println!("op mix          {}", mix.join(" "));
    Ok(())
}

fn dot(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("dot: missing design file")?;
    let g = load_design(path)?;
    print!("{}", g.to_dot("design"));
    Ok(())
}

/// Watermark parameters shared by `embed`/`detect`/`attack`/`strength`:
/// `--fraction F` sizes the constraint set to F·N edges, `--k K` pins it.
pub(crate) fn wm_config(args: &[String]) -> Result<SchedWmConfig, String> {
    let mut config = SchedWmConfig::default();
    if let Some(f) = flag_value(args, "--fraction") {
        let f: f64 = f.parse().map_err(|_| format!("bad fraction `{f}`"))?;
        config = SchedWmConfig::with_node_fraction(f);
    }
    if let Some(k) = flag_value(args, "--k") {
        config.k = k.parse().map_err(|_| format!("bad k `{k}`"))?;
    }
    Ok(config)
}

fn watermarker(args: &[String]) -> Result<SchedulingWatermarker, String> {
    Ok(SchedulingWatermarker::new(wm_config(args)?))
}

pub(crate) fn signature(args: &[String]) -> Result<Signature, String> {
    flag_value(args, "--author")
        .map(Signature::from_author)
        .ok_or_else(|| "missing --author <id>".to_owned())
}

fn embed(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("embed: missing design file")?;
    let ctx = DesignContext::new(load_design(path)?);
    let g = ctx.graph();
    let wm = watermarker(args)?;
    let sig = signature(args)?;
    let emb = wm
        .embed_in(&ctx, &sig, Parallelism::from_env())
        .map_err(|e| e.to_string())?;
    println!(
        "embedded {} temporal edge(s) across {} localit(y/ies); schedule \
         length {} of {}",
        emb.edges.len(),
        emb.domains.len(),
        emb.schedule.length(),
        emb.available_steps
    );
    let text = write_schedule(g, &emb.schedule);
    match flag_value(args, "-o") {
        Some(out) => {
            fs::write(out, text).map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote schedule to {out}");
        }
        None => print!("{text}"),
    }
    if let Some(marked_path) = flag_value(args, "--marked") {
        fs::write(marked_path, write_cdfg(&emb.marked))
            .map_err(|e| format!("writing {marked_path}: {e}"))?;
        println!("wrote constrained specification to {marked_path}");
    }
    Ok(())
}

fn detect(args: &[String]) -> CliResult {
    let design_path = positional(args, 0).ok_or("detect: missing design file")?;
    let sched_path = positional(args, 1).ok_or("detect: missing schedule file")?;
    let ctx = DesignContext::new(load_design(design_path)?);
    let text = fs::read_to_string(sched_path).map_err(|e| format!("reading {sched_path}: {e}"))?;
    let schedule = parse_schedule(ctx.graph(), &text)?;
    let wm = watermarker(args)?;
    let sig = signature(args)?;
    let ev = wm
        .detect_in(&schedule, &ctx, &sig, Parallelism::from_env())
        .map_err(|e| e.to_string())?;
    println!(
        "constraints satisfied: {}/{} ({:.0}%)",
        ev.checks.iter().filter(|&&(_, _, ok)| ok).count(),
        ev.checks.len(),
        100.0 * ev.satisfied_fraction()
    );
    println!("coincidence probability ~ 10^{:.1}", ev.log10_pc);
    if ev.is_match() {
        println!("MATCH: the schedule carries {sig}'s watermark");
        Ok(())
    } else {
        Err("no match: watermark absent or damaged".to_owned())
    }
}

fn schedule_cmd(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("schedule: missing design file")?;
    let ctx = DesignContext::new(load_design(path)?);
    let g = ctx.graph();
    let mut rs = ResourceSet::unlimited();
    for (flag, class) in [
        ("--alu", OpClass::Alu),
        ("--mult", OpClass::Multiplier),
        ("--mem", OpClass::Memory),
        ("--branch", OpClass::Branch),
    ] {
        if let Some(v) = flag_value(args, flag) {
            let n: usize = v.parse().map_err(|_| format!("bad {flag} `{v}`"))?;
            rs = rs.with(class, n);
        }
    }
    let cp = ctx.critical_path();
    let steps: u32 = flag_value(args, "--steps")
        .map(|v| v.parse().map_err(|_| format!("bad steps `{v}`")))
        .transpose()?
        .unwrap_or(cp);
    let scheduler = flag_value(args, "--scheduler").unwrap_or("list");
    let s = match scheduler {
        "list" => list_schedule_in(&ctx, &rs, None).map_err(|e| e.to_string())?,
        "fds" => force_directed_schedule_in(&ctx, steps).map_err(|e| e.to_string())?,
        "alap" => alap_schedule_in(&ctx, steps).map_err(|e| e.to_string())?,
        other => return Err(format!("unknown scheduler `{other}` (list|fds|alap)")),
    };
    println!(
        "{} scheduler: {} ops in {} control steps (critical path {})",
        scheduler,
        g.op_count(),
        s.length(),
        cp
    );
    print!("{}", s.render(g));
    Ok(())
}

fn simulate(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("simulate: missing design file")?;
    let ctx = DesignContext::new(load_design(path)?);
    let g = ctx.graph();
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| format!("bad seed `{v}`")))
        .transpose()?
        .unwrap_or(0);
    let trace = interpret_in(&ctx, &Inputs::seeded(seed)).map_err(|e| e.to_string())?;
    println!("# outputs (seed {seed})");
    for (n, v) in trace.outputs(g) {
        let name = g.node_name(n).map_or_else(|| n.to_string(), str::to_owned);
        println!("{name} = {v}");
    }
    Ok(())
}

/// Full timing-analysis sweep through the shared engine layer, with
/// optional instrumentation-probe JSON dump (`--probe-out`).
fn analyze(args: &[String]) -> CliResult {
    let path = positional(args, 0).ok_or("analyze: missing design file")?;
    let probe = Arc::new(RecordingProbe::new());
    let ctx = DesignContext::new(load_design(path)?).with_probe(probe.clone());
    let g = ctx.graph();

    let cp = ctx.critical_path();
    let deadline: u32 = flag_value(args, "--deadline")
        .map(|v| v.parse().map_err(|_| format!("bad deadline `{v}`")))
        .transpose()?
        .unwrap_or(cp);
    let lo: u64 = flag_value(args, "--lo")
        .map(|v| v.parse().map_err(|_| format!("bad lo `{v}`")))
        .transpose()?
        .unwrap_or(1);
    let hi: u64 = flag_value(args, "--hi")
        .map(|v| v.parse().map_err(|_| format!("bad hi `{v}`")))
        .transpose()?
        .unwrap_or(3);
    let samples: usize = flag_value(args, "--samples")
        .map(|v| v.parse().map_err(|_| format!("bad samples `{v}`")))
        .transpose()?
        .unwrap_or(200);
    let seed: u64 = flag_value(args, "--seed")
        .map(|v| v.parse().map_err(|_| format!("bad seed `{v}`")))
        .transpose()?
        .unwrap_or(0);
    if lo > hi {
        return Err(format!("bad delay bounds: lo {lo} > hi {hi}"));
    }

    println!("design          {path}");
    println!("operations      {}", g.op_count());
    println!("critical path   {cp} control steps (unit delay)");

    let w = ctx.windows(deadline).map_err(|e| e.to_string())?;
    let zero_mobility = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && w.mobility(n) == 0)
        .count();
    println!("deadline        {deadline} steps, {zero_mobility} op(s) with zero mobility");

    let model = KindBounds::uniform(lo, hi);
    let interval = ctx.bounded_critical_path(&model);
    let maybe = ctx.possibly_critical(&model);
    println!(
        "bounded delays  [{lo}, {hi}] per op -> circuit delay in [{}, {}]",
        interval.lo, interval.hi
    );
    println!("possibly critical ops: {}", maybe.len());

    let report = criticality_in(&ctx, &model, samples, seed, Parallelism::from_env());
    let mut hot: Vec<(f64, localwm_cdfg::NodeId)> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable())
        .map(|n| (report.probability(n), n))
        .collect();
    hot.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    println!(
        "criticality     {samples} samples, seed {seed}; delay p50 {} / p95 {}",
        report.delay_quantile(0.5),
        report.delay_quantile(0.95)
    );
    for &(p, n) in hot.iter().take(5) {
        let name = g.node_name(n).map_or_else(|| n.to_string(), str::to_owned);
        println!("  {name:<12} critical in {:.0}% of samples", 100.0 * p);
    }

    if let Some(out) = flag_value(args, "--probe-out") {
        fs::write(out, probe.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
        println!("wrote probe counters to {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_design_knows_every_key() {
        assert!(build_design("iir4", 0).is_ok());
        for k in [
            "cf-iir",
            "linear-ge",
            "wavelet",
            "modem",
            "volterra2",
            "volterra3",
        ] {
            assert!(build_design(k, 0).is_ok(), "{k}");
        }
        assert!(build_design("mediabench:g721", 0).is_ok());
        assert!(build_design("bogus", 0).is_err());
        assert!(build_design("mediabench:bogus", 0).is_err());
    }

    #[test]
    fn flag_parsing() {
        let args: Vec<String> = ["x.cdfg", "--author", "al", "--k", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(flag_value(&args, "--author"), Some("al"));
        assert_eq!(flag_value(&args, "--k"), Some("5"));
        assert_eq!(flag_value(&args, "--missing"), None);
        assert_eq!(positional(&args, 0), Some("x.cdfg"));
    }

    #[test]
    fn schedule_and_simulate_subcommands_work() {
        let dir = std::env::temp_dir().join("localwm-cli-test2");
        let _ = fs::create_dir_all(&dir);
        let design = dir.join("d.cdfg");
        let d = design.to_str().unwrap().to_owned();
        run(&["gen".into(), "iir4".into(), "-o".into(), d.clone()]).unwrap();
        run(&[
            "schedule".into(),
            d.clone(),
            "--scheduler".into(),
            "fds".into(),
            "--steps".into(),
            "9".into(),
        ])
        .unwrap();
        run(&["schedule".into(), d.clone(), "--alu".into(), "2".into()]).unwrap();
        run(&["simulate".into(), d.clone(), "--seed".into(), "3".into()]).unwrap();
        assert!(run(&["schedule".into(), d, "--scheduler".into(), "bogus".into()]).is_err());
    }

    #[test]
    fn analyze_subcommand_dumps_probe_counters() {
        let dir = std::env::temp_dir().join("localwm-cli-test3");
        let _ = fs::create_dir_all(&dir);
        let design = dir.join("d.cdfg");
        let probe = dir.join("probe.json");
        let d = design.to_str().unwrap().to_owned();
        let p = probe.to_str().unwrap().to_owned();
        run(&["gen".into(), "iir4".into(), "-o".into(), d.clone()]).unwrap();
        run(&[
            "analyze".into(),
            d.clone(),
            "--lo".into(),
            "1".into(),
            "--hi".into(),
            "3".into(),
            "--samples".into(),
            "50".into(),
            "--probe-out".into(),
            p.clone(),
        ])
        .unwrap();
        let json = fs::read_to_string(&probe).unwrap();
        assert!(json.contains("engine.topo.build"));
        assert!(json.contains("timing.criticality.samples"));
        // lo > hi is rejected.
        assert!(run(&[
            "analyze".into(),
            d,
            "--lo".into(),
            "5".into(),
            "--hi".into(),
            "2".into()
        ])
        .is_err());
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join("localwm-cli-test");
        let _ = fs::create_dir_all(&dir);
        let design = dir.join("d.cdfg");
        let schedule = dir.join("s.txt");
        let d = design.to_str().unwrap().to_owned();
        let s = schedule.to_str().unwrap().to_owned();

        run(&[
            "gen".into(),
            "mediabench:pegwit".into(),
            "-o".into(),
            d.clone(),
        ])
        .unwrap();
        run(&[
            "embed".into(),
            d.clone(),
            "--author".into(),
            "cli-test".into(),
            "-o".into(),
            s.clone(),
        ])
        .unwrap();
        run(&[
            "detect".into(),
            d.clone(),
            s.clone(),
            "--author".into(),
            "cli-test".into(),
        ])
        .unwrap();
        // Wrong author must fail.
        assert!(run(&[
            "detect".into(),
            d,
            s,
            "--author".into(),
            "someone-else".into(),
        ])
        .is_err());
    }
}
