//! `localwm` — command-line front end for the local-watermarks toolkit.
//!
//! ```text
//! localwm gen <design> [--seed N] -o design.cdfg     generate a design
//! localwm info <design.cdfg>                         structural summary
//! localwm dot <design.cdfg>                          Graphviz to stdout
//! localwm embed <design.cdfg> --author <id>          watermark + schedule
//!         [--fraction F | --k K] -o schedule.txt [--marked marked.cdfg]
//! localwm detect <design.cdfg> <schedule.txt> --author <id>
//! localwm attack <design.cdfg> --author <id> [--attack KIND] [--budget B]
//!         [--seed N] [-o schedule.txt] [--trace-out FILE]
//! localwm strength <design.cdfg>|--corpus DIR --author <id>
//!         [--budgets B1,B2,...] [--seed N] [--json] [-o FILE]
//! localwm schedule <design.cdfg> [--scheduler list|fds|alap] [--steps N]
//! localwm simulate <design.cdfg> [--seed N]
//! localwm analyze <design.cdfg> [--deadline N] [--lo N --hi N]
//!         [--samples N] [--seed N] [--probe-out FILE]
//! localwm serve [--addr HOST:PORT] [--workers N] [--queue-depth N]
//!         [--cache-cap N] [--default-timeout-ms N] [--metrics-out FILE]
//!         [--store-dir DIR]
//! localwm store <ls|get HASH|verify|compact> --dir DIR
//! localwm gateway --backends [name=]H:P,... [--addr HOST:PORT]
//!         [--replicas N] [--max-retries N] [--health-interval-ms N|off]
//! localwm request <kind> [--addr HOST:PORT] [--design FILE] [--repeat N] ...
//! localwm chaos [--seed N] [--requests N] [--faults-per-point N] [--json]
//!         [--workers N] [--queue-depth N] [--cache-cap N] [--report-out FILE]
//! localwm chaos --gateway [--seed N] [--requests N] [--backends N]
//!         [--replicas N] [--no-kill] [--no-restart] [--json]
//! ```
//!
//! `<design>` for `gen` is one of `iir4`, a Table II key
//! (`cf-iir`, `linear-ge`, `wavelet`, `modem`, `volterra2`, `volterra3`,
//! `dac`, `echo`), or `mediabench:<app>` (`dac`, `g721`, `epic`, `pegwit`,
//! `pgp`, `gsm`, `jpeg`, `mpeg2`).

use std::process::ExitCode;

mod attack_cmd;
mod chaos_cmd;
mod commands;
mod gateway_cmd;
mod serve_cmd;
mod store_cmd;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
