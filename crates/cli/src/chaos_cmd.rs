//! `localwm chaos` — run a seeded fault-injection scenario against a live
//! server and report invariant violations.
//!
//! The harness (see `localwm_testkit::chaos`) starts a real server on a
//! loopback socket with the seeded `FaultPlan` armed, replays the seeded
//! request stream through the injected faults, and checks the service
//! invariants: no lost responses beyond the fired faults, no double-acks,
//! exact drain accounting, consistent cache counters. Exit code 1 when
//! any invariant is violated (or when faults should have fired but the
//! binary was built without the `fault-inject` feature).

use std::time::Duration;

use localwm_testkit::chaos::{self, ChaosConfig};
use localwm_testkit::cluster::{self, GatewayChaosConfig};

use crate::commands::flag_value;

/// Runs `localwm chaos [--seed N] [--requests N] [--faults-per-point N]
/// [--workers N] [--queue-depth N] [--cache-cap N] [--recv-timeout-ms N]
/// [--json] [--report-out FILE]`, or with `--gateway` the cluster-level
/// scenario `localwm chaos --gateway [--seed N] [--requests N]
/// [--backends N] [--replicas N] [--no-kill] [--no-restart]
/// [--recv-timeout-ms N] [--json] [--report-out FILE]` (seeded backend
/// kill/restart behind a live gateway; fails when any accepted request is
/// silently dropped).
///
/// # Errors
///
/// Returns a message for bad flags, harness failures, or violated
/// invariants.
pub fn chaos(args: &[String]) -> Result<(), String> {
    let parse = |flag: &str, default: u64| -> Result<u64, String> {
        match flag_value(args, flag) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("bad {flag}: `{v}`")),
        }
    };
    if args.iter().any(|a| a == "--gateway") {
        return gateway_chaos(args, &parse);
    }
    let cfg = ChaosConfig {
        seed: parse("--seed", 1)?,
        requests: usize::try_from(parse("--requests", 48)?).map_err(|e| e.to_string())?,
        faults_per_point: usize::try_from(parse("--faults-per-point", 2)?)
            .map_err(|e| e.to_string())?,
        workers: usize::try_from(parse("--workers", 1)?).map_err(|e| e.to_string())?,
        queue_depth: usize::try_from(parse("--queue-depth", 32)?).map_err(|e| e.to_string())?,
        cache_cap: usize::try_from(parse("--cache-cap", 2)?).map_err(|e| e.to_string())?,
        recv_timeout: Duration::from_millis(parse("--recv-timeout-ms", 1500)?),
    };
    if cfg.workers != 1 {
        eprintln!(
            "note: --workers {} makes fault/response interleaving (and the report) \
             timing-dependent; use 1 worker for reproducible runs",
            cfg.workers
        );
    }

    let out = chaos::run(&cfg)?;

    let json = args.iter().any(|a| a == "--json");
    let report = serde_json::to_string_pretty(&out.report).map_err(|e| e.to_string())?;
    if let Some(path) = flag_value(args, "--report-out") {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if json {
        println!("{report}");
    } else {
        println!(
            "chaos seed {}: {} requests, {} faults armed, {} fired",
            cfg.seed,
            cfg.requests,
            out.plan.faults.len(),
            out.trace.len()
        );
        for f in &out.trace {
            println!(
                "  fired {} at {} op {}",
                f.action.as_str(),
                f.point.as_str(),
                f.index
            );
        }
        match out.violations.len() {
            0 => println!("invariants: all held"),
            n => {
                println!("invariants: {n} VIOLATED");
                for v in &out.violations {
                    println!("  {v}");
                }
            }
        }
    }

    if !out.violations.is_empty() {
        return Err(format!(
            "{} invariant violation(s) detected",
            out.violations.len()
        ));
    }
    if localwm_testkit::fault_inject_compiled() && cfg.faults_per_point > 0 && out.trace.is_empty()
    {
        return Err("an armed plan fired no faults — injection seams look dead".to_owned());
    }
    if !localwm_testkit::fault_inject_compiled() && cfg.faults_per_point > 0 {
        eprintln!("note: built without `fault-inject` — the plan was armed but no faults can fire");
    }
    Ok(())
}

/// The `--gateway` scenario: a live 2+-backend cluster behind a real
/// gateway, a seeded backend kill (and optional restart) mid-stream, and
/// the no-silent-drop invariant checked over every accepted request.
fn gateway_chaos(
    args: &[String],
    parse: &dyn Fn(&str, u64) -> Result<u64, String>,
) -> Result<(), String> {
    let cfg = GatewayChaosConfig {
        seed: parse("--seed", 1)?,
        requests: usize::try_from(parse("--requests", 32)?).map_err(|e| e.to_string())?,
        backends: usize::try_from(parse("--backends", 2)?).map_err(|e| e.to_string())?,
        replicas: usize::try_from(parse("--replicas", 2)?).map_err(|e| e.to_string())?,
        kill: !args.iter().any(|a| a == "--no-kill"),
        restart: !args.iter().any(|a| a == "--no-restart"),
        recv_timeout: Duration::from_millis(parse("--recv-timeout-ms", 10_000)?),
    };

    let out = cluster::run_gateway_chaos(&cfg)?;

    let report = serde_json::to_string_pretty(&out.report).map_err(|e| e.to_string())?;
    if let Some(path) = flag_value(args, "--report-out") {
        std::fs::write(path, format!("{report}\n")).map_err(|e| format!("{path}: {e}"))?;
    }
    if args.iter().any(|a| a == "--json") {
        println!("{report}");
    } else {
        println!(
            "gateway chaos seed {}: {} requests over {} backend(s), replicas {}",
            cfg.seed, cfg.requests, cfg.backends, cfg.replicas
        );
        println!(
            "  kill {}; restart {}; {} route(s) traced",
            if cfg.kill { "armed" } else { "off" },
            if cfg.restart { "armed" } else { "off" },
            out.trace.len()
        );
        match out.violations.len() {
            0 => println!("invariants: all held (every request answered or typed-errored)"),
            n => {
                println!("invariants: {n} VIOLATED");
                for v in &out.violations {
                    println!("  {v}");
                }
            }
        }
    }

    if out.violations.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s) detected",
            out.violations.len()
        ))
    }
}
