//! `localwm store` — inspect and maintain a durable design store on disk.
//!
//! ```text
//! localwm store ls      --dir DIR            list live records
//! localwm store get <hash> --dir DIR [-o F]  print a stored design's CDFG
//! localwm store verify  --dir DIR            rescan every record checksum
//! localwm store compact --dir DIR            rewrite live records compactly
//! ```
//!
//! `verify` exits nonzero when any record fails its checksum, so it can
//! gate a deployment on store integrity; it scans the segment files
//! without opening the store, because opening *repairs* — recovery
//! truncates a corrupt tail away, which would hide exactly the damage an
//! audit exists to find. The other commands open the store directly; run
//! them all against a quiesced `--store-dir` (a serving process appending
//! concurrently would race the maintenance walk).

use std::fs;

use localwm_cdfg::{write_cdfg, Cdfg};
use localwm_store::binval::decode_value;
use localwm_store::{DesignStore, RecordKind};
use serde::Deserialize;

use crate::commands::flag_value;

type CliResult = Result<(), String>;

/// Dispatches `localwm store <ls|get|verify|compact>`.
pub fn store(args: &[String]) -> CliResult {
    let action = args.first().map(String::as_str).ok_or(
        "usage: localwm store <ls|get HASH|verify|compact> --dir DIR (try `localwm help`)",
    )?;
    let rest = &args[1..];
    let dir = flag_value(rest, "--dir").ok_or("store: missing --dir DIR")?;
    let open = || DesignStore::open(dir).map_err(|e| format!("opening store at {dir}: {e}"));
    match action {
        "ls" => ls(&open()?),
        "get" => get(&open()?, rest),
        "verify" => verify(dir),
        "compact" => compact(&open()?),
        other => Err(format!(
            "unknown store action `{other}` (ls|get|verify|compact)"
        )),
    }
}

/// Parses a record key, accepting the `ls` listing's hex form or decimal.
fn parse_key(raw: &str) -> Result<u64, String> {
    let parsed = match raw.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => raw.parse::<u64>().or_else(|_| u64::from_str_radix(raw, 16)),
    };
    parsed.map_err(|_| format!("bad record key `{raw}` (hex or decimal)"))
}

fn ls(store: &DesignStore) -> CliResult {
    let records = store.records();
    for &(kind, key, payload_len) in &records {
        println!("{:<8} {key:016x}  {payload_len} bytes", kind.as_str());
    }
    let s = store.stats();
    println!(
        "{} record(s) in {} segment(s), {} bytes on disk{}",
        records.len(),
        s.segments,
        s.bytes,
        if s.dropped_tail > 0 {
            format!(" ({} torn tail(s) dropped on open)", s.dropped_tail)
        } else {
            String::new()
        }
    );
    Ok(())
}

fn get(store: &DesignStore, args: &[String]) -> CliResult {
    // The record key is the first token that is neither a flag nor a
    // flag's value (`store get <hash> --dir DIR` and
    // `store get --dir DIR <hash>` both work).
    let mut skip_value = false;
    let raw = args
        .iter()
        .find(|a| {
            if skip_value {
                skip_value = false;
                return false;
            }
            if a.starts_with('-') {
                skip_value = true;
                return false;
            }
            true
        })
        .map(String::as_str)
        .ok_or("store get: missing record key (see `localwm store ls`)")?;
    let key = parse_key(raw)?;
    let payload = store
        .get(RecordKind::Design, key)
        .map_err(|e| format!("reading record {key:016x}: {e}"))?
        .ok_or_else(|| format!("no design record with key {key:016x}"))?;
    let value = decode_value(&payload).map_err(|e| format!("record {key:016x}: {e}"))?;
    let graph = Cdfg::from_value(&value).map_err(|e| format!("record {key:016x}: {e}"))?;
    let text = write_cdfg(&graph);
    match flag_value(args, "-o") {
        Some(out) => {
            fs::write(out, &text).map_err(|e| format!("writing {out}: {e}"))?;
            println!("wrote design {key:016x} to {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn verify(dir: &str) -> CliResult {
    // Audit without opening: `DesignStore::open` repairs torn tails by
    // truncation, which would hide the corruption this walk reports.
    let report = DesignStore::verify_dir(dir).map_err(|e| format!("verify walk failed: {e}"))?;
    println!(
        "verified {} record(s) across {} segment(s)",
        report.records, report.segments
    );
    if report.ok() {
        Ok(())
    } else {
        for line in &report.corrupt {
            eprintln!("corrupt: {line}");
        }
        Err(format!(
            "{} segment(s) contain corrupt records",
            report.corrupt.len()
        ))
    }
}

fn compact(store: &DesignStore) -> CliResult {
    let report = store
        .compact()
        .map_err(|e| format!("compact failed: {e}"))?;
    println!(
        "compacted {} live record(s): {} -> {} segment(s), {} -> {} bytes",
        report.records,
        report.segments_before,
        report.segments_after,
        report.bytes_before,
        report.bytes_after
    );
    Ok(())
}
