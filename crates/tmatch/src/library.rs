//! Template libraries.

use localwm_cdfg::OpKind;

use crate::Template;

/// An ordered collection of templates available to the mapper.
///
/// Order matters: matching enumeration assigns each matching "a unique
/// identifier" (paper §IV-B), and the identifiers must be identical on the
/// embedding and detection sides — both derive them from the library order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Library {
    templates: Vec<Template>,
}

impl Library {
    /// Creates a library from templates.
    ///
    /// # Panics
    ///
    /// Panics if two templates share a name (names identify templates in
    /// reports).
    pub fn new(templates: Vec<Template>) -> Self {
        let mut names: Vec<&str> = templates.iter().map(|t| t.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            templates.len(),
            "template names must be unique"
        );
        Library { templates }
    }

    /// The default datapath library used by the evaluation: the specialized
    /// units a DSP-oriented module generator would offer.
    ///
    /// * `add2` — two chained adders (the paper's two-adder template).
    /// * `mac` — multiply-accumulate: `add(mul(·,·),·)`.
    /// * `cmac` — coefficient MAC: `add(cmul(·),·)`, the workhorse of
    ///   filter ladders.
    /// * `cmac2` — a three-op ladder slice: `add(add(cmul(·)))`.
    /// * `addtree3` — a balanced three-adder reduction tree.
    pub fn dsp_default() -> Self {
        Library::new(vec![
            Template::chain("add2", &[OpKind::Add, OpKind::Add]),
            Template::chain("mac", &[OpKind::Add, OpKind::Mul]),
            Template::chain("cmac", &[OpKind::Add, OpKind::ConstMul]),
            Template::chain("cmac2", &[OpKind::Add, OpKind::Add, OpKind::ConstMul]),
            Template::new(
                "addtree3",
                &[
                    (OpKind::Add, None),
                    (OpKind::Add, Some(0)),
                    (OpKind::Add, Some(0)),
                ],
            ),
        ])
    }

    /// A richer library modelling a production module generator: the DSP
    /// default plus subtract/accumulate slices, a four-op ladder, and a
    /// multiply tree — used by the library-richness ablation (a larger
    /// inventory gives the mapper more ways to absorb watermark
    /// fragmentation; see `EXPERIMENTS.md` on Table II's residual).
    pub fn dsp_rich() -> Self {
        let mut templates = Library::dsp_default().templates;
        templates.extend([
            Template::chain("subacc", &[OpKind::Sub, OpKind::Add]),
            Template::chain("accsub", &[OpKind::Add, OpKind::Sub]),
            Template::chain(
                "cmac3",
                &[OpKind::Add, OpKind::Add, OpKind::Add, OpKind::ConstMul],
            ),
            Template::new(
                "multree",
                &[
                    (OpKind::Mul, None),
                    (OpKind::Mul, Some(0)),
                    (OpKind::Mul, Some(0)),
                ],
            ),
            Template::chain("submac", &[OpKind::Sub, OpKind::Mul]),
        ]);
        Library::new(templates)
    }

    /// The templates, in identifier order.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Number of templates (`λ` in the paper's complexity bound).
    pub fn len(&self) -> usize {
        self.templates.len()
    }

    /// Whether the library is empty.
    pub fn is_empty(&self) -> bool {
        self.templates.is_empty()
    }

    /// Template by index.
    pub fn template(&self, idx: usize) -> &Template {
        &self.templates[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_library_is_consistent() {
        let lib = Library::dsp_default();
        assert_eq!(lib.len(), 5);
        assert_eq!(lib.template(0).name(), "add2");
        assert!(lib.templates().iter().all(|t| t.len() >= 2));
    }

    #[test]
    fn rich_library_extends_the_default() {
        let base = Library::dsp_default();
        let rich = Library::dsp_rich();
        assert!(rich.len() > base.len());
        // The default templates keep their identifiers (prefix property),
        // so watermarks embedded against the default stay decodable.
        for i in 0..base.len() {
            assert_eq!(base.template(i).name(), rich.template(i).name());
        }
    }

    #[test]
    fn rich_library_absorbs_more() {
        use crate::{cover, CoverConstraints};
        use localwm_cdfg::designs::{table2_design, table2_designs};
        let g = table2_design(&table2_designs()[1]);
        let base = cover(&g, &Library::dsp_default(), &CoverConstraints::default());
        let rich = cover(&g, &Library::dsp_rich(), &CoverConstraints::default());
        assert!(rich.module_count() <= base.module_count());
    }

    #[test]
    #[should_panic(expected = "unique")]
    fn duplicate_names_panic() {
        let _ = Library::new(vec![
            Template::chain("t", &[OpKind::Add]),
            Template::chain("t", &[OpKind::Mul]),
        ]);
    }
}
