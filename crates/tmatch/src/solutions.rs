//! The paper's `Solutions(m)` count.

use std::collections::HashSet;

use localwm_cdfg::{Cdfg, NodeId};

use crate::{find_matches, Library, Match};

/// Counts the number of distinct ways the node set of an enforced matching
/// `m` can be covered — the paper's `Solutions(m_i)`, whose reciprocal
/// product approximates the coincidence probability
/// `P_c ≈ Π Solutions(m_i)⁻¹`.
///
/// A *way* is a set of pairwise-disjoint covers (library matchings or
/// single-op modules) such that every node of `m` is covered exactly once;
/// covers may pull in neighbouring nodes outside `m` (the paper's Fig. 4
/// example counts `(A5,A9 | A6)` as a distinct way of covering `{A5,A6}`).
///
/// Exhaustive but local: only matchings touching `m`'s nodes participate,
/// and `|m|` is template-sized, so the recursion is shallow.
pub fn count_cover_solutions(g: &Cdfg, lib: &Library, m: &Match) -> u64 {
    let targets: Vec<NodeId> = m.nodes.clone();
    let target_set: HashSet<NodeId> = targets.iter().copied().collect();

    // Candidate covers: all matchings touching at least one target, plus a
    // singleton pseudo-cover for each target.
    let mut covers: Vec<Vec<NodeId>> = find_matches(g, lib)
        .into_iter()
        .filter(|c| c.nodes.iter().any(|n| target_set.contains(n)))
        .map(|c| c.nodes)
        .collect();
    for &t in &targets {
        covers.push(vec![t]);
    }

    fn recurse(targets: &[NodeId], covered: &mut HashSet<NodeId>, covers: &[Vec<NodeId>]) -> u64 {
        // First uncovered target.
        let Some(&next) = targets.iter().find(|t| !covered.contains(t)) else {
            return 1;
        };
        let mut total = 0u64;
        for c in covers {
            if !c.contains(&next) {
                continue;
            }
            // Disjointness against already chosen covers.
            if c.iter().any(|n| covered.contains(n)) {
                continue;
            }
            for &n in c {
                covered.insert(n);
            }
            total += recurse(targets, covered, covers);
            for n in c {
                covered.remove(n);
            }
        }
        total
    }

    recurse(&targets, &mut HashSet::new(), &covers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::{Cdfg, OpKind};

    /// An isolated pair add(add): ways = {singletons} + {add2 together} = 2.
    #[test]
    fn isolated_pair_has_two_ways() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let b = g.add_node(OpKind::Input);
        let c = g.add_node(OpKind::Input);
        let s1 = g.add_node(OpKind::Add);
        let s2 = g.add_node(OpKind::Add);
        let o = g.add_node(OpKind::Output);
        g.add_data_edge(a, s1).unwrap();
        g.add_data_edge(b, s1).unwrap();
        g.add_data_edge(s1, s2).unwrap();
        g.add_data_edge(c, s2).unwrap();
        g.add_data_edge(s2, o).unwrap();
        let lib = Library::dsp_default();
        let m = find_matches(&g, &lib)
            .into_iter()
            .find(|m| m.nodes.len() == 2)
            .expect("add2 matches");
        assert_eq!(count_cover_solutions(&g, &lib, &m), 2);
    }

    /// A longer chain lets the pair be covered in more ways (neighbours can
    /// be pulled in), increasing Solutions(m).
    #[test]
    fn more_context_means_more_ways() {
        // chain of four adds.
        let mut g = Cdfg::new();
        let inputs: Vec<_> = (0..5).map(|_| g.add_node(OpKind::Input)).collect();
        let mut prev = inputs[0];
        let mut adds = Vec::new();
        for i in 0..4 {
            let s = g.add_node(OpKind::Add);
            g.add_data_edge(prev, s).unwrap();
            g.add_data_edge(inputs[i + 1], s).unwrap();
            adds.push(s);
            prev = s;
        }
        let o = g.add_node(OpKind::Output);
        g.add_data_edge(prev, o).unwrap();
        let lib = Library::dsp_default();
        // The middle pair (adds[1], adds[2]) as an add2 match.
        let m = find_matches(&g, &lib)
            .into_iter()
            .find(|m| m.nodes == vec![adds[2], adds[1]])
            .expect("middle add2 exists");
        let middle = count_cover_solutions(&g, &lib, &m);
        // The head pair has less context.
        let head = find_matches(&g, &lib)
            .into_iter()
            .find(|m| m.nodes == vec![adds[1], adds[0]])
            .expect("head add2 exists");
        let head_ways = count_cover_solutions(&g, &lib, &head);
        assert!(middle >= head_ways);
        assert!(head_ways >= 2);
    }

    #[test]
    fn single_node_match_counts_its_covers() {
        let mut g = Cdfg::new();
        let a = g.add_node(OpKind::Input);
        let n = g.add_node(OpKind::Not);
        let o = g.add_node(OpKind::Output);
        g.add_data_edge(a, n).unwrap();
        g.add_data_edge(n, o).unwrap();
        let lib = Library::dsp_default();
        let m = Match {
            template: 0,
            nodes: vec![n],
        };
        // Only the singleton cover exists for a lone Not.
        assert_eq!(count_cover_solutions(&g, &lib, &m), 1);
    }
}
