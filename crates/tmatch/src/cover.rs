//! Covering the CDFG with modules.

use std::collections::HashSet;

use localwm_cdfg::{Cdfg, NodeId};

use crate::{find_matches, Library, Match};

/// Constraints the watermark imposes on the covering tool.
#[derive(Debug, Clone, Default)]
pub struct CoverConstraints {
    /// Pseudo-primary outputs: values that must stay visible. A PPO node
    /// can root a module (its output is the module output) but can never be
    /// *internal* to one.
    pub ppos: Vec<NodeId>,
    /// Matchings the solution must contain (the watermark's enforced
    /// node-to-module matchings).
    pub forced: Vec<Match>,
}

impl CoverConstraints {
    /// No constraints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether a node is a PPO.
    pub fn is_ppo(&self, n: NodeId) -> bool {
        self.ppos.contains(&n)
    }
}

/// A covering solution.
#[derive(Debug, Clone)]
pub struct Covering {
    /// Selected multi-op matchings (disjoint).
    pub selected: Vec<Match>,
    /// Operations not covered by any selected matching; each uses its own
    /// single-op module.
    pub singletons: Vec<NodeId>,
}

impl Covering {
    /// Total modules used: one per selected matching plus one per
    /// uncovered operation — the paper's Table II quality metric.
    pub fn module_count(&self) -> usize {
        self.selected.len() + self.singletons.len()
    }

    /// Number of operations absorbed into multi-op modules.
    pub fn covered_ops(&self) -> usize {
        self.selected.iter().map(|m| m.nodes.len()).sum()
    }
}

/// Covers the graph's operations with library modules, minimizing the
/// module count with a deterministic greedy heuristic: repeatedly select
/// the largest feasible matching (ties by root id, then template index).
///
/// Respects [`CoverConstraints`]: forced matchings are selected first and
/// PPO nodes never end up internal to a module.
///
/// # Panics
///
/// Panics if two forced matchings overlap, or a forced matching hides a
/// PPO internally — the embedder guarantees both by construction.
pub fn cover_in(
    ctx: &localwm_engine::DesignContext,
    lib: &Library,
    constraints: &CoverConstraints,
) -> Covering {
    cover(ctx.graph(), lib, constraints)
}

/// Covers the graph's operations with library modules; see [`cover_in`]
/// for the [`localwm_engine::DesignContext`]-based entry point.
///
/// # Panics
///
/// Panics if two forced matchings overlap, or a forced matching hides a
/// PPO internally — the embedder guarantees both by construction.
pub fn cover(g: &Cdfg, lib: &Library, constraints: &CoverConstraints) -> Covering {
    let mut used: HashSet<NodeId> = HashSet::new();
    let mut selected: Vec<Match> = Vec::new();

    for m in &constraints.forced {
        for &n in &m.nodes {
            assert!(used.insert(n), "forced matchings overlap at {n}");
        }
        for &n in m.internal_nodes() {
            assert!(
                !constraints.is_ppo(n),
                "forced matching hides PPO {n} internally"
            );
        }
        selected.push(m.clone());
    }

    let mut candidates: Vec<Match> = find_matches(g, lib)
        .into_iter()
        .filter(|m| m.internal_nodes().iter().all(|&n| !constraints.is_ppo(n)))
        .collect();
    // Largest first; deterministic ties.
    candidates.sort_by_key(|m| (std::cmp::Reverse(m.nodes.len()), m.root(), m.template));

    for m in candidates {
        if m.nodes.iter().any(|n| used.contains(n)) {
            continue;
        }
        used.extend(m.nodes.iter().copied());
        selected.push(m);
    }

    let singletons: Vec<NodeId> = g
        .node_ids()
        .filter(|&n| g.kind(n).is_schedulable() && !used.contains(&n))
        .collect();

    Covering {
        selected,
        singletons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use localwm_cdfg::designs::iir4_parallel;

    #[test]
    fn plain_cover_beats_all_singletons() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let c = cover(&g, &lib, &CoverConstraints::default());
        assert!(c.module_count() < g.op_count());
        // Every op accounted for exactly once.
        assert_eq!(c.covered_ops() + c.singletons.len(), g.op_count());
    }

    #[test]
    fn ppo_constraint_increases_module_count() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let free = cover(&g, &lib, &CoverConstraints::default());
        // Make every cmul a PPO: cmacs can no longer absorb them.
        let ppos: Vec<NodeId> = (1..=8)
            .map(|i| g.node_by_name(&format!("C{i}")).unwrap())
            .collect();
        let constrained = cover(
            &g,
            &lib,
            &CoverConstraints {
                ppos,
                forced: Vec::new(),
            },
        );
        assert!(constrained.module_count() > free.module_count());
    }

    #[test]
    fn forced_matching_is_kept() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let all = find_matches(&g, &lib);
        let forced = all[0].clone();
        let c = cover(
            &g,
            &lib,
            &CoverConstraints {
                ppos: Vec::new(),
                forced: vec![forced.clone()],
            },
        );
        assert!(c.selected.contains(&forced));
    }

    #[test]
    fn selected_matches_are_disjoint() {
        let g = iir4_parallel();
        let c = cover(&g, &Library::dsp_default(), &CoverConstraints::default());
        let mut seen = HashSet::new();
        for m in &c.selected {
            for &n in &m.nodes {
                assert!(seen.insert(n), "node {n} covered twice");
            }
        }
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_forced_matchings_panic() {
        let g = iir4_parallel();
        let lib = Library::dsp_default();
        let all = find_matches(&g, &lib);
        let m = all
            .iter()
            .find(|m| m.nodes.len() >= 2)
            .expect("a multi-op match exists")
            .clone();
        let _ = cover(
            &g,
            &lib,
            &CoverConstraints {
                ppos: Vec::new(),
                forced: vec![m.clone(), m],
            },
        );
    }
}
